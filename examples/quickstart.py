"""Quickstart: the CompilerGym interaction loop (Listing 1 of the paper).

Creates an LLVM phase-ordering environment, runs a random agent for a number
of steps, reports the code-size improvement achieved, and saves the optimized
program to disk.

Usage::

    python examples/quickstart.py [--steps 200] [--benchmark cbench-v1/qsort]
"""

import argparse
import tempfile

import repro as compiler_gym


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cbench-v1/qsort")
    parser.add_argument("--steps", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    # Create a new environment, selecting the compiler to use, the program to
    # compile, the feature vector to represent program states, and the
    # optimization target:
    env = compiler_gym.make(
        "llvm-v0",
        benchmark=args.benchmark,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )
    env.action_space.seed(args.seed)

    # Start a new compilation session:
    observation = env.reset()
    print(f"Benchmark: {env.benchmark}")
    print(f"Initial observation (Autophase, first 8 dims): {observation[:8]}")
    initial_size = env.observation["IrInstructionCount"]
    oz_size = env.observation["IrInstructionCountOz"]
    print(f"Unoptimized IR instruction count: {initial_size}")
    print(f"-Oz reaches:                      {oz_size}")

    # Run random optimizations. Each step of the environment produces a new
    # state observation and reward:
    best_size = initial_size
    for step in range(args.steps):
        observation, reward, done, info = env.step(env.action_space.sample())
        size = env.observation["IrInstructionCount"]
        best_size = min(best_size, size)
        if done:
            env.reset()

    final_size = env.observation["IrInstructionCount"]
    print(f"\nAfter {args.steps} random actions:")
    print(f"  final instruction count: {final_size}")
    print(f"  cumulative reward:       {env.episode_reward:.1f}")
    print(f"  achieved vs -Oz:         {oz_size / final_size:.3f}x")
    print(f"  command line:            {env.commandline()[:120]}...")

    # Save output program:
    output = tempfile.mktemp(suffix=".bc")
    env.write_bitcode(output)
    print(f"\nOptimized program written to {output}")
    env.close()


if __name__ == "__main__":
    main()
