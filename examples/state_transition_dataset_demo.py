"""Building and using the State Transition Dataset (Section III-F / Fig. 8).

Logs random optimization trajectories into the relational state-transition
database, post-processes it into unique state transitions, then trains the
gated-graph-network cost model to predict instruction counts from ProGraML
graphs — the paper's Fig. 8 experiment at laptop scale.

Usage::

    python examples/state_transition_dataset_demo.py [--episodes 20] [--epochs 20]
"""

import argparse
import random

import repro as compiler_gym
from repro.cost_model import CostModelTrainer, GatedGraphNeuralNetwork
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.ir.parser import parse_module
from repro.state_transition_dataset import (
    StateTransitionDatabase,
    StateTransitionLoggingWrapper,
    populate_state_transitions,
)
from repro.state_transition_dataset.postprocess import transition_statistics


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=20)
    parser.add_argument("--steps-per-episode", type=int, default=8)
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--database", default=":memory:", help="Path for the SQLite database")
    args = parser.parse_args()

    # 1. Collect trajectories into the database via the logging wrapper.
    database = StateTransitionDatabase(args.database)
    env = compiler_gym.make("llvm-v0", reward_space="IrInstructionCount")
    wrapper = StateTransitionLoggingWrapper(env, database)
    rng = random.Random(0)
    print(f"Logging {args.episodes} random episodes...")
    for episode in range(args.episodes):
        wrapper.reset(benchmark=f"generator://csmith-v0/{episode}")
        for _ in range(args.steps_per_episode):
            wrapper.step(rng.randrange(env.action_space.n))
    wrapper.close()

    # 2. Post-process into unique state transitions.
    populate_state_transitions(database)
    stats = transition_statistics(database)
    print(f"Database: {stats['steps']} steps, {stats['unique_states']} unique states, "
          f"{stats['transitions']} transitions\n")

    # 3. Train the cost model on (graph, instruction count) pairs.
    graphs, targets = [], []
    for observation in database.observations():
        if observation["ir"]:
            graphs.append(programl_graph(parse_module(observation["ir"])))
            targets.append(observation["instruction_count"])
    split = int(0.8 * len(graphs))
    print(f"Training the GGNN cost model on {split} graphs, validating on {len(graphs) - split}...")
    trainer = CostModelTrainer(GatedGraphNeuralNetwork(hidden_dim=48, seed=0), seed=0)
    curve = trainer.fit(graphs[:split], targets[:split], graphs[split:], targets[split:],
                        epochs=args.epochs)
    for epoch, error in zip(curve.epochs, curve.validation_relative_error):
        if epoch % max(1, args.epochs // 10) == 0:
            print(f"  epoch {epoch:3d}: validation relative error {error:.4f}")
    print(f"\nNaive mean-prediction relative error: {curve.naive_relative_error:.4f}")
    print(f"Learned model relative error:         {curve.validation_relative_error[-1]:.4f}")
    print("(Paper, Fig. 8: 0.025 for the learned model vs 1.393 for the naive predictor.)")


if __name__ == "__main__":
    main()
