"""Exploring CUDA loop-nest schedules with loop_tool (the Fig. 7 workload).

Sweeps threading configurations for a point-wise addition and prints the
achieved FLOPs, reproducing the characteristic shape of Fig. 7: throughput
rises with thread count, peaks at roughly three quarters of the device's
theoretical peak, and dips just past ~100k threads.

Usage::

    python examples/loop_tool_sweep.py [--size 1048576]
"""

import argparse

import repro as compiler_gym
from repro.loop_tool.cost import PEAK_FLOPS


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", type=int, default=1 << 20, help="Number of elements")
    args = parser.parse_args()

    env = compiler_gym.make(
        "loop_tool-v0",
        benchmark=f"benchmark://loop_tool-v0/{args.size}",
        observation_space="flops",
        reward_space="flops",
    )
    names = env.action_space.names
    env.reset()
    print("Initial (serial) schedule:")
    print(env.loop_tree)
    print(f"  -> {env.flops:.3e} FLOPs\n")

    # Thread the outer loop, then sweep the inner loop size by repeatedly
    # splitting and growing it, printing the landscape as we go.
    env.step(names.index("toggle_thread"))
    print(f"Outer loop threaded: {env.flops:.3e} FLOPs "
          f"({env.flops / PEAK_FLOPS * 100:.1f}% of theoretical peak)\n")

    env.step(names.index("split"))          # Create an inner loop of size 2.
    env.step(names.index("down"))           # Move the cursor onto it.
    env.step(names.index("toggle_mode"))    # Switch to modify mode.

    print(f"{'inner size':>10} {'threads':>10} {'GFLOPs':>10} {'% of peak':>10}")
    best = (0.0, None)
    for _ in range(40):
        _, _, _, _ = env.step(names.index("up"))  # Grow the inner loop by one.
        state = env.observation["action_state"]
        flops = env.flops
        threads = args.size // max(1, state[2])
        if state[2] % 4 == 0:
            print(f"{state[2]:>10} {threads:>10} {flops / 1e9:>10.1f} {flops / PEAK_FLOPS * 100:>9.1f}%")
        if flops > best[0]:
            best = (flops, state[2])

    print(f"\nBest schedule in this sweep: inner loop of {best[1]} elements per thread, "
          f"{best[0] / PEAK_FLOPS * 100:.1f}% of theoretical peak (paper: 73.5%).")
    env.close()


if __name__ == "__main__":
    main()
