"""Training a reinforcement-learning agent on LLVM phase ordering.

Reproduces (at laptop scale) the paper's RL setup: a PPO agent over the
Autophase observation concatenated with an action histogram, a 42-pass action
space, fixed 45-step episodes, training on Csmith programs, and evaluation on
held-out programs by geometric-mean code-size reduction relative to -Oz.

This mirrors the Listing 2 workflow with the package's built-in agents in
place of RLlib.

Usage::

    python examples/rl_phase_ordering.py [--episodes 300]
"""

import argparse

import repro as compiler_gym
from repro.rl import PPOAgent
from repro.rl.trainer import (
    evaluate_codesize_reduction,
    make_rl_environment,
    observation_dim,
    train_agent,
)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--episodes", type=int, default=300)
    parser.add_argument("--episode-length", type=int, default=45)
    args = parser.parse_args()

    # The wrapper composition from the paper: constrained action space, fixed
    # episode length, observation + action histogram.
    env = compiler_gym.make("llvm-v0", reward_space="IrInstructionCountNorm")
    env = make_rl_environment(env, episode_length=args.episode_length)

    num_actions = env.action_space.n
    agent = PPOAgent(
        obs_dim=observation_dim("Autophase", True, num_actions),
        num_actions=num_actions,
        seed=0,
    )

    training_benchmarks = [f"generator://csmith-v0/{i}" for i in range(50)]
    validation_benchmarks = [f"generator://csmith-v0/{50_000 + i}" for i in range(5)]
    test_benchmarks = [f"benchmark://cbench-v1/{name}" for name in ("crc32", "qsort", "sha")]

    print(f"Training PPO for {args.episodes} episodes on Csmith programs...")
    result = train_agent(
        agent,
        env,
        training_benchmarks,
        episodes=args.episodes,
        validation_benchmarks=validation_benchmarks,
        validation_interval=max(20, args.episodes // 5),
    )
    for episode, score in zip(result.validation_episodes, result.validation_scores):
        print(f"  after {episode:4d} episodes: validation geomean vs -Oz = {score:.3f}x")

    print("\nEvaluating the trained agent (greedy policy):")
    for name, benchmarks in (("Csmith (held out)", validation_benchmarks), ("cBench", test_benchmarks)):
        evaluation = evaluate_codesize_reduction(agent, env, benchmarks, dataset_name=name)
        print(f"  {name:<18} geomean code-size reduction vs -Oz: {evaluation.geomean_reduction:.3f}x")

    env.close()


if __name__ == "__main__":
    main()
