"""Out-of-process compiler service walkthrough: daemon, clients, pools.

The paper's headline design is a client/server split: environments talk to a
long-lived compiler *service* over RPC, so one service hosts many sessions,
survives client churn, and can live on another machine. This example walks
that architecture end to end:

1. Start a compiler service daemon (in-process here for a self-contained
   demo; in production run ``repro-compilergym serve --env llvm-v0 --port
   5499`` on the server machine).
2. Attach a plain environment with ``repro.make(..., service_url=...)`` —
   its compilation sessions now live on the daemon.
3. Attach a vectorized pool: with a ``service_url``, the ``"process"``
   backend spawns **no** subprocesses — each worker becomes one more daemon
   session over its own socket, so sequential pools (and whole training
   runs) reuse one warm service process.
4. Read the daemon's ``server_info`` to watch sessions multiplex.

Usage::

    python examples/remote_service.py --benchmark cbench-v1/crc32 --workers 2

    # Against an already-running daemon:
    repro-compilergym serve --env llvm-v0 --port 5499 &
    python examples/remote_service.py --service-url tcp://127.0.0.1:5499
"""

import argparse

import repro
from repro.core.service.runtime.server import make_env_server


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cbench-v1/crc32")
    parser.add_argument("--workers", type=int, default=2, help="Pool size per pool")
    parser.add_argument("--steps", type=int, default=6, help="Batched steps per pool")
    parser.add_argument(
        "--service-url",
        default=None,
        help="Attach to a running daemon (e.g. tcp://127.0.0.1:5499) instead "
             "of starting one in-process",
    )
    args = parser.parse_args()

    server = None
    if args.service_url is None:
        server = make_env_server("llvm-v0", port=0, session_timeout=None).start()
        url = server.url
        print(f"started in-process daemon at {url}")
    else:
        url = args.service_url
        print(f"attaching to daemon at {url}")

    try:
        # -- one plain client ------------------------------------------------
        env = repro.make(
            "llvm-v0",
            benchmark=args.benchmark,
            observation_space="Autophase",
            reward_space="IrInstructionCount",
            service_url=url,
        )
        env.reset()
        _, reward, _, _ = env.step(env.action_space["mem2reg"])
        print(f"single client: mem2reg reward {reward:.1f} "
              f"(session lives on the daemon)")
        info = env.service.transport.server_info()
        print(f"daemon pid {info['pid']}: {info['active_sessions']} active session(s), "
              f"{info['runtime_stats']['start_session']} started so far")
        env.close()

        # -- two sequential pools against the same daemon --------------------
        for round_index in range(2):
            vec = repro.make_vec_env(
                env_id="llvm-v0",
                n=args.workers,
                backend="process",  # daemon-attached: sessions, not processes
                service_url=url,
                benchmark=args.benchmark,
                observation_space="Autophase",
                reward_space="IrInstructionCount",
            )
            with vec:
                vec.reset()
                total = 0.0
                for step in range(args.steps):
                    actions = [
                        (step + worker) % vec.action_space.n
                        for worker in range(vec.num_envs)
                    ]
                    _, rewards, _, _ = vec.step(actions)
                    total += sum(r or 0.0 for r in rewards)
                stats = vec.connection_stats()
                print(
                    f"pool {round_index + 1}: {vec.num_envs} daemon-backed workers, "
                    f"total reward {total:.1f}, "
                    f"{int(stats['step']['calls'])} step RPCs "
                    f"in {stats['step']['wall_time_s']:.3f}s"
                )

        final = repro.make("llvm-v0", service_url=url)
        info = final.service.transport.server_info()
        print(
            f"daemon served {info['runtime_stats']['start_session']} session(s) over "
            f"{info['connections_served']} connection(s) — one warm service "
            "process for every client above"
        )
        final.close()
    finally:
        if server is not None:
            server.shutdown()
            print("daemon shut down cleanly")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
