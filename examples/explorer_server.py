"""Serving the CompilerGym Explorer REST API.

Starts the HTTP service that the Explorer web UI talks to (Section III-E of
the paper), then demonstrates the same API in-process: starting a session,
stepping through passes, inspecting the reward/observation trends the
Explorer visualizes, and undoing an action.

Usage::

    python examples/explorer_server.py [--port 5000] [--demo-only]
"""

import argparse
import threading

from repro.web.rest import ExplorerAPI, create_server


def run_demo(api: ExplorerAPI) -> None:
    description = api.describe()
    print(f"Environment exposes {len(description['actions'])} actions, "
          f"{len(description['observations'])} observation spaces.")

    session = api.start("IrInstructionCountOz", "benchmark://cbench-v1/qsort")
    session_id = session["session_id"]
    print(f"\nStarted session {session_id} on cbench-v1/qsort")
    print(f"  initial instruction count: {session['states'][0]['instruction_count']}")

    for pass_name in ("-mem2reg", "-simplifycfg", "-gvn", "-instcombine", "-dce"):
        action = description["actions"].index(pass_name.lstrip("-"))
        state = api.step(session_id, [action])["states"][-1]
        print(f"  {pass_name:<14} -> {state['instruction_count']:4d} instructions "
              f"(cumulative reward {state['cumulative_reward']:.3f})")

    undone = api.undo(session_id, 1)
    print(f"  undo            -> {undone['state']['instruction_count']:4d} instructions")
    api.stop(session_id)
    print("Session closed.")


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--port", type=int, default=5000)
    parser.add_argument("--demo-only", action="store_true",
                        help="Run the in-process demo without binding a port")
    args = parser.parse_args()

    if args.demo_only:
        run_demo(ExplorerAPI())
        return

    server = create_server(port=args.port)
    print(f"Explorer REST API listening on http://127.0.0.1:{server.server_address[1]}/api/v1/describe")
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    run_demo(server.api)
    print("\nServer is still running; press Ctrl-C to stop.")
    try:
        thread.join()
    except KeyboardInterrupt:
        server.shutdown()


if __name__ == "__main__":
    main()
