"""Parallel random search over a vectorized environment pool.

Demonstrates the vector API end to end: one LLVM environment is ``fork()``-ed
into an N-worker :class:`VecCompilerEnv`, and random search evaluates one
candidate pass sequence per worker per round, batched through the
thread-pool execution backend.

Usage::

    python examples/parallel_random_search.py --benchmark cbench-v1/qsort --workers 4
"""

import argparse

import repro
from repro.autotuning import RandomSearch
from repro.core.vector import VecCompilerEnv


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cbench-v1/qsort")
    parser.add_argument("--workers", type=int, default=4, help="Environment pool size")
    parser.add_argument("--steps", type=int, default=400, help="Total search step budget")
    parser.add_argument("--patience", type=int, default=10)
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args()

    env = repro.make(
        "llvm-v0",
        benchmark=args.benchmark,
        reward_space="IrInstructionCount",
    )
    tuner = RandomSearch(seed=args.seed, patience=args.patience)
    with VecCompilerEnv(env, n=args.workers, backend="thread") as vec:
        result = tuner.tune(vec, max_steps=args.steps)
        print(f"benchmark:     {result.benchmark}")
        print(f"workers:       {vec.num_envs}")
        print(f"episodes:      {result.episodes}")
        print(f"steps:         {result.steps}")
        print(f"walltime:      {result.walltime:.2f}s")
        print(f"best reward:   {result.best_reward:.4f}")

        # Replay the best sequence on worker 0 to show the commandline.
        root = vec.workers[0]
        root.reset()
        if result.best_actions:
            root.multistep(result.best_actions)
        print(f"best commandline: {root.commandline()}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
