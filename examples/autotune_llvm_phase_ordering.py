"""Autotuning the LLVM phase ordering (the Table IV workload).

Runs several search techniques on a cBench program, compares the code size
they reach against the compiler's -Oz pipeline, validates the best result by
replaying its serialized state, and prints a leaderboard.

Usage::

    python examples/autotune_llvm_phase_ordering.py [--benchmark cbench-v1/qsort] [--budget 800]
"""

import argparse

import repro as compiler_gym
from repro.autotuning import (
    GreedySearch,
    LaMCTSSearch,
    NevergradEnsembleSearch,
    RandomSearch,
)
from repro.core.leaderboard import Leaderboard


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--benchmark", default="cbench-v1/qsort")
    parser.add_argument("--budget", type=int, default=800, help="Search budget in environment steps")
    args = parser.parse_args()

    env = compiler_gym.make("llvm-v0", benchmark=args.benchmark, reward_space="IrInstructionCount")
    env.reset()
    o0 = env.observation["IrInstructionCountO0"]
    oz = env.observation["IrInstructionCountOz"]
    print(f"{args.benchmark}: -O0 size {o0}, -Oz size {oz}\n")

    tuners = [
        GreedySearch(seed=0, max_episode_length=30),
        RandomSearch(seed=0, patience=20, max_episode_length=80),
        LaMCTSSearch(seed=0, rollout_length=40),
        NevergradEnsembleSearch(seed=0, episode_length=40),
    ]
    leaderboard = Leaderboard(task=f"llvm-ic-{args.benchmark}")
    best_state = None
    for tuner in tuners:
        result = tuner.tune(env, max_steps=args.budget)
        env.reset()
        if result.best_actions:
            env.multistep(result.best_actions)
        final = env.observation["IrInstructionCount"]
        state = env.state
        leaderboard.submit(tuner.name, [state])
        print(
            f"{tuner.name:<12} best reward {result.best_reward:7.1f}  "
            f"final size {final:4d}  vs -Oz {oz / final:5.3f}x  "
            f"({result.steps} steps, {result.walltime:.1f}s)"
        )
        if best_state is None or (state.reward or 0) > (best_state.reward or 0):
            best_state = state

    print("\nValidating the best result by replaying its serialized state...")
    validation = env.validate(best_state)
    print(f"  {validation}")

    print("\n" + leaderboard.to_markdown())
    env.close()


if __name__ == "__main__":
    main()
