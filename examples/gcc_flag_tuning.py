"""Tuning GCC command-line flags (the Table V workload).

Explores the GCC environment's high-dimensional configuration space with a
genetic algorithm and compares the object-code size it reaches against -Os on
the CHStone suite. The only change needed to work with GCC instead of LLVM is
the environment constructor — the point Section V-B makes.

Usage::

    python examples/gcc_flag_tuning.py [--compilations 300] [--gcc-bin docker:gcc:11.2.0]
"""

import argparse

import repro as compiler_gym
from repro.autotuning import GeneticAlgorithm
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import OLevelOption
from repro.util.statistics import geometric_mean


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--compilations", type=int, default=300, help="Compilations per benchmark")
    parser.add_argument("--gcc-bin", default="docker:gcc:11.2.0")
    parser.add_argument("--programs", type=int, default=4, help="Number of CHStone programs to tune")
    args = parser.parse_args()

    env = compiler_gym.make("gcc-v0", gcc_bin=args.gcc_bin)
    spec = env.gcc_spec
    print(f"GCC version: {env.compiler_version}")
    print(f"Options: {len(spec)}  (search space ~10^{spec.log10_size:.0f})")
    print(f"Categorical action space: {env.action_space.n} actions\n")

    gcc = SimulatedGcc(spec)
    cardinalities = [min(len(option), 64) for option in spec.options]
    os_choices = spec.default_choices()
    os_choices[0] = 1 + OLevelOption.LEVELS.index("-Os")

    benchmarks = list(env.datasets["benchmark://chstone-v0"].benchmark_uris())[: args.programs]
    reductions = []
    for uri in benchmarks:
        benchmark_id = f"chstone/{uri.rsplit('/', 1)[-1]}"
        os_size = gcc.obj_size(benchmark_id, os_choices)

        tuner = GeneticAlgorithm(seed=0, population_size=50)
        result = tuner.tune(
            lambda config, b=benchmark_id: gcc.obj_size(b, config),
            cardinalities,
            max_evaluations=args.compilations,
            initial=os_choices,
        )
        reduction = os_size / result.best_metric
        reductions.append(reduction)
        best_commandline = spec.choices_to_commandline(result.best_actions)
        print(f"{uri:<38} -Os: {os_size:6d} B   tuned: {int(result.best_metric):6d} B   "
              f"({reduction:.3f}x)   flags used: {len(best_commandline.split())}")

    print(f"\nGeomean object-size reduction vs -Os: {geometric_mean(reductions):.3f}x "
          f"(paper, GA with 1000 compilations: 1.27x)")
    env.close()


if __name__ == "__main__":
    main()
