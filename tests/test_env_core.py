"""Integration tests of the CompilerEnv Gym interface (on the LLVM backend)."""

import numpy as np
import pytest

import repro
from repro.errors import SessionNotFound


class TestMake:
    def test_registered_environments(self):
        assert "llvm-v0" in repro.COMPILER_GYM_ENVS
        assert "gcc-v0" in repro.COMPILER_GYM_ENVS
        assert "loop_tool-v0" in repro.COMPILER_GYM_ENVS

    def test_unknown_environment_raises(self):
        with pytest.raises(LookupError):
            repro.make("not-an-env-v0")

    def test_make_with_kwargs(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/crc32")
        try:
            assert str(env.benchmark.uri) == "benchmark://cbench-v1/crc32"
        finally:
            env.close()


class TestEpisodeLifecycle:
    def test_reset_returns_observation(self, llvm_env):
        observation = llvm_env.reset()
        assert observation is not None
        assert observation.shape == (56,)

    def test_step_before_reset_raises(self, fresh_llvm_env):
        with pytest.raises(SessionNotFound):
            fresh_llvm_env.step(0)

    def test_step_returns_quadruple(self, llvm_env):
        llvm_env.reset()
        observation, reward, done, info = llvm_env.step(0)
        assert observation.shape == (56,)
        assert isinstance(reward, float)
        assert isinstance(done, bool)
        assert "action_had_no_effect" in info

    def test_actions_are_recorded(self, llvm_env):
        llvm_env.reset()
        llvm_env.step(1)
        llvm_env.step(2)
        assert llvm_env.actions == [1, 2]

    def test_episode_reward_accumulates_step_rewards(self, llvm_env):
        llvm_env.reset()
        total = 0.0
        for action in range(5):
            _, reward, _, _ = llvm_env.step(action)
            total += reward
        assert llvm_env.episode_reward == pytest.approx(total)

    def test_reset_clears_episode_state(self, llvm_env):
        llvm_env.reset()
        llvm_env.step(0)
        llvm_env.reset()
        assert llvm_env.actions == []
        assert llvm_env.episode_reward == 0

    def test_in_episode_property(self, fresh_llvm_env):
        assert not fresh_llvm_env.in_episode
        fresh_llvm_env.reset()
        assert fresh_llvm_env.in_episode

    def test_benchmark_change_takes_effect_on_reset(self, fresh_llvm_env):
        fresh_llvm_env.reset()
        fresh_llvm_env.benchmark = "benchmark://cbench-v1/sha"
        # The property reports the pending benchmark immediately...
        assert str(fresh_llvm_env.benchmark.uri) == "benchmark://cbench-v1/sha"
        fresh_llvm_env.reset()
        assert str(fresh_llvm_env.benchmark.uri) == "benchmark://cbench-v1/sha"


class TestMultistep:
    def test_multistep_applies_all_actions(self, llvm_env):
        llvm_env.reset()
        llvm_env.multistep([1, 2, 3])
        assert llvm_env.actions == [1, 2, 3]

    def test_batched_equals_sequential_instruction_count(self, fresh_llvm_env):
        env = fresh_llvm_env
        actions = [env.action_space["mem2reg"], env.action_space["instcombine"], env.action_space["dce"]]
        env.reset()
        for action in actions:
            env.step(action)
        sequential = env.observation["IrInstructionCount"]
        env.reset()
        env.multistep(actions)
        batched = env.observation["IrInstructionCount"]
        assert sequential == batched

    def test_explicit_observation_spaces(self, llvm_env):
        llvm_env.reset()
        observations, rewards, done, _ = llvm_env.multistep(
            [0], observation_spaces=["IrInstructionCount", "Autophase"], reward_spaces=[]
        )
        assert len(observations) == 2
        assert isinstance(observations[0], int)
        assert observations[1].shape == (56,)
        assert rewards == []
        assert not done

    def test_explicit_reward_spaces(self, llvm_env):
        llvm_env.reset()
        _, rewards, _, _ = llvm_env.step(
            llvm_env.action_space["dce"], reward_spaces=["IrInstructionCount", "IrInstructionCountOz"]
        )
        assert len(rewards) == 2


class TestObservationView:
    def test_lazy_observation_access(self, llvm_env):
        llvm_env.reset()
        count = llvm_env.observation["IrInstructionCount"]
        assert count > 0
        text = llvm_env.observation["Ir"]
        assert "define" in text

    def test_observation_space_selection(self, fresh_llvm_env):
        fresh_llvm_env.observation_space = "InstCount"
        observation = fresh_llvm_env.reset()
        assert observation.shape == (70,)
        fresh_llvm_env.observation_space = None
        assert fresh_llvm_env.reset() is None

    def test_derived_observation_space(self, llvm_env):
        llvm_env.reset()
        llvm_env.observation.add_derived_space(
            id="InstCountNorm",
            base_id="InstCount",
            space=llvm_env.observation.spaces["InstCount"].space,
            translate=lambda value: np.asarray(value) / max(1, int(value[0])),
        )
        derived = llvm_env.observation["InstCountNorm"]
        assert derived[0] == pytest.approx(1.0)


class TestRewardView:
    def test_named_reward_access(self, llvm_env):
        llvm_env.reset()
        value = llvm_env.reward["IrInstructionCount"]
        assert isinstance(value, float)

    def test_reward_space_selection_sets_range(self, fresh_llvm_env):
        fresh_llvm_env.reward_space = "IrInstructionCountOz"
        assert fresh_llvm_env.reward_space.name == "IrInstructionCountOz"
        fresh_llvm_env.reward_space = None
        assert fresh_llvm_env.reward_space is None

    def test_oz_scaled_episode_reward_reaches_one_with_oz_pipeline(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reward_space = "IrInstructionCountOz"
        env.reset()
        from repro.llvm.passes.registry import OZ_PIPELINE

        actions = [env.action_space[name] for name in OZ_PIPELINE]
        env.multistep(actions)
        # Applying the -Oz pipeline as actions achieves the -Oz baseline, so
        # the scaled cumulative reward is 1.0.
        assert env.episode_reward == pytest.approx(1.0, abs=0.05)


class TestFork:
    def test_fork_preserves_state(self, llvm_env):
        llvm_env.reset()
        llvm_env.step(llvm_env.action_space["mem2reg"])
        fork = llvm_env.fork()
        try:
            assert fork.actions == llvm_env.actions
            assert fork.observation["IrInstructionCount"] == llvm_env.observation["IrInstructionCount"]
        finally:
            fork.close()

    def test_fork_is_independent(self, llvm_env):
        llvm_env.reset()
        fork = llvm_env.fork()
        try:
            fork.step(fork.action_space["mem2reg"])
            fork.step(fork.action_space["dce"])
            assert fork.observation["IrInstructionCount"] <= llvm_env.observation["IrInstructionCount"]
            assert llvm_env.actions == []
        finally:
            fork.close()

    def test_fork_reward_state_not_shared(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        fork = env.fork()
        try:
            _, fork_reward, _, _ = fork.step(fork.action_space["mem2reg"])
            _, env_reward, _, _ = env.step(env.action_space["mem2reg"])
            assert env_reward == pytest.approx(fork_reward)
        finally:
            fork.close()


class TestStateSerialization:
    def test_state_round_trip(self, llvm_env):
        llvm_env.reset()
        llvm_env.step(llvm_env.action_space["mem2reg"])
        state = llvm_env.state
        assert state.benchmark == "benchmark://cbench-v1/qsort"
        assert "-mem2reg" in state.commandline
        assert state.reward == llvm_env.episode_reward

    def test_apply_replays_state(self, fresh_llvm_env, llvm_env):
        llvm_env.reset()
        llvm_env.multistep([llvm_env.action_space["mem2reg"], llvm_env.action_space["simplifycfg"]])
        state = llvm_env.state
        fresh_llvm_env.apply(state)
        assert fresh_llvm_env.commandline() == state.commandline
        assert fresh_llvm_env.observation["IrSha1"] == llvm_env.observation["IrSha1"]

    def test_commandline_round_trip(self, llvm_env):
        llvm_env.reset()
        llvm_env.multistep([0, 5, 10])
        commandline = llvm_env.commandline()
        assert llvm_env._actions_from_string(commandline) == [0, 5, 10]


class TestCompilerSpecifics:
    def test_compiler_version(self, llvm_env):
        assert "llvm" in llvm_env.compiler_version.lower()

    def test_render_ansi(self, llvm_env):
        llvm_env.reset()
        text = llvm_env.render(mode="ansi")
        assert isinstance(text, str)

    def test_action_space_contains_124_passes(self, llvm_env):
        assert llvm_env.action_space.n == 124
