"""Tests for the session-routing gateway over a daemon fleet.

Covers the PR's acceptance criteria: a two-daemon gateway is
trace-equivalent to a single daemon, survives SIGKILL of a daemon
mid-rollout, rejects cross-tenant session access and version-skewed peers,
and the fleet autoscaling policy turns per-daemon call accounting into
daemon-count decisions.
"""

import os
import pickle
import signal
import socket
import struct
import time

import pytest

import repro
from repro.core.service.connection import (
    _SPACES_CACHE,
    ServiceConnection,
    clear_spaces_cache,
)
from repro.core.service.gateway import ServiceGateway
from repro.core.service.proto import StartSessionRequest, StepRequest
from repro.core.service.runtime.server import make_env_server
from repro.core.service.transport import SocketTransport
from repro.core.service.wire import WIRE_VERSION, parse_service_url
from repro.core.vector import FleetAutoscalePolicy, VecCompilerEnv
from repro.core.vector.autoscale import interval_delta
from repro.errors import PermissionDeniedError, ServiceError

BENCHMARK = "cbench-v1/qsort"
ACTIONS = [0, 11, 3, 7, 1, 23, 5]


@pytest.fixture
def gateway():
    gw = ServiceGateway(env_id="llvm-v0", daemons=2).start()
    yield gw
    gw.shutdown()


def _make_env(url, **kwargs):
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        reward_space="IrInstructionCount",
        service_url=url,
        **kwargs,
    )


def _rollout(url, actions=ACTIONS, **kwargs):
    env = _make_env(url, **kwargs)
    try:
        env.reset()
        trace = []
        for action in actions:
            observation, reward, done, _ = env.step(action)
            trace.append((reward, done))
            if done:
                break
        return trace
    finally:
        env.close()


class TestGatewayRouting:
    def test_trace_equivalence_with_single_daemon(self, gateway):
        """Acceptance: the same episode through a 2-daemon gateway produces
        the same rewards as through one daemon directly."""
        daemon = make_env_server("llvm-v0").start()
        try:
            assert _rollout(gateway.url) == _rollout(daemon.url)
        finally:
            daemon.shutdown()

    def test_sessions_spread_across_daemons(self, gateway):
        """Least-load placement: two independent clients land on two
        different daemons."""
        env_a, env_b = _make_env(gateway.url), _make_env(gateway.url)
        try:
            env_a.reset()
            env_b.reset()
            per_daemon = sorted(
                d["sessions"] for d in gateway.server_info()["daemons"]
            )
            assert per_daemon == [1, 1]
        finally:
            env_a.close()
            env_b.close()

    def test_server_info_reports_fleet(self, gateway):
        info = gateway.server_info()
        assert info["role"] == "gateway"
        assert info["protocol_version"] == WIRE_VERSION
        assert len(info["daemons"]) == 2
        assert all(d["pid"] is not None for d in info["daemons"])

    def test_client_server_info_via_rpc(self, gateway):
        with ServiceConnection(SocketTransport(gateway.url)) as connection:
            info = connection.transport.server_info()
            assert info["role"] == "gateway"


class TestGatewayFailover:
    def _daemon_hosting(self, gateway, want_sessions=True):
        for daemon in gateway.live_daemons():
            hosts = any(
                record.daemon is daemon for record in gateway._sessions.values()
            )
            if hosts == want_sessions:
                return daemon
        raise AssertionError("No daemon matched the requested load profile")

    def test_sigkill_failover_mid_episode(self, gateway):
        env = _make_env(gateway.url)
        try:
            env.reset()
            for action in ACTIONS[:3]:
                env.step(action)
            victim = self._daemon_hosting(gateway)
            os.kill(victim.pid, signal.SIGKILL)
            # The next step rides through failover: the session is replayed
            # onto the surviving daemon and the step applied exactly once.
            _, reward, done, _ = env.step(ACTIONS[3])
            assert reward is not None and not done
            assert gateway.server_info()["failovers"] == 1
            assert env.actions == ACTIONS[:4]
        finally:
            env.close()

    def test_sigkill_failover_mid_rollout_vec_pool(self, gateway):
        """Acceptance: kill one daemon mid-rollout under a 2-worker pool;
        the pool completes the rollout on replayed sessions."""
        env = _make_env(gateway.url)
        with VecCompilerEnv(env, n=2, backend="thread") as vec:
            vec.reset()
            vec.step([ACTIONS[0], ACTIONS[1]])
            # The pool's forked sessions co-locate with the root's daemon;
            # kill whichever daemon carries sessions.
            victim = self._daemon_hosting(gateway)
            os.kill(victim.pid, signal.SIGKILL)
            for action in ACTIONS[2:]:
                _, rewards, dones, infos = vec.step([action, action])
                assert len(rewards) == 2
                assert not any(dones)
            assert gateway.server_info()["failovers"] == 1
            assert [w.actions for w in vec.workers] == [
                [ACTIONS[0]] + ACTIONS[2:],
                [ACTIONS[1]] + ACTIONS[2:],
            ]

    def test_failover_bumps_spaces_epoch_and_cache_key(self, gateway):
        env = _make_env(gateway.url)
        try:
            env.reset()
            assert gateway.spaces_epoch() == 0
            victim = self._daemon_hosting(gateway)
            os.kill(victim.pid, signal.SIGKILL)
            env.step(ACTIONS[0])
            assert gateway.spaces_epoch() == 1
            # A fresh connection handshakes the bumped epoch into its cache
            # key, so pre-failover metadata is never reused for it.
            transport = SocketTransport(gateway.url)
            transport.connect()
            try:
                assert transport.spaces_cache_key == f"{gateway.url}#e1"
            finally:
                transport.shutdown()
        finally:
            env.close()
            clear_spaces_cache(gateway.url)

    def test_failover_replay_preserves_episode_state(self, gateway):
        """The replayed session continues the episode, not a fresh one:
        cumulative rewards match an uninterrupted run."""
        daemon = make_env_server("llvm-v0").start()
        try:
            expected = _rollout(daemon.url)
        finally:
            daemon.shutdown()
        env = _make_env(gateway.url)
        try:
            env.reset()
            trace = []
            for i, action in enumerate(ACTIONS):
                if i == 4:
                    victim = self._daemon_hosting(gateway)
                    os.kill(victim.pid, signal.SIGKILL)
                _, reward, done, _ = env.step(action)
                trace.append((reward, done))
            assert trace == expected
        finally:
            env.close()


class TestGatewayAuth:
    def _gateway(self, tokens):
        return ServiceGateway(
            env_id="llvm-v0", daemons=1, auth_tokens=tokens, fleet_token="fleet-secret"
        ).start()

    def test_rejects_missing_or_bad_token(self):
        gw = self._gateway(["alice"])
        try:
            with pytest.raises(PermissionDeniedError):
                _make_env(gw.url).reset()
            with pytest.raises(PermissionDeniedError):
                _make_env(gw.url, service_token="mallory").reset()
        finally:
            gw.shutdown()

    def test_accepts_valid_token(self):
        gw = self._gateway(["alice"])
        try:
            trace = _rollout(gw.url, actions=ACTIONS[:2], service_token="alice")
            assert len(trace) == 2
        finally:
            gw.shutdown()

    def test_cross_tenant_session_access_rejected(self):
        """Acceptance: one tenant's session-scoped RPCs cannot touch another
        tenant's sessions."""
        gw = self._gateway(["alice", "bob"])
        try:
            alice = ServiceConnection(SocketTransport(gw.url, auth_token="alice"))
            bob = ServiceConnection(SocketTransport(gw.url, auth_token="bob"))
            try:
                reply = alice.start_session(
                    StartSessionRequest(benchmark_uri=f"benchmark://{BENCHMARK}")
                )
                with pytest.raises(PermissionDeniedError, match="another tenant"):
                    bob.step(StepRequest(session_id=reply.session_id, actions=[0]))
                # The rightful owner still works.
                alice.step(StepRequest(session_id=reply.session_id, actions=[0]))
            finally:
                alice.close()
                bob.close()
        finally:
            gw.shutdown()

    def test_daemons_require_the_fleet_token(self):
        """Spawned daemons are locked down: only the gateway's fleet token
        opens a direct connection to them."""
        gw = self._gateway(None)
        try:
            daemon_url = gw.live_daemons()[0].url
            with pytest.raises(PermissionDeniedError):
                ServiceConnection(SocketTransport(daemon_url))
            direct = ServiceConnection(
                SocketTransport(daemon_url, auth_token="fleet-secret")
            )
            direct.close()
        finally:
            gw.shutdown()


class TestVersionSkew:
    def test_version_skew_by_two_is_rejected(self, gateway):
        """Acceptance: a peer speaking a wire version two ahead is dropped on
        the frame's first byte, never unpickled."""
        _, address = parse_service_url(gateway.url)
        raw = socket.create_connection(address)
        payload = pickle.dumps((0, "server_info", ()))
        raw.sendall(
            bytes([WIRE_VERSION + 2]) + struct.pack(">Q", len(payload)) + payload
        )
        raw.settimeout(5)
        assert raw.recv(1) == b""
        raw.close()
        # The gateway survives and still serves current-version clients.
        with ServiceConnection(SocketTransport(gateway.url)) as connection:
            assert connection.transport.server_info()["role"] == "gateway"


def _fleet_stats(step_calls, step_wall, errors=0):
    return {
        "step": {
            "calls": step_calls,
            "errors": errors,
            "retries": 0,
            "wall_time_s": step_wall,
        }
    }


class TestFleetAutoscalePolicy:
    def test_scales_up_on_low_latency(self):
        policy = FleetAutoscalePolicy(max_daemons=4, scale_up_latency_s=0.1)
        stats = {"tcp://a": _fleet_stats(10, 0.1), "tcp://b": _fleet_stats(10, 0.1)}
        assert policy(stats, current_daemons=2) == 3

    def test_scales_down_on_high_latency(self):
        policy = FleetAutoscalePolicy(scale_down_latency_s=0.2)
        stats = {"tcp://a": _fleet_stats(10, 10.0), "tcp://b": _fleet_stats(10, 10.0)}
        assert policy(stats, current_daemons=3) == 2

    def test_no_decision_on_idle_fleet(self):
        policy = FleetAutoscalePolicy()
        assert policy({}, current_daemons=2) is None
        assert policy({"tcp://a": {}}, current_daemons=2) is None

    def test_daemon_replacement_reset_is_localized(self):
        """A replaced daemon restarts its counters from zero; only its own
        interval restarts — the survivors' deltas stay correct."""
        policy = FleetAutoscalePolicy(
            scale_up_latency_s=0.05, scale_down_latency_s=0.2
        )
        policy(
            {"tcp://a": _fleet_stats(100, 1.0), "tcp://b": _fleet_stats(100, 1.0)},
            current_daemons=2,
        )
        # b died and was replaced: its counters regressed. a's interval is
        # 10 calls / 10s (slow); replacement-b contributes 5 fast calls.
        decision = policy(
            {"tcp://a": _fleet_stats(110, 11.0), "tcp://b": _fleet_stats(5, 0.05)},
            current_daemons=2,
        )
        # Aggregate interval: 15 calls, ~10.06s => mean ~0.67s: scale down.
        assert decision == 1

    def test_vanished_daemon_drops_out(self):
        policy = FleetAutoscalePolicy(max_daemons=4, scale_up_latency_s=0.1)
        policy({"tcp://a": _fleet_stats(10, 0.1)}, current_daemons=2)
        assert (
            policy({"tcp://b": _fleet_stats(10, 0.1)}, current_daemons=2) == 3
        )

    def test_validation(self):
        with pytest.raises(ValueError, match="min_daemons"):
            FleetAutoscalePolicy(min_daemons=5, max_daemons=2)
        with pytest.raises(ValueError, match="scale_up_latency_s"):
            FleetAutoscalePolicy(scale_up_latency_s=1.0, scale_down_latency_s=0.1)


class TestGatewayScaling:
    def test_scale_up_spawns_and_scale_down_drains(self):
        gw = ServiceGateway(env_id="llvm-v0", daemons=1).start()
        try:
            assert gw.scale_to(2) == 2
            assert len(gw.live_daemons()) == 2
            # An idle daemon drains and retires immediately.
            assert gw.scale_to(1) == 1
            deadline = time.time() + 10
            while len(gw.live_daemons()) > 1 and time.time() < deadline:
                time.sleep(0.05)
            assert len(gw.live_daemons()) == 1
        finally:
            gw.shutdown()

    def test_draining_daemon_keeps_sessions_until_they_end(self):
        gw = ServiceGateway(env_id="llvm-v0", daemons=2).start()
        try:
            env = _make_env(gw.url)
            env.reset()
            hosting = next(
                d for d in gw.live_daemons()
                if any(r.daemon is d for r in gw._sessions.values())
            )
            gw.scale_to(1)
            if hosting.draining:
                # The loaded daemon was drained: it must survive (still
                # serving its session) until the session ends.
                assert not hosting.dead
                env.step(ACTIONS[0])
                env.close()
                gw._retire_empty_drains()
                assert hosting.dead
            else:
                env.close()
        finally:
            gw.shutdown()

    def test_autoscale_tick_applies_policy_target(self):
        gw = ServiceGateway(env_id="llvm-v0", daemons=1).start()
        try:
            assert gw.autoscale_tick(lambda stats, current: 2) == 2
            assert len(gw.live_daemons()) == 2
            assert gw.autoscale_tick(lambda stats, current: None) is None
        finally:
            gw.shutdown()


class TestExplorerAgainstGateway:
    def test_rest_api_sessions_ride_the_gateway(self):
        """Satellite: the Explorer REST API works unchanged when its
        service_url points at a (token-protected) gateway."""
        from repro.web.rest import ExplorerAPI

        gw = ServiceGateway(
            env_id="llvm-v0", daemons=2, auth_tokens=["web"]
        ).start()
        try:
            api = ExplorerAPI(service_url=gw.url, service_token="web")
            result = api.start("IrInstructionCount", f"benchmark://{BENCHMARK}")
            session_id = result["session_id"]
            stepped = api.step(session_id, [0, 1])
            assert len(stepped["states"]) == 2
            assert gw.server_info()["active_sessions"] >= 1
            api.stop(session_id)
        finally:
            gw.shutdown()


class TestIntervalDeltaEdgeCases:
    """Satellite: interval_delta under counter regression and empty input."""

    def test_empty_snapshots(self):
        assert interval_delta({}, {}) == {}

    def test_empty_previous_passes_current_through(self):
        current = _fleet_stats(5, 1.0)
        assert interval_delta({}, current) == current

    def test_method_vanishing_from_current_is_dropped(self):
        assert interval_delta(_fleet_stats(5, 1.0), {}) == {}

    def test_regression_in_one_method_leaves_others_diffed(self):
        previous = {
            "step": {"calls": 10, "errors": 0, "retries": 0, "wall_time_s": 5.0},
            "start_session": {"calls": 2, "errors": 0, "retries": 0, "wall_time_s": 1.0},
        }
        current = {
            # step regressed (a worker was retired mid-interval): restarts.
            "step": {"calls": 4, "errors": 0, "retries": 0, "wall_time_s": 2.0},
            "start_session": {"calls": 5, "errors": 0, "retries": 0, "wall_time_s": 1.5},
        }
        delta = interval_delta(previous, current)
        assert delta["step"] == current["step"]
        assert delta["start_session"] == {
            "calls": 3, "errors": 0, "retries": 0, "wall_time_s": 0.5,
        }

    def test_regression_on_single_key_restarts_whole_method(self):
        previous = {"step": {"calls": 10, "errors": 3, "wall_time_s": 5.0}}
        current = {"step": {"calls": 12, "errors": 1, "wall_time_s": 6.0}}
        delta = interval_delta(previous, current)
        assert delta["step"] == current["step"]
