"""Shared fixtures for the test suite."""

import pytest

import repro
from repro.llvm.datasets.generators import generate_module
from repro.llvm.ir.builder import IRBuilder
from repro.llvm.ir.function import Function
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import I32
from repro.llvm.ir.values import Constant


@pytest.fixture(scope="session")
def llvm_env():
    """A session-scoped LLVM environment (qsort benchmark, code-size reward)."""
    env = repro.make(
        "llvm-v0",
        benchmark="cbench-v1/qsort",
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )
    yield env
    env.close()


@pytest.fixture()
def fresh_llvm_env():
    """A function-scoped LLVM environment for tests that mutate configuration."""
    env = repro.make("llvm-v0", benchmark="cbench-v1/crc32", reward_space="IrInstructionCount")
    yield env
    env.close()


@pytest.fixture(scope="session")
def gcc_env():
    env = repro.make("gcc-v0", benchmark="chstone-v0/adpcm", reward_space="obj_size")
    yield env
    env.close()


@pytest.fixture(scope="session")
def loop_tool_env():
    env = repro.make("loop_tool-v0", observation_space="flops", reward_space="flops")
    yield env
    env.close()


@pytest.fixture()
def small_module() -> Module:
    """A tiny hand-built module with obvious optimization opportunities."""
    module = Module("small")
    function = Function("main", return_type=I32, arg_types=[I32], arg_names=["x"])
    entry = function.add_block("entry")
    builder = IRBuilder(function, entry)
    x = function.args[0]
    a = builder.add(Constant(I32, 2), Constant(I32, 3), name="a")        # Foldable.
    b = builder.add(x, Constant(I32, 0), name="b")                       # Identity.
    c = builder.mul(x, x, name="c")
    d = builder.mul(x, x, name="d")                                      # Redundant with c.
    dead = builder.add(x, Constant(I32, 7), name="dead")                 # Unused.
    total = builder.add(a, b, name="t0")
    total = builder.add(total, c, name="t1")
    total = builder.add(total, d, name="t2")
    builder.ret(total)
    module.add_function(function)
    return module


@pytest.fixture()
def generated_module() -> Module:
    """A deterministic generated module of moderate size."""
    return generate_module(seed=7, size_scale=5)
