"""Tests for the IR interpreter and the cost models."""

import random

import pytest

from repro.llvm.cost.binary_size import object_text_size_bytes
from repro.llvm.cost.code_size import ir_instruction_count
from repro.llvm.cost.runtime import estimate_runtime, measure_runtime
from repro.llvm.datasets.generators import generate_module
from repro.llvm.interpreter import ExecutionError, Interpreter, StepLimitExceeded, run_module
from repro.llvm.ir.parser import parse_module
from repro.llvm.passes.registry import OZ_PIPELINE, run_pipeline


class TestInterpreter:
    def test_simple_arithmetic(self):
        ir = "define i32 @f(i32 %x) {\nentry:\n  %a = mul i32 %x, 3\n  %b = add i32 %a, 1\n  ret i32 %b\n}\n"
        assert run_module(parse_module(ir), entry_point="f", args=[5]).return_value == 16

    def test_branching(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %c = icmp slt i32 %x, 0\n  br i1 %c, label %neg, label %pos\n"
            "neg:\n  ret i32 -1\n"
            "pos:\n  ret i32 1\n"
            "}\n"
        )
        module = parse_module(ir)
        assert run_module(module, entry_point="f", args=[-5]).return_value == -1
        assert run_module(module, entry_point="f", args=[5]).return_value == 1

    def test_loop_and_phi(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
            "  %acc = phi i32 [ 0, %entry ], [ %acc.next, %loop ]\n"
            "  %acc.next = add i32 %acc, %i\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 5\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %acc.next\n"
            "}\n"
        )
        assert run_module(parse_module(ir), entry_point="f").return_value == 0 + 1 + 2 + 3 + 4

    def test_memory_operations(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  %p = alloca i32\n"
            "  store i32 %x, ptr %p\n"
            "  %v = load i32, ptr %p\n"
            "  %d = mul i32 %v, 2\n"
            "  ret i32 %d\n"
            "}\n"
        )
        assert run_module(parse_module(ir), entry_point="f", args=[21]).return_value == 42

    def test_globals_and_calls(self):
        ir = (
            "; ModuleID = 'm'\n"
            "@g = global i32 10\n"
            "define i32 @helper(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n"
            "define i32 @main() {\n"
            "entry:\n  %v = load i32, ptr @g\n  %r = call i32 @helper(i32 %v)\n  ret i32 %r\n}\n"
        )
        assert run_module(parse_module(ir)).return_value == 11

    def test_division_by_zero_traps(self):
        ir = "define i32 @f(i32 %x) {\nentry:\n  %r = sdiv i32 %x, 0\n  ret i32 %r\n}\n"
        with pytest.raises(ExecutionError):
            run_module(parse_module(ir), entry_point="f", args=[1])

    def test_step_limit(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n  br label %loop\n"
            "loop:\n  br label %loop\n"
            "}\n"
        )
        with pytest.raises(StepLimitExceeded):
            run_module(parse_module(ir), entry_point="f", max_steps=100)

    def test_printf_output_is_observed(self):
        module = generate_module(0, size_scale=3)
        result = run_module(module, max_steps=500_000)
        assert result.output  # main prints its result through @printf.

    def test_integer_wrapping(self):
        ir = "define i32 @f() {\nentry:\n  %r = add i32 2147483647, 1\n  ret i32 %r\n}\n"
        assert run_module(parse_module(ir), entry_point="f").return_value == -2147483648

    def test_execution_result_equality(self):
        module = generate_module(1, size_scale=3)
        assert run_module(module, max_steps=500_000) == run_module(module, max_steps=500_000)


class TestCostModels:
    def test_code_size_is_instruction_count(self, generated_module):
        assert ir_instruction_count(generated_module) == generated_module.instruction_count

    def test_binary_size_positive_and_correlated(self, generated_module):
        size_before = object_text_size_bytes(generated_module)
        assert size_before > 0
        optimized = generated_module.clone()
        run_pipeline(optimized, OZ_PIPELINE)
        assert object_text_size_bytes(optimized) < size_before

    def test_binary_size_targets_differ(self, generated_module):
        assert object_text_size_bytes(generated_module, "x86_64") != object_text_size_bytes(
            generated_module, "aarch64"
        )

    def test_binary_size_unknown_target(self, generated_module):
        with pytest.raises(ValueError):
            object_text_size_bytes(generated_module, "mips")

    def test_runtime_estimate_deterministic(self, generated_module):
        assert estimate_runtime(generated_module) == estimate_runtime(generated_module)
        assert estimate_runtime(generated_module) > 0

    def test_runtime_measurement_is_noisy(self, generated_module):
        rng = random.Random(0)
        samples = {measure_runtime(generated_module, rng=rng) for _ in range(5)}
        assert len(samples) > 1

    def test_optimization_reduces_estimated_runtime(self):
        module = generate_module(4, size_scale=6)
        before = estimate_runtime(module)
        optimized = module.clone()
        run_pipeline(optimized, ["mem2reg", "licm", "gvn", "instcombine", "dce", "simplifycfg"])
        assert estimate_runtime(optimized) < before

    def test_loop_nesting_dominates_runtime(self):
        flat = parse_module(
            "define i32 @main() {\nentry:\n  %a = add i32 1, 2\n  ret i32 %a\n}\n"
        )
        loopy = parse_module(
            "define i32 @main() {\n"
            "entry:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 1000\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %i.next\n"
            "}\n"
        )
        assert estimate_runtime(loopy) > estimate_runtime(flat)
