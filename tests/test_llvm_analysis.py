"""Tests for the LLVM feature extractors (observation spaces)."""

import numpy as np
import pytest

from repro.llvm.analysis.autophase import AUTOPHASE_FEATURE_NAMES, autophase_features
from repro.llvm.analysis.inst2vec import (
    inst2vec_embedding_indices,
    inst2vec_embeddings,
    inst2vec_preprocess,
)
from repro.llvm.analysis.instcount import INSTCOUNT_FEATURE_NAMES, instcount_features
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.datasets.generators import generate_module
from repro.llvm.passes.registry import run_pass


class TestInstCount:
    def test_dimensionality(self, generated_module):
        features = instcount_features(generated_module)
        assert features.shape == (70,)
        assert features.dtype == np.int64
        assert len(INSTCOUNT_FEATURE_NAMES) == 70

    def test_total_instructions_feature(self, generated_module):
        features = instcount_features(generated_module)
        assert features[0] == generated_module.instruction_count

    def test_counts_are_non_negative(self, generated_module):
        assert (instcount_features(generated_module) >= 0).all()

    def test_features_change_with_optimization(self, generated_module):
        before = instcount_features(generated_module).copy()
        run_pass(generated_module, "mem2reg")
        run_pass(generated_module, "dce")
        after = instcount_features(generated_module)
        assert not np.array_equal(before, after)

    def test_deterministic(self, generated_module):
        assert np.array_equal(instcount_features(generated_module), instcount_features(generated_module))


class TestAutophase:
    def test_dimensionality(self, generated_module):
        features = autophase_features(generated_module)
        assert features.shape == (56,)
        assert len(AUTOPHASE_FEATURE_NAMES) == 56

    def test_total_insts_matches_module(self, generated_module):
        features = autophase_features(generated_module)
        index = AUTOPHASE_FEATURE_NAMES.index("TotalInsts")
        assert features[index] == generated_module.instruction_count

    def test_block_and_function_counts(self, generated_module):
        features = autophase_features(generated_module)
        assert features[AUTOPHASE_FEATURE_NAMES.index("TotalFuncs")] == len(
            generated_module.defined_functions()
        )
        total_blocks = sum(len(f.blocks) for f in generated_module.defined_functions())
        assert features[AUTOPHASE_FEATURE_NAMES.index("TotalBlocks")] == total_blocks

    def test_branch_counts_consistent(self, generated_module):
        features = autophase_features(generated_module)
        branches = features[AUTOPHASE_FEATURE_NAMES.index("BranchCount")]
        unconditional = features[AUTOPHASE_FEATURE_NAMES.index("UncondBranches")]
        assert 0 <= unconditional <= branches

    def test_small_module_values(self, small_module):
        features = autophase_features(small_module)
        names = AUTOPHASE_FEATURE_NAMES
        assert features[names.index("NumAddInst")] == 6
        assert features[names.index("NumMulInst")] == 2
        assert features[names.index("NumRetInst")] == 1
        assert features[names.index("TotalMemInst")] == 0


class TestInst2vec:
    def test_preprocess_normalizes_identifiers(self, small_module):
        statements = inst2vec_preprocess(small_module)
        assert len(statements) == small_module.instruction_count
        assert all("<%ID>" in s or "<INT>" in s or "ret" in s for s in statements)
        assert not any("%a" in s for s in statements)

    def test_embeddings_shape(self, small_module):
        embeddings = inst2vec_embeddings(small_module)
        assert len(embeddings) == small_module.instruction_count
        assert embeddings[0].shape == (200,)

    def test_identical_statements_share_embedding(self, small_module):
        statements = inst2vec_preprocess(small_module)
        embeddings = inst2vec_embeddings(small_module)
        by_statement = {}
        for statement, embedding in zip(statements, embeddings):
            if statement in by_statement:
                assert np.array_equal(by_statement[statement], embedding)
            by_statement[statement] = embedding

    def test_embedding_indices_within_vocabulary(self, small_module):
        indices = inst2vec_embedding_indices(small_module)
        assert all(0 <= i < 8565 for i in indices)


class TestPrograml:
    def test_graph_structure(self, generated_module):
        graph = programl_graph(generated_module)
        assert graph.number_of_nodes() > generated_module.instruction_count
        flows = {data["flow"] for _, _, data in graph.edges(data=True)}
        assert flows == {"control", "data", "call"}

    def test_instruction_nodes_match_instruction_count(self, generated_module):
        graph = programl_graph(generated_module)
        instruction_nodes = [
            n for n, data in graph.nodes(data=True)
            if data["type"] == "instruction" and data["text"] != "[external]"
        ]
        assert len(instruction_nodes) == generated_module.instruction_count

    def test_call_edges_connect_functions(self):
        module = generate_module(2, size_scale=4)
        graph = programl_graph(module)
        call_edges = [
            (u, v) for u, v, data in graph.edges(data=True) if data["flow"] == "call"
        ]
        assert call_edges
        functions = {
            (graph.nodes[u]["function"], graph.nodes[v]["function"]) for u, v in call_edges
        }
        assert any(src != dst for src, dst in functions)

    def test_data_edges_have_positions(self, small_module):
        graph = programl_graph(small_module)
        positions = [
            data["position"] for _, _, data in graph.edges(data=True) if data["flow"] == "data"
        ]
        assert max(positions) >= 1
