"""Unit tests for the optimization passes."""

import pytest

from repro.llvm.datasets.generators import generate_module
from repro.llvm.interpreter import run_module
from repro.llvm.ir import Constant, Function, I32, IRBuilder, Instruction, Module, VOID
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.printer import print_module
from repro.llvm.ir.verifier import verify_module
from repro.llvm.passes.registry import (
    ACTION_SPACE_PASSES,
    O3_PIPELINE,
    OZ_PIPELINE,
    PASS_REGISTRY,
    get_pass,
    run_pass,
    run_pipeline,
)


def _parse(ir: str) -> Module:
    module = parse_module(ir)
    assert verify_module(module) == []
    return module


class TestRegistry:
    def test_action_space_has_124_passes(self):
        assert len(ACTION_SPACE_PASSES) == 124
        assert len(set(ACTION_SPACE_PASSES)) == 124

    def test_every_action_is_registered(self):
        for name in ACTION_SPACE_PASSES:
            assert callable(get_pass(name))

    def test_get_pass_accepts_leading_dash(self):
        assert get_pass("-dce") is get_pass("dce")

    def test_unknown_pass_raises(self):
        with pytest.raises(LookupError):
            get_pass("-frobnicate")

    def test_gvn_sink_registered_but_not_an_action(self):
        assert "gvn-sink" in PASS_REGISTRY
        assert "gvn-sink" not in ACTION_SPACE_PASSES

    def test_pipelines_reference_registered_passes(self):
        for name in OZ_PIPELINE + O3_PIPELINE:
            assert name in PASS_REGISTRY


class TestDce:
    def test_removes_unused_instruction(self, small_module):
        before = small_module.instruction_count
        assert run_pass(small_module, "dce")
        assert small_module.instruction_count == before - 1
        assert not any(inst.name == "dead" for inst in small_module.instructions())

    def test_second_run_is_noop(self, small_module):
        run_pass(small_module, "dce")
        assert not run_pass(small_module, "dce")

    def test_adce_removes_dead_cycle(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
            "  %dead = phi i32 [ 1, %entry ], [ %dead.next, %loop ]\n"
            "  %dead.next = add i32 %dead, 1\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 4\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %i.next\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "adce")
        assert not any(inst.name == "dead.next" for inst in module.instructions())

    def test_stores_and_calls_are_not_removed(self, generated_module):
        stores_before = sum(1 for i in generated_module.instructions() if i.opcode == "store")
        run_pass(generated_module, "dce")
        stores_after = sum(1 for i in generated_module.instructions() if i.opcode == "store")
        assert stores_before == stores_after


class TestConstantPasses:
    def test_constprop_folds_chain(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n"
            "  %a = add i32 2, 3\n"
            "  %b = mul i32 %a, 4\n"
            "  ret i32 %b\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "constprop")
        ret = module.function("f").entry.terminator
        assert isinstance(ret.operands[0], Constant)
        assert ret.operands[0].value == 20

    def test_sccp_folds_constant_branch(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n"
            "  %c = icmp slt i32 1, 2\n"
            "  br i1 %c, label %a, label %b\n"
            "a:\n  ret i32 1\n"
            "b:\n  ret i32 2\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "sccp")
        entry = module.function("f").entry
        assert entry.terminator.opcode == "br"
        assert len(entry.terminator.operands) == 1
        assert entry.terminator.operands[0].name == "a"

    def test_ipsccp_propagates_constant_arguments(self):
        ir = (
            "define i32 @callee(i32 %x) {\n"
            "entry:\n  %r = add i32 %x, 1\n  ret i32 %r\n"
            "}\n"
            "define i32 @main() {\n"
            "entry:\n  %a = call i32 @callee(i32 41)\n  ret i32 %a\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "ipsccp")
        callee_ret = module.function("callee").blocks[-1].terminator
        assert isinstance(callee_ret.operands[0], Constant)
        assert callee_ret.operands[0].value == 42

    def test_constmerge_merges_identical_constants(self):
        module = Module("m")
        from repro.llvm.ir.values import GlobalVariable

        module.add_global(GlobalVariable("a", I32, 5, is_constant_global=True))
        module.add_global(GlobalVariable("b", I32, 5, is_constant_global=True))
        function = Function("main")
        entry = function.add_block("entry")
        builder = IRBuilder(function, entry)
        builder.load(module.globals["b"], I32)
        builder.ret(Constant(I32, 0))
        module.add_function(function)
        assert run_pass(module, "constmerge")
        assert len(module.globals) == 1


class TestInstcombine:
    @pytest.mark.parametrize(
        "expression,expected",
        [
            ("%r = add i32 %x, 0", "%x"),
            ("%r = mul i32 %x, 1", "%x"),
            ("%r = sub i32 %x, %x", "0"),
            ("%r = xor i32 %x, %x", "0"),
            ("%r = and i32 %x, 0", "0"),
        ],
    )
    def test_identities(self, expression, expected):
        ir = f"define i32 @f(i32 %x) {{\nentry:\n  {expression}\n  ret i32 %r\n}}\n"
        module = _parse(ir)
        assert run_pass(module, "instcombine")
        ret = module.function("f").entry.terminator
        assert ret.operands[0].short().lstrip("%") == expected.lstrip("%")

    def test_icmp_identical_operands(self):
        ir = "define i1 @f(i32 %x) {\nentry:\n  %r = icmp eq i32 %x, %x\n  ret i1 %r\n}\n"
        module = _parse(ir)
        assert run_pass(module, "instcombine")
        ret = module.function("f").entry.terminator
        assert isinstance(ret.operands[0], Constant) and ret.operands[0].value == 1

    def test_canonicalizes_constant_to_rhs(self):
        ir = "define i32 @f(i32 %x) {\nentry:\n  %r = add i32 5, %x\n  %u = add i32 %r, %x\n  ret i32 %u\n}\n"
        module = _parse(ir)
        run_pass(module, "instcombine")
        add = next(i for i in module.function("f").instructions() if i.name == "r")
        assert isinstance(add.operands[1], Constant)

    def test_reassociate_enables_folding(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %a = add i32 %x, 3\n  %b = add i32 %a, 4\n  ret i32 %b\n}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "reassociate")
        b = next(i for i in module.function("f").instructions() if i.name == "b")
        assert isinstance(b.operands[1], Constant) and b.operands[1].value == 7


class TestCse:
    def test_early_cse_removes_block_local_duplicate(self, small_module):
        before = small_module.instruction_count
        assert run_pass(small_module, "early-cse")
        assert small_module.instruction_count < before

    def test_gvn_removes_cross_block_duplicate(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %a = mul i32 %x, %x\n  br label %next\n"
            "next:\n  %b = mul i32 %x, %x\n  %s = add i32 %a, %b\n  ret i32 %s\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "gvn")
        assert not any(inst.name == "b" for inst in module.instructions())

    def test_gvn_distinguishes_callees(self):
        ir = (
            "define i32 @f(i32 %x) { \nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n"
            "define i32 @g(i32 %x) { \nentry:\n  %r = add i32 %x, 2\n  ret i32 %r\n}\n"
            "define i32 @main() {\n"
            "entry:\n"
            "  %a = call i32 @f(i32 1) ; pure\n"
            "  %b = call i32 @g(i32 1) ; pure\n"
            "  %s = add i32 %a, %b\n"
            "  ret i32 %s\n"
            "}\n"
        )
        module = _parse(ir)
        run_pass(module, "gvn")
        calls = [i for i in module.function("main").instructions() if i.opcode == "call"]
        assert len(calls) == 2

    def test_gvn_respects_dominance(self):
        # The same expression in two sibling blocks must NOT be unified.
        ir = (
            "define i32 @f(i32 %x, i32 %c) {\n"
            "entry:\n  %p = icmp eq i32 %c, 0\n  br i1 %p, label %a, label %b\n"
            "a:\n  %u = mul i32 %x, %x\n  ret i32 %u\n"
            "b:\n  %v = mul i32 %x, %x\n  ret i32 %v\n"
            "}\n"
        )
        module = _parse(ir)
        run_pass(module, "gvn")
        assert verify_module(module) == []
        names = {inst.name for inst in module.instructions() if inst.name}
        assert {"u", "v"} <= names or len(names) >= 2


class TestSimplifyCfg:
    def test_removes_unreachable_block(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n  ret i32 0\n"
            "dead:\n  ret i32 1\n"
            "}\n"
        )
        module = parse_module(ir)
        assert run_pass(module, "simplifycfg")
        assert len(module.function("f").blocks) == 1

    def test_merges_straight_line_blocks(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %a = add i32 %x, 1\n  br label %next\n"
            "next:\n  %b = add i32 %a, 2\n  ret i32 %b\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "simplifycfg")
        assert len(module.function("f").blocks) == 1
        assert verify_module(module) == []

    def test_folds_constant_branch_and_prunes(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n  br i1 1, label %a, label %b\n"
            "a:\n  ret i32 1\n"
            "b:\n  ret i32 2\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "simplifycfg")
        assert len(module.function("f").blocks) == 1
        assert module.function("f").entry.terminator.operands[0].value == 1

    def test_mergereturn_creates_single_exit(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %c = icmp slt i32 %x, 0\n  br i1 %c, label %a, label %b\n"
            "a:\n  ret i32 1\n"
            "b:\n  ret i32 2\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "mergereturn")
        rets = [i for i in module.function("f").instructions() if i.opcode == "ret"]
        assert len(rets) == 1
        assert verify_module(module) == []


class TestMem2Reg:
    def test_promotes_single_store_alloca(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  %p = alloca i32\n"
            "  store i32 %x, ptr %p\n"
            "  br label %use\n"
            "use:\n"
            "  %v = load i32, ptr %p\n"
            "  ret i32 %v\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "mem2reg")
        opcodes = {inst.opcode for inst in module.function("f").instructions()}
        assert "alloca" not in opcodes and "load" not in opcodes and "store" not in opcodes

    def test_promotes_block_local_alloca(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  %p = alloca i32\n"
            "  store i32 1, ptr %p\n"
            "  %a = load i32, ptr %p\n"
            "  store i32 %x, ptr %p\n"
            "  %b = load i32, ptr %p\n"
            "  %s = add i32 %a, %b\n"
            "  ret i32 %s\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "mem2reg")
        assert verify_module(module) == []
        assert run_module(module, entry_point="f", args=[5]).return_value == 6

    def test_reg2mem_is_inverse_direction(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %a = add i32 %x, 1\n  br label %next\n"
            "next:\n  %b = add i32 %a, 2\n  ret i32 %b\n"
            "}\n"
        )
        module = _parse(ir)
        before = module.instruction_count
        assert run_pass(module, "reg2mem")
        assert module.instruction_count > before
        assert verify_module(module) == []

    def test_dse_removes_overwritten_store(self):
        ir = (
            "; ModuleID = 'm'\n"
            "@g = global i32 0\n"
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  store i32 1, ptr @g\n"
            "  store i32 %x, ptr @g\n"
            "  %v = load i32, ptr @g\n"
            "  ret i32 %v\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "dse")
        stores = [i for i in module.function("f").instructions() if i.opcode == "store"]
        assert len(stores) == 1

    def test_dse_keeps_store_before_load(self):
        ir = (
            "; ModuleID = 'm'\n"
            "@g = global i32 0\n"
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  store i32 1, ptr @g\n"
            "  %v = load i32, ptr @g\n"
            "  store i32 %x, ptr @g\n"
            "  ret i32 %v\n"
            "}\n"
        )
        module = _parse(ir)
        assert not run_pass(module, "dse")


class TestLoopPasses:
    LOOP_IR = (
        "define i32 @f(i32 %a, i32 %b) {\n"
        "entry:\n  br label %loop\n"
        "loop:\n"
        "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
        "  %acc = phi i32 [ 0, %entry ], [ %acc.next, %loop ]\n"
        "  %inv = mul i32 %a, %b\n"
        "  %acc.next = add i32 %acc, %inv\n"
        "  %i.next = add i32 %i, 1\n"
        "  %c = icmp slt i32 %i.next, 4\n"
        "  br i1 %c, label %loop, label %exit\n"
        "exit:\n  ret i32 %acc.next\n"
        "}\n"
    )

    def test_licm_hoists_invariant(self):
        module = _parse(self.LOOP_IR)
        assert run_pass(module, "licm")
        loop_block = module.function("f").block_by_name("loop")
        assert not any(inst.name == "inv" for inst in loop_block.instructions)
        entry = module.function("f").entry
        assert any(inst.name == "inv" for inst in entry.instructions)
        assert verify_module(module) == []

    def test_licm_preserves_semantics(self):
        module = _parse(self.LOOP_IR)
        expected = run_module(module, entry_point="f", args=[3, 5]).return_value
        run_pass(module, "licm")
        assert run_module(module, entry_point="f", args=[3, 5]).return_value == expected

    def test_loop_unroll_removes_back_edge(self):
        module = _parse(self.LOOP_IR)
        expected = run_module(module, entry_point="f", args=[2, 7]).return_value
        assert run_pass(module, "loop-unroll")
        from repro.llvm.ir.cfg import natural_loops

        assert natural_loops(module.function("f")) == []
        assert verify_module(module) == []
        assert run_module(module, entry_point="f", args=[2, 7]).return_value == expected

    def test_unroll_then_fold_collapses_constant_loop(self):
        ir = (
            "define i32 @f() {\n"
            "entry:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 5\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %i.next\n"
            "}\n"
        )
        module = _parse(ir)
        run_pipeline(module, ["loop-unroll", "instcombine", "simplifycfg", "dce"])
        assert module.instruction_count <= 3
        assert run_module(module, entry_point="f").return_value == 5

    def test_loop_deletion_removes_unused_pure_loop(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %entry ], [ %i.next, %loop ]\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 100\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %x\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "loop-deletion")
        assert module.function("f").block_by_name("loop") is None
        assert run_module(module, entry_point="f", args=[9]).return_value == 9

    def test_loop_simplify_creates_preheader(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n  %c0 = icmp slt i32 %x, 0\n  br i1 %c0, label %pre1, label %pre2\n"
            "pre1:\n  br label %loop\n"
            "pre2:\n  br label %loop\n"
            "loop:\n"
            "  %i = phi i32 [ 0, %pre1 ], [ 1, %pre2 ], [ %i.next, %loop ]\n"
            "  %i.next = add i32 %i, 1\n"
            "  %c = icmp slt i32 %i.next, 4\n"
            "  br i1 %c, label %loop, label %exit\n"
            "exit:\n  ret i32 %i.next\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "loop-simplify")
        assert verify_module(module) == []


class TestInterprocedural:
    CALL_IR = (
        "define i32 @helper(i32 %a, i32 %b) {\n"
        "entry:\n  %s = add i32 %a, %b\n  ret i32 %s\n"
        "}\n"
        "define i32 @main() {\n"
        "entry:\n  %r = call i32 @helper(i32 3, i32 4)\n  %t = add i32 %r, 1\n  ret i32 %t\n"
        "}\n"
    )

    def test_inline_replaces_call(self):
        module = _parse(self.CALL_IR)
        assert run_pass(module, "inline")
        main = module.function("main")
        assert not any(inst.opcode == "call" for inst in main.instructions())
        assert verify_module(module) == []
        assert run_module(module).return_value == 8

    def test_inline_then_cleanup_matches_oz(self):
        module = _parse(self.CALL_IR)
        run_pipeline(module, ["inline", "sccp", "simplifycfg", "globaldce", "dce"])
        assert run_module(module).return_value == 8
        assert module.instruction_count <= 4

    def test_inline_respects_noinline(self):
        ir = self.CALL_IR.replace("define i32 @helper(i32 %a, i32 %b) {", "define i32 @helper(i32 %a, i32 %b) noinline {")
        module = parse_module(ir)
        run_pass(module, "inline")
        assert any(inst.opcode == "call" for inst in module.function("main").instructions())

    def test_globaldce_removes_uncalled_function(self):
        ir = self.CALL_IR + "define i32 @dead() {\nentry:\n  ret i32 0\n}\n"
        module = _parse(ir)
        assert run_pass(module, "globaldce")
        assert module.function("dead") is None
        assert module.function("helper") is not None

    def test_deadargelim_drops_unused_argument(self):
        ir = (
            "define i32 @helper(i32 %a, i32 %unused) {\n"
            "entry:\n  %s = add i32 %a, 1\n  ret i32 %s\n"
            "}\n"
            "define i32 @main() {\n"
            "entry:\n  %r = call i32 @helper(i32 3, i32 99)\n  ret i32 %r\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "deadargelim")
        assert len(module.function("helper").args) == 1
        call = next(i for i in module.function("main").instructions() if i.opcode == "call")
        assert len(call.operands) == 1
        assert run_module(module).return_value == 4

    def test_mergefunc_redirects_duplicate(self):
        ir = (
            "define i32 @f1(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n"
            "define i32 @f2(i32 %x) {\nentry:\n  %r = add i32 %x, 1\n  ret i32 %r\n}\n"
            "define i32 @main() {\n"
            "entry:\n  %a = call i32 @f1(i32 1)\n  %b = call i32 @f2(i32 2)\n  %s = add i32 %a, %b\n  ret i32 %s\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "mergefunc")
        assert len(module.defined_functions()) == 2  # main + one merged helper
        assert run_module(module).return_value == 5

    def test_globalopt_propagates_unwritten_global(self):
        ir = (
            "; ModuleID = 'm'\n"
            "@k = global i32 11\n"
            "define i32 @main() {\n"
            "entry:\n  %v = load i32, ptr @k\n  ret i32 %v\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "globalopt")
        assert module.function("main").entry.terminator.operands[0].value == 11

    def test_tailcallelim_marks_tail_call(self):
        ir = (
            "define i32 @helper(i32 %a) {\nentry:\n  ret i32 %a\n}\n"
            "define i32 @main(i32 %x) {\n"
            "entry:\n  %r = call i32 @helper(i32 %x)\n  ret i32 %r\n"
            "}\n"
        )
        module = _parse(ir)
        assert run_pass(module, "tailcallelim")
        call = next(i for i in module.function("main").instructions() if i.opcode == "call")
        assert call.attrs.get("tail")


class TestLowering:
    def test_lowerswitch_expands_switch(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  switch i32 %x, label %d [ i32 0, label %a ] [ i32 1, label %b ]\n"
            "a:\n  ret i32 10\n"
            "b:\n  ret i32 20\n"
            "d:\n  ret i32 30\n"
            "}\n"
        )
        module = _parse(ir)
        expected = {value: run_module(module, entry_point="f", args=[value]).return_value for value in (0, 1, 7)}
        assert run_pass(module, "lowerswitch")
        assert not any(inst.opcode == "switch" for inst in module.instructions())
        assert verify_module(module) == []
        for value, result in expected.items():
            assert run_module(module, entry_point="f", args=[value]).return_value == result

    def test_noop_passes_report_no_change(self, generated_module):
        for name in ("loweratomic", "lowerinvoke", "memcpyopt", "barrier", "attributor"):
            assert not run_pass(generated_module, name)

    def test_verify_action_never_changes_module(self, generated_module):
        text = print_module(generated_module)
        assert not run_pass(generated_module, "verify")
        assert print_module(generated_module) == text


class TestPipelines:
    @pytest.mark.parametrize("pipeline", [OZ_PIPELINE, O3_PIPELINE])
    def test_pipelines_shrink_generated_code(self, pipeline):
        module = generate_module(3, size_scale=6)
        before = module.instruction_count
        run_pipeline(module, pipeline)
        assert module.instruction_count < before * 0.6
        assert verify_module(module) == []

    def test_pipelines_preserve_semantics(self):
        module = generate_module(11, size_scale=5)
        expected = run_module(module, max_steps=500_000)
        optimized = module.clone()
        run_pipeline(optimized, OZ_PIPELINE)
        assert run_module(optimized, max_steps=500_000) == expected

    def test_oz_is_comparable_to_o3_on_average(self):
        # -Oz optimizes for size. On individual modules -O3's unrolling can
        # go either way (a fully-folded constant loop shrinks, a materialized
        # unroll grows), so the comparison is made in aggregate.
        oz_total = o3_total = 0
        for seed in range(6):
            module = generate_module(seed, size_scale=6)
            oz = module.clone()
            o3 = module.clone()
            run_pipeline(oz, OZ_PIPELINE)
            run_pipeline(o3, O3_PIPELINE)
            oz_total += oz.instruction_count
            o3_total += o3.instruction_count
        # The two pipelines land in the same ballpark; -O3's full unrolling of
        # constant-trip loops can make it *smaller* on these synthetic
        # modules, so only a same-order-of-magnitude check is meaningful.
        assert oz_total <= o3_total * 2.0
        assert o3_total <= oz_total * 2.0
