"""Property-based tests (hypothesis) for core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.compiler_env_state import CompilerEnvState, CompilerEnvStateReader, CompilerEnvStateWriter
from repro.core.datasets.uri import BenchmarkUri
from repro.core.spaces import Commandline, CommandlineFlag, Discrete, NamedDiscrete, Permutation, Scalar
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import GccSpec
from repro.llvm.datasets.generators import generate_module
from repro.llvm.interpreter import run_module
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.printer import print_module
from repro.llvm.ir.verifier import verify_module
from repro.llvm.passes.registry import ACTION_SPACE_PASSES, run_pass
from repro.loop_tool.cost import gp100_flops
from repro.loop_tool.ir import LoopTree
from repro.util.statistics import geometric_mean, percentile

_SETTINGS = settings(max_examples=25, deadline=None, suppress_health_check=[HealthCheck.too_slow])


class TestSpaceProperties:
    @_SETTINGS
    @given(n=st.integers(min_value=1, max_value=500), seed=st.integers(0, 2**32 - 1))
    def test_discrete_samples_are_members(self, n, seed):
        space = Discrete(n)
        space.seed(seed)
        assert space.contains(space.sample())

    @_SETTINGS
    @given(
        names=st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=6), min_size=1, max_size=20, unique=True),
        seed=st.integers(0, 1000),
    )
    def test_named_discrete_string_round_trip(self, names, seed):
        space = NamedDiscrete(names)
        space.seed(seed)
        actions = [space.sample() for _ in range(5)]
        assert space.from_string(space.to_string(actions)) == actions

    @_SETTINGS
    @given(n=st.integers(min_value=1, max_value=50), seed=st.integers(0, 1000))
    def test_permutation_samples_are_permutations(self, n, seed):
        space = Permutation(n)
        space.seed(seed)
        assert space.contains(space.sample())

    @_SETTINGS
    @given(
        lo=st.integers(min_value=-100, max_value=0),
        hi=st.integers(min_value=1, max_value=100),
        seed=st.integers(0, 1000),
    )
    def test_scalar_samples_within_bounds(self, lo, hi, seed):
        space = Scalar(min=lo, max=hi, dtype=int)
        space.seed(seed)
        assert space.contains(space.sample())

    @_SETTINGS
    @given(
        flags=st.lists(st.text(alphabet="abcdefg", min_size=1, max_size=8), min_size=1, max_size=15, unique=True),
        seed=st.integers(0, 1000),
    )
    def test_commandline_round_trip(self, flags, seed):
        space = Commandline([CommandlineFlag(name, f"-{name}", "") for name in flags])
        space.seed(seed)
        actions = [space.sample() for _ in range(4)]
        assert space.from_commandline(space.to_commandline(actions)) == actions


class TestUriProperties:
    @_SETTINGS
    @given(
        dataset=st.text(alphabet="abcdefghij-", min_size=1, max_size=12).filter(lambda s: s.strip("-")),
        path=st.text(alphabet="abcdefghij0123456789/", min_size=0, max_size=20),
    )
    def test_uri_canonicalization_is_idempotent(self, dataset, path):
        uri = f"benchmark://{dataset}/{path}" if path else f"benchmark://{dataset}"
        canonical = BenchmarkUri.canonicalize(uri)
        assert BenchmarkUri.canonicalize(canonical) == canonical


class TestStateProperties:
    @_SETTINGS
    @given(
        benchmark=st.text(alphabet="abc/:-0123456789", min_size=1, max_size=30),
        reward=st.one_of(st.none(), st.floats(allow_nan=False, allow_infinity=False, width=32)),
        walltime=st.floats(min_value=0, max_value=1e6),
    )
    def test_state_csv_round_trip(self, benchmark, reward, walltime):
        import io

        state = CompilerEnvState(benchmark=benchmark, commandline="-dce -gvn", walltime=walltime, reward=reward)
        buffer = io.StringIO()
        CompilerEnvStateWriter(buffer).write_state(state)
        buffer.seek(0)
        (read,) = list(CompilerEnvStateReader(buffer))
        assert read == state


class TestStatisticsProperties:
    @_SETTINGS
    @given(values=st.lists(st.floats(min_value=0.01, max_value=100), min_size=1, max_size=30))
    def test_geomean_between_min_and_max(self, values):
        mean = geometric_mean(values)
        assert min(values) - 1e-9 <= mean <= max(values) + 1e-9

    @_SETTINGS
    @given(values=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=30))
    def test_percentile_bounds(self, values):
        assert percentile(values, 0) == pytest.approx(min(values))
        assert percentile(values, 100) == pytest.approx(max(values))
        assert min(values) <= percentile(values, 50) <= max(values)


class TestIrProperties:
    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_generated_modules_always_verify(self, seed):
        module = generate_module(seed, size_scale=3)
        assert verify_module(module, raise_on_error=False) == []

    @_SETTINGS
    @given(seed=st.integers(min_value=0, max_value=10_000))
    def test_print_parse_round_trip_preserves_instruction_count(self, seed):
        module = generate_module(seed, size_scale=3)
        reparsed = parse_module(print_module(module))
        assert reparsed.instruction_count == module.instruction_count
        assert print_module(reparsed) == print_module(module)

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        passes=st.lists(st.sampled_from(sorted(ACTION_SPACE_PASSES)), min_size=1, max_size=8),
    )
    def test_passes_preserve_semantics_and_validity(self, seed, passes):
        """The central correctness invariant: any sequence of pass actions
        leaves the module verifiable and observationally equivalent."""
        module = generate_module(seed, size_scale=3)
        expected = run_module(module, max_steps=500_000)
        for name in passes:
            run_pass(module, name)
            assert verify_module(module, raise_on_error=False) == []
        assert run_module(module, max_steps=500_000) == expected

    @settings(max_examples=15, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    @given(
        seed=st.integers(min_value=0, max_value=5_000),
        passes=st.lists(st.sampled_from(sorted(ACTION_SPACE_PASSES)), min_size=1, max_size=6),
    )
    def test_passes_never_increase_code_size_beyond_bound(self, seed, passes):
        """Passes may grow code (reg2mem, lowerswitch, inlining) but only by a
        bounded factor — there is no runaway growth."""
        module = generate_module(seed, size_scale=3)
        original = module.instruction_count
        for name in passes:
            run_pass(module, name)
        assert module.instruction_count <= original * 6 + 50


class TestGccProperties:
    SPEC = GccSpec("11.2.0")
    GCC = SimulatedGcc(SPEC)

    @_SETTINGS
    @given(data=st.data())
    def test_asm_size_is_deterministic_and_bounded(self, data):
        choices = [
            data.draw(st.integers(min_value=0, max_value=min(len(option) - 1, 30)))
            for option in self.SPEC.options
        ]
        size_a = self.GCC.asm_size("chstone/aes", choices)
        size_b = self.GCC.asm_size("chstone/aes", choices)
        assert size_a == size_b
        base = self.GCC.base_size("chstone/aes")
        assert 0.3 * base <= size_a <= 1.6 * base

    @_SETTINGS
    @given(data=st.data())
    def test_commandline_only_lists_non_default_choices(self, data):
        choices = self.SPEC.default_choices()
        index = data.draw(st.integers(min_value=0, max_value=len(choices) - 1))
        choices[index] = data.draw(st.integers(min_value=1, max_value=min(len(self.SPEC.options[index]) - 1, 10)))
        commandline = self.SPEC.choices_to_commandline(choices)
        assert len(commandline.split()) == 1


class TestLoopToolProperties:
    @_SETTINGS
    @given(
        n_exp=st.integers(min_value=10, max_value=24),
        splits=st.lists(st.integers(min_value=2, max_value=64), min_size=0, max_size=3),
        thread_outer=st.booleans(),
    )
    def test_schedule_always_covers_problem_and_flops_positive(self, n_exp, splits, thread_outer):
        tree = LoopTree(n=2**n_exp)
        for factor in splits:
            tree.split(0, factor=factor)
        if thread_outer:
            tree.toggle_threaded(0)
        assert tree.total_iterations >= tree.n
        assert gp100_flops(tree, noise=0) > 0
