"""Tests for state and semantics validation."""

import pytest

import repro
from repro.core.compiler_env_state import CompilerEnvState
from repro.core.validation import validate_state


@pytest.fixture()
def env():
    env = repro.make("llvm-v0", benchmark="cbench-v1/crc32", reward_space="IrInstructionCount")
    yield env
    env.close()


class TestStateValidation:
    def test_valid_state_passes(self, env):
        env.reset()
        env.multistep([env.action_space["mem2reg"], env.action_space["dce"]])
        result = validate_state(env, env.state)
        assert result.okay()
        assert result.reward_validated
        assert not result.reward_validation_failed

    def test_wrong_reward_is_detected(self, env):
        env.reset()
        env.step(env.action_space["mem2reg"])
        state = env.state
        tampered = CompilerEnvState(
            benchmark=state.benchmark,
            commandline=state.commandline,
            walltime=state.walltime,
            reward=(state.reward or 0) + 1000,
        )
        result = validate_state(env, tampered)
        assert not result.okay()
        assert result.reward_validation_failed

    def test_semantics_validation_runs_for_cbench(self, env):
        env.reset()
        env.multistep([env.action_space["sccp"], env.action_space["simplifycfg"]])
        result = env.validate()
        assert result.benchmark_semantics_validated
        assert not result.benchmark_semantics_validation_failed

    def test_unparseable_commandline_is_replay_failure(self, env):
        state = CompilerEnvState(
            benchmark="benchmark://cbench-v1/crc32", commandline="-not-a-real-pass", reward=0.0
        )
        result = validate_state(env, state)
        assert result.actions_replay_failed
        assert not result.okay()

    def test_validation_result_string(self, env):
        env.reset()
        result = env.validate()
        assert "cbench" in str(result)


class TestNondeterminismDetection:
    def test_gvn_sink_excluded_from_action_space(self, env):
        # The paper removed -gvn-sink after validation caught its
        # nondeterministic output; it must not be a selectable action.
        assert "gvn-sink" not in env.action_space.names

    def test_gvn_sink_is_registered_for_study(self):
        from repro.llvm.passes.registry import PASS_REGISTRY

        assert "gvn-sink" in PASS_REGISTRY
