"""Unit tests for the service runtime: benchmark cache, session management,
fault tolerance."""

import pytest

from repro.core.datasets import Benchmark
from repro.core.service import (
    CompilationSession,
    CompilerGymServiceRuntime,
    ConnectionOpts,
    ServiceConnection,
)
from repro.core.service.proto import (
    EndSessionRequest,
    ForkSessionRequest,
    StartSessionRequest,
    StepRequest,
)
from repro.core.service.runtime.benchmark_cache import BenchmarkCache
from repro.core.spaces import NamedDiscrete, ObservationSpaceSpec, Scalar
from repro.errors import ServiceError, SessionNotFound


class _CounterSession(CompilationSession):
    """A trivial compiler: the state is a counter, actions add their index."""

    compiler_version = "counter 1.0"
    action_spaces = [NamedDiscrete(["add0", "add1", "add2"], name="counter")]
    observation_spaces = [
        ObservationSpaceSpec("value", 0, Scalar(min=0, max=None, dtype=int), default_value=0),
        ObservationSpaceSpec("crash", 1, Scalar(min=0, max=None, dtype=int), default_value=0),
    ]

    def __init__(self, working_dir, action_space, benchmark):
        super().__init__(working_dir, action_space, benchmark)
        self.value = int(benchmark.program or 0)

    def apply_action(self, action):
        action = int(action)
        if action == 2:
            raise RuntimeError("simulated compiler crash")
        self.value += action
        return False, None, action == 0

    def get_observation(self, observation_space):
        if observation_space.id == "crash":
            raise RuntimeError("simulated observation crash")
        return self.value

    def fork(self):
        forked = _CounterSession(self.working_dir, self.action_space, self.benchmark)
        forked.value = self.value
        return forked


def _resolver(uri: str) -> Benchmark:
    return Benchmark(uri, program=int(uri.rsplit("/", 1)[-1]))


def _runtime() -> CompilerGymServiceRuntime:
    return CompilerGymServiceRuntime(session_type=_CounterSession, benchmark_resolver=_resolver)


class TestBenchmarkCache:
    def test_hit_and_miss_counters(self):
        cache = BenchmarkCache()
        benchmark = Benchmark("benchmark://t-v0/1", program=b"x" * 100)
        assert cache.get("benchmark://t-v0/1") is None
        cache["benchmark://t-v0/1"] = benchmark
        assert cache["benchmark://t-v0/1"] is benchmark
        assert cache.misses == 1
        assert cache.hits == 1

    def test_eviction_respects_max_size(self):
        cache = BenchmarkCache(max_size_in_bytes=250)
        for i in range(5):
            cache[f"benchmark://t-v0/{i}"] = Benchmark(f"benchmark://t-v0/{i}", program=b"x" * 100)
        assert cache.size_in_bytes <= 250 or cache.size == 1
        assert cache.evictions >= 3
        # The most recently inserted entry always survives.
        assert "benchmark://t-v0/4" in cache

    def test_lru_order(self):
        cache = BenchmarkCache(max_size_in_bytes=250)
        cache["a"] = Benchmark("benchmark://t-v0/a", program=b"x" * 100)
        cache["b"] = Benchmark("benchmark://t-v0/b", program=b"x" * 100)
        _ = cache["a"]  # Touch a so that b is the LRU entry.
        cache["c"] = Benchmark("benchmark://t-v0/c", program=b"x" * 100)
        assert "a" in cache
        assert "b" not in cache


class TestRuntime:
    def test_get_spaces(self):
        spaces = _runtime().get_spaces()
        assert [s.name for s in spaces.action_spaces] == ["counter"]
        assert [s.name for s in spaces.observation_spaces] == ["value", "crash"]

    def test_start_session_and_observation(self):
        runtime = _runtime()
        reply = runtime.start_session(
            StartSessionRequest(benchmark_uri="benchmark://t-v0/5", observation_space_names=["value"])
        )
        assert reply.observations[0].value() == 5

    def test_step_applies_actions_in_batch(self):
        runtime = _runtime()
        session = runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        reply = runtime.step(
            StepRequest(session_id=session.session_id, actions=[1, 1, 1], observation_space_names=["value"])
        )
        assert reply.observations[0].value() == 3
        assert not reply.action_had_no_effect

    def test_action_had_no_effect(self):
        runtime = _runtime()
        session = runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        reply = runtime.step(StepRequest(session_id=session.session_id, actions=[0]))
        assert reply.action_had_no_effect

    def test_fork_session_is_independent(self):
        runtime = _runtime()
        session = runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        runtime.step(StepRequest(session_id=session.session_id, actions=[1]))
        fork = runtime.fork_session(ForkSessionRequest(session_id=session.session_id))
        runtime.step(StepRequest(session_id=session.session_id, actions=[1]))
        original = runtime.step(
            StepRequest(session_id=session.session_id, actions=[], observation_space_names=["value"])
        )
        forked = runtime.step(
            StepRequest(session_id=fork.session_id, actions=[], observation_space_names=["value"])
        )
        assert original.observations[0].value() == 2
        assert forked.observations[0].value() == 1

    def test_end_session(self):
        runtime = _runtime()
        session = runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        reply = runtime.end_session(EndSessionRequest(session_id=session.session_id))
        assert reply.remaining_sessions == 0
        with pytest.raises(SessionNotFound):
            runtime.step(StepRequest(session_id=session.session_id, actions=[]))

    def test_benchmark_cache_amortizes_resolution(self):
        runtime = _runtime()
        for _ in range(3):
            runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/9"))
        assert runtime.benchmark_cache.hits == 2
        assert runtime.benchmark_cache.misses >= 1

    def test_unknown_observation_space(self):
        runtime = _runtime()
        session = runtime.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        with pytest.raises(ServiceError):
            runtime.step(
                StepRequest(session_id=session.session_id, actions=[], observation_space_names=["nope"])
            )


class TestServiceConnection:
    def test_startup_records_spaces(self):
        connection = ServiceConnection(_runtime)
        assert connection.startup_wall_time >= 0
        assert [s.name for s in connection.spaces.action_spaces] == ["counter"]
        connection.close()

    def test_call_statistics(self):
        connection = ServiceConnection(_runtime)
        session = connection.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        connection.step(StepRequest(session_id=session.session_id, actions=[1]))
        assert connection.stats["start_session"].calls == 1
        assert connection.stats["step"].calls == 1
        connection.close()

    def test_crash_triggers_restart_and_retry(self):
        connection = ServiceConnection(_runtime, ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001))
        session = connection.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        # Action 2 always raises inside the backend; the connection restarts
        # the runtime, and because the session is gone after restart the call
        # eventually surfaces as a service error rather than a raw crash.
        with pytest.raises((ServiceError, SessionNotFound)):
            connection.step(StepRequest(session_id=session.session_id, actions=[2]))
        assert connection.restart_count >= 1
        connection.close()

    def test_closed_connection_rejects_calls(self):
        connection = ServiceConnection(_runtime)
        connection.close()
        from repro.errors import ServiceIsClosed

        with pytest.raises(ServiceIsClosed):
            connection.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))

    def test_context_manager(self):
        with ServiceConnection(_runtime) as connection:
            assert not connection.closed
        assert connection.closed
