"""Tests for the GCC flag-tuning environment and its substrate."""

import numpy as np
import pytest

import repro
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import FlagOption, GccSpec, OLevelOption, ParamOption


class TestGccSpec:
    def test_option_count_matches_paper(self):
        spec = GccSpec("11.2.0")
        assert len(spec) == 502
        flags = [o for o in spec.options if isinstance(o, FlagOption)]
        params = [o for o in spec.options if isinstance(o, ParamOption)]
        assert len(flags) == 242
        assert len(params) == 259
        assert isinstance(spec.options[0], OLevelOption)

    def test_search_space_size_order_of_magnitude(self):
        spec = GccSpec("11.2.0")
        # The paper quotes ~10^4461 for GCC 11.2; the generated spec lands in
        # the same order of magnitude (thousands of decimal digits).
        assert 3000 < spec.log10_size < 6000

    def test_older_version_has_smaller_space(self):
        modern = GccSpec("11.2.0")
        legacy = GccSpec("5")
        assert legacy.log10_size < modern.log10_size / 4
        assert len(legacy) < len(modern)

    def test_spec_is_deterministic(self):
        a, b = GccSpec("11.2.0"), GccSpec("11.2.0")
        assert [o.name for o in a.options] == [o.name for o in b.options]
        assert [len(o) for o in a.options] == [len(o) for o in b.options]

    def test_o_level_option_rendering(self):
        option = OLevelOption()
        assert option[0] == ""
        assert option[1] == "-O0"
        assert option[len(option) - 1] == "-Os"

    def test_flag_option_rendering(self):
        option = FlagOption("peel-loops")
        assert len(option) == 3
        assert option[0] == ""
        assert option[1] == "-fpeel-loops"
        assert option[2] == "-fno-peel-loops"

    def test_flag_option_with_arguments(self):
        option = FlagOption("vect-cost-model", arg_values=[1, 2])
        assert len(option) == 5
        assert option[3] == "-fvect-cost-model=1"

    def test_param_option_rendering(self):
        option = ParamOption("inline-unit-growth", max_value=100)
        assert option[0] == ""
        assert option[1] == "--param=inline-unit-growth=0"
        assert option[51] == "--param=inline-unit-growth=50"

    def test_commandline_rendering(self):
        spec = GccSpec("11.2.0")
        choices = spec.default_choices()
        assert spec.choices_to_commandline(choices) == ""
        choices[0] = 1 + OLevelOption.LEVELS.index("-Os")
        choices[1] = 1
        commandline = spec.choices_to_commandline(choices)
        assert "-Os" in commandline


class TestSimulatedGcc:
    def test_determinism(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        choices = spec.default_choices()
        choices[0] = 3
        assert gcc.asm_size("chstone/aes", choices) == gcc.asm_size("chstone/aes", choices)

    def test_os_is_smallest_o_level(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        sizes = {}
        for level in ("-O0", "-O2", "-O3", "-Os"):
            choices = spec.default_choices()
            choices[0] = 1 + OLevelOption.LEVELS.index(level)
            sizes[level] = gcc.obj_size("chstone/adpcm", choices)
        assert sizes["-Os"] < sizes["-O2"] < sizes["-O0"]
        assert sizes["-Os"] < sizes["-O3"]

    def test_flags_move_size_in_both_directions(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        base = gcc.asm_size("chstone/gsm", spec.default_choices())
        deltas = []
        for index in range(1, 40):
            choices = spec.default_choices()
            choices[index] = 1
            deltas.append(gcc.asm_size("chstone/gsm", choices) - base)
        assert any(d < 0 for d in deltas)
        assert any(d > 0 for d in deltas)

    def test_benchmarks_have_different_responses(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        choices = spec.default_choices()
        choices[5] = 1
        a = gcc.asm_size("chstone/aes", choices) / gcc.base_size("chstone/aes")
        b = gcc.asm_size("chstone/sha", choices) / gcc.base_size("chstone/sha")
        assert a != b

    def test_obj_smaller_than_asm(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        choices = spec.default_choices()
        assert gcc.obj_size("chstone/mips", choices) < gcc.asm_size("chstone/mips", choices)

    def test_instruction_counts_observation(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        counts = gcc.instruction_counts("chstone/jpeg", spec.default_choices())
        assert counts["mov"] > 0


class TestGccEnv:
    def test_action_space_size(self, gcc_env):
        # The categorical action space: direct-set actions for small options,
        # +-1/10/100/1000 for the wide parameters (paper: 2281 for GCC 11.2).
        assert 2000 <= gcc_env.action_space.n <= 3000

    def test_episode(self, gcc_env):
        gcc_env.reset()
        gcc_env.action_space.seed(0)
        total = 0.0
        for _ in range(10):
            _, reward, done, _ = gcc_env.step(gcc_env.action_space.sample())
            total += reward
            assert not done
        assert gcc_env.episode_reward == pytest.approx(total)

    def test_observations(self, gcc_env):
        gcc_env.reset()
        assert gcc_env.observation["asm_size"] > 0
        assert gcc_env.observation["obj_size"] > 0
        assert isinstance(gcc_env.observation["asm"], str)
        assert isinstance(gcc_env.observation["rtl"], str)
        assert len(gcc_env.observation["choices"]) == 502
        assert gcc_env.observation["command_line"] == ""

    def test_choices_setter(self, gcc_env):
        gcc_env.reset()
        choices = gcc_env.gcc_spec.default_choices()
        choices[0] = 1 + OLevelOption.LEVELS.index("-Os")
        gcc_env.choices = choices
        assert "-Os" in gcc_env.command_line
        assert gcc_env.obj_size < SimulatedGcc(gcc_env.gcc_spec).obj_size(
            "chstone/adpcm", gcc_env.gcc_spec.default_choices()
        )

    def test_version_selection_via_gcc_bin(self):
        env = repro.make("gcc-v0", gcc_bin="gcc-5")
        try:
            assert len(env.gcc_spec) < 502
            assert env.compiler_version.startswith("repro-gcc 5")
        finally:
            env.close()

    def test_docker_specifier(self):
        env = repro.make("gcc-v0", gcc_bin="docker:gcc:11.2.0")
        try:
            assert "11.2.0" in env.compiler_version
        finally:
            env.close()

    def test_fork_preserves_choices(self, gcc_env):
        gcc_env.reset()
        gcc_env.step(1)
        fork = gcc_env.fork()
        try:
            assert fork.observation["choices"] == gcc_env.observation["choices"]
        finally:
            fork.close()

    def test_benchmark_datasets(self, gcc_env):
        names = {d.name for d in gcc_env.datasets}
        assert "benchmark://chstone-v0" in names
        assert len(list(gcc_env.datasets["benchmark://chstone-v0"].benchmark_uris())) == 12

    def test_deterministic_rewards(self, gcc_env):
        gcc_env.reset()
        _, reward_a, _, _ = gcc_env.step(1)
        gcc_env.reset()
        _, reward_b, _, _ = gcc_env.step(1)
        assert reward_a == reward_b
