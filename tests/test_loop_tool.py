"""Tests for the loop_tool CUDA loop-nest environment."""

import random

import pytest

import repro
from repro.loop_tool.cost import PEAK_FLOPS, gp100_flops, theoretical_peak
from repro.loop_tool.ir import LoopTree


class TestLoopTree:
    def test_initial_schedule(self):
        tree = LoopTree(n=1024)
        assert tree.depth() == 1
        assert tree.loops[0].size == 1024
        assert tree.num_threads == 1

    def test_split(self):
        tree = LoopTree(n=1024)
        tree.split(0, factor=4)
        assert tree.depth() == 2
        assert tree.loops[1].size == 4
        assert tree.total_iterations >= 1024

    def test_resize_rebalances_outer_loop(self):
        tree = LoopTree(n=1000)
        tree.split(0, factor=2)
        tree.resize(1, 10)
        assert tree.total_iterations >= 1000

    def test_threading(self):
        tree = LoopTree(n=1 << 20)
        tree.split(0, factor=16)
        tree.toggle_threaded(0)
        assert tree.num_threads == tree.loops[0].size
        tree.toggle_threaded(0)
        assert tree.num_threads == 1

    def test_dump_matches_listing4_structure(self):
        tree = LoopTree(n=1 << 20)
        tree.toggle_threaded(0)
        dump = tree.dump()
        assert "[thread]" in dump
        assert "add(%0, %1)" in dump
        assert "write(%2)" in dump

    def test_copy_is_independent(self):
        tree = LoopTree(n=64)
        clone = tree.copy()
        clone.split(0)
        assert tree.depth() == 1
        assert clone.depth() == 2

    def test_invalid_index(self):
        with pytest.raises(IndexError):
            LoopTree(n=8).resize(3, 2)


class TestGpuCostModel:
    def test_serial_schedule_is_slow(self):
        tree = LoopTree(n=1 << 20)
        assert gp100_flops(tree, noise=0) < 0.01 * PEAK_FLOPS

    def test_threaded_schedule_approaches_quoted_fraction_of_peak(self):
        # The paper reports ~73.5% of theoretical peak for a tuned schedule.
        tree = LoopTree(n=1 << 20)
        tree.split(0, factor=16)       # 16 elements per thread.
        tree.toggle_threaded(0)        # 65536 threads.
        achieved = gp100_flops(tree, noise=0)
        assert 0.6 * PEAK_FLOPS < achieved < 0.85 * PEAK_FLOPS

    def test_performance_drop_near_100k_threads(self):
        def flops_at(threads):
            tree = LoopTree(n=1 << 22)
            tree.split(0, factor=max(1, (1 << 22) // threads))
            tree.loops[0].size = threads
            tree.toggle_threaded(0)
            return gp100_flops(tree, noise=0)

        below = flops_at(96_000)
        just_above = flops_at(120_000)
        far_above = flops_at(400_000)
        assert just_above < below          # The cliff just past ~100k threads.
        assert far_above > just_above      # Recovers as full waves amortize the tail.

    def test_measurement_noise(self):
        tree = LoopTree(n=1 << 20)
        tree.toggle_threaded(0)
        rng = random.Random(0)
        samples = {gp100_flops(tree, rng=rng) for _ in range(5)}
        assert len(samples) > 1

    def test_theoretical_peak(self):
        assert theoretical_peak() == PEAK_FLOPS


class TestLoopToolEnv:
    def test_action_space(self, loop_tool_env):
        assert set(loop_tool_env.action_space.names) == {
            "toggle_mode", "up", "down", "toggle_thread", "split"
        }

    def test_reset_and_observations(self, loop_tool_env):
        flops = loop_tool_env.reset()
        assert flops > 0
        assert "for i0" in loop_tool_env.loop_tree
        state = loop_tool_env.observation["action_state"]
        assert state[0] == 0 and state[1] == 0

    def test_threading_improves_flops(self, loop_tool_env):
        env = loop_tool_env
        env.reset()
        before = env.flops
        env.step(env.action_space["toggle_thread"])
        assert env.flops > before * 100

    def test_cursor_and_mode_actions(self, loop_tool_env):
        env = loop_tool_env
        env.reset()
        env.step(env.action_space["split"])
        env.step(env.action_space["down"])     # Move cursor to the inner loop.
        assert env.observation["action_state"][0] == 1
        env.step(env.action_space["toggle_mode"])
        assert env.observation["action_state"][1] == 1
        size_before = env.observation["action_state"][2]
        env.step(env.action_space["up"])       # In modify mode: grow the loop.
        assert env.observation["action_state"][2] == size_before + 1

    def test_moving_cursor_out_of_range_has_no_effect(self, loop_tool_env):
        env = loop_tool_env
        env.reset()
        _, _, _, info = env.step(env.action_space["up"])
        assert info["action_had_no_effect"]

    def test_reward_is_flops_delta(self, loop_tool_env):
        env = loop_tool_env
        env.reset()
        _, reward, _, _ = env.step(env.action_space["toggle_thread"])
        assert reward > 0

    def test_problem_sizes_dataset(self, loop_tool_env):
        uris = list(loop_tool_env.datasets["benchmark://loop_tool-v0"].benchmark_uris())
        assert "benchmark://loop_tool-v0/1048576" in uris

    def test_fork(self, loop_tool_env):
        env = loop_tool_env
        env.reset()
        env.step(env.action_space["toggle_thread"])
        fork = env.fork()
        try:
            assert fork.observation["loop_tree"] == env.observation["loop_tree"]
        finally:
            fork.close()
