"""Tests for the chaos harness and the proactive health layer.

Covers the PR's acceptance criteria: a seeded :class:`FaultPlan` is
deterministic and reusable; :class:`ChaosTransport` injects each fault kind
through the transport's *production* classification paths (retryable
pre-send failures, non-retryable partial flushes, at-most-once reply loss,
slow-success deadline breaches); daemon-side :class:`ServerChaos` drops,
corrupts, and delays replies; the pre-auth ``heartbeat`` RPC; the
:class:`CircuitBreaker` state machine; full-jitter retry desynchronization;
and the :class:`HealthMonitor` detecting a SIGKILLed daemon within two
heartbeat intervals with no client RPC in flight.
"""

import os
import signal
import socket
import time

import pytest

import repro
from repro.core.service import ConnectionOpts, ServiceConnection
from repro.core.service.chaos import (
    ChaosTransport,
    FaultEvent,
    FaultPlan,
    ServerChaos,
    resolve_chaos,
)
from repro.core.service.connection import clear_spaces_cache
from repro.core.service.gateway import ServiceGateway
from repro.core.service.health import CircuitBreaker, HealthMonitor
from repro.core.service.proto import StartSessionRequest, StepRequest
from repro.core.service.runtime.server import ServiceServer
from repro.core.service.transport import (
    REPLY_OK,
    ServiceTransport,
    SocketTransport,
    read_frame,
    write_frame,
)
from repro.core.vector import VecCompilerEnv
from repro.errors import (
    PermissionDeniedError,
    ServiceError,
    ServiceIsDown,
    ServiceTransportError,
)
from tests.test_service import _runtime

BENCHMARK = "cbench-v1/qsort"
ACTIONS = [0, 11, 3, 7, 1, 23, 5]


def _make_env(url, **kwargs):
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        reward_space="IrInstructionCount",
        service_url=url,
        **kwargs,
    )


# -- the fault plan -----------------------------------------------------------


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan.generate(seed=17, calls=100, rate=0.2)
        b = FaultPlan.generate(seed=17, calls=100, rate=0.2)
        assert a.events == b.events
        assert a.signature() == b.signature()

    def test_different_seed_different_schedule(self):
        a = FaultPlan.generate(seed=17, calls=100, rate=0.2)
        b = FaultPlan.generate(seed=18, calls=100, rate=0.2)
        assert a.signature() != b.signature()

    def test_generation_does_not_touch_global_rng(self):
        import random

        random.seed(123)
        before = random.random()
        random.seed(123)
        FaultPlan.generate(seed=17, calls=100, rate=0.5)
        assert random.random() == before

    def test_plan_is_immutable_and_reusable(self):
        plan = FaultPlan(events=(FaultEvent(call_index=3, kind="delay"),))
        with pytest.raises(AttributeError):
            plan.events = ()
        # Consuming state lives in the transport: two transports driven by
        # the same plan each see the full schedule.
        first = ChaosTransport(_NeverCalledTransport(), plan)
        second = ChaosTransport(_NeverCalledTransport(), plan)
        assert first._pending == second._pending

    def test_unknown_fault_kind_rejected(self):
        with pytest.raises(ValueError, match="Unknown fault kind"):
            FaultEvent(call_index=0, kind="bogus")

    def test_resolve_chaos_coercions(self):
        assert resolve_chaos(None) is None
        plan = FaultPlan(events=())
        assert resolve_chaos(plan) is plan
        generated = resolve_chaos(42)
        assert isinstance(generated, FaultPlan)
        assert generated.seed == 42
        assert generated.events == FaultPlan.generate(seed=42, calls=256).events
        with pytest.raises(TypeError, match="chaos must be"):
            resolve_chaos("0.5")
        with pytest.raises(TypeError, match="chaos must be"):
            resolve_chaos(True)


class _NeverCalledTransport(ServiceTransport):
    """A stub transport for tests that never reach a real call."""

    spaces_cache_key = None

    def connect(self, max_attempts: int = 1) -> None:
        pass

    def call(self, method, *args):
        raise AssertionError("unexpected call")


# -- client-side fault injection ----------------------------------------------


def _step_fault(kind, param=0.0):
    """A plan with one fault on the first step() RPC of the connection.

    Method-restricted events slide forward from index 0 until the first
    matching call, so the schedule is independent of how many bootstrap
    RPCs (get_spaces, start_session) precede the step.
    """
    return FaultPlan(
        events=(FaultEvent(call_index=0, kind=kind, method="step", param=param),)
    )


class TestChaosTransportInjection:
    """Each fault kind must flow through the transport's own classifier —
    the same code paths production failures take — not a simulation."""

    def _connect(self, server, plan, **opts):
        transport = ChaosTransport(SocketTransport(server.url, timeout=5.0), plan)
        connection = ServiceConnection(
            transport,
            ConnectionOpts(
                rpc_max_retries=3, retry_wait_seconds=0.001, **opts
            ),
        )
        session = connection.start_session(
            StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
        )
        return transport, connection, session

    def test_refused_connect_is_retried_and_applied_exactly_once(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport, connection, session = self._connect(
                server, _step_fault("refuse_connect")
            )
            steps_before = server.runtime.stats["step"]
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[1],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 1
            assert connection.stats["step"].retries == 1
            assert server.runtime.stats["step"] == steps_before + 1
            assert transport.injected == [(2, "refuse_connect", "step")]
            connection.close()

    def test_presend_cut_is_retried_and_applied_exactly_once(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport, connection, session = self._connect(
                server, _step_fault("cut_send", param=0.0)
            )
            steps_before = server.runtime.stats["step"]
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[1],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 1
            assert connection.stats["step"].retries == 1
            assert server.runtime.stats["step"] == steps_before + 1
            connection.close()

    def test_partial_flush_cut_is_never_retried(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport, connection, session = self._connect(
                server, _step_fault("cut_send", param=5.0)
            )
            steps_before = server.runtime.stats["step"]
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            assert connection.stats["step"].retries == 0
            assert server.runtime.stats["step"] == steps_before
            connection.close()

    def test_reply_loss_is_at_most_once(self):
        """cut_recv: the daemon executes the request, the client never sees
        the reply — and must NOT retry, or the step would apply twice."""
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport, connection, session = self._connect(
                server, _step_fault("cut_recv")
            )
            steps_before = server.runtime.stats["step"]
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            assert connection.stats["step"].retries == 0
            # The daemon DID apply the step (the request was flushed whole).
            _wait_until(lambda: server.runtime.stats["step"] == steps_before + 1)
            # The daemon session carries the applied action; a fresh
            # connection epoch observes it rather than re-applying it.
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 1
            connection.close()

    def test_delayed_reply_past_deadline_is_not_retried(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport, connection, session = self._connect(
                server,
                _step_fault("delay", param=0.2),
                rpc_call_max_seconds=0.05,
            )
            steps_before = server.runtime.stats["step"]
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            assert connection.stats["step"].retries == 0
            assert server.runtime.stats["step"] == steps_before + 1
            connection.close()

    def test_injection_log_is_deterministic_across_transports(self):
        plan = FaultPlan.generate(
            seed=2, calls=12, rate=0.4, kinds=("refuse_connect",)
        )
        assert plan.events, "seed 3 must schedule at least one event"
        logs = []
        for _ in range(2):
            with ServiceServer(_runtime(), session_timeout=None).start() as server:
                transport = ChaosTransport(
                    SocketTransport(server.url, timeout=5.0), plan
                )
                connection = ServiceConnection(
                    transport,
                    ConnectionOpts(rpc_max_retries=4, retry_wait_seconds=0.001),
                )
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )
                for action in (1, 3, 1, 4):
                    connection.step(
                        StepRequest(session_id=session.session_id, actions=[action])
                    )
                logs.append(list(transport.injected))
                connection.close()
        assert logs[0] == logs[1]

    def test_env_level_chaos_wraps_transport(self):
        """make(..., chaos=...) puts a ChaosTransport between the env and
        its service, whatever the underlying transport."""
        plan = FaultPlan(events=())
        env = repro.make("llvm-v0", chaos=plan)
        try:
            assert isinstance(env.service.transport, ChaosTransport)
            assert env.service.transport.plan is plan
        finally:
            env.close()


def _wait_until(predicate, timeout=5.0, interval=0.01):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(interval)
    assert predicate()


# -- daemon-side fault injection ----------------------------------------------


class TestServerChaos:
    def _server(self):
        return ServiceServer(_runtime(), session_timeout=None).start()

    def test_dropped_reply_after_execution(self):
        """drop_reply_at exercises the at-most-once path from the daemon
        side: the request executes, the reply never leaves the server."""
        with self._server() as server:
            connection = ServiceConnection(
                SocketTransport(server.url, timeout=5.0),
                ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001),
            )
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            steps_before = server.runtime.stats["step"]
            # ServerChaos counts non-hello RPCs from the moment it is
            # attached: the next request — our step — is index 0.
            server.chaos = ServerChaos(drop_reply_at={0})
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            assert server.runtime.stats["step"] == steps_before + 1
            assert connection.stats["step"].retries == 0
            connection.close()

    def test_corrupted_reply_is_a_service_error_not_a_retry(self):
        with self._server() as server:
            connection = ServiceConnection(
                SocketTransport(server.url, timeout=5.0),
                ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001),
            )
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            steps_before = server.runtime.stats["step"]
            server.chaos = ServerChaos(corrupt_reply_at={0})
            with pytest.raises((ServiceError, ConnectionError)):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            assert server.runtime.stats["step"] == steps_before + 1
            connection.close()

    def test_delayed_reply_holds_the_call(self):
        with self._server() as server:
            connection = ServiceConnection(SocketTransport(server.url, timeout=5.0))
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            server.chaos = ServerChaos(delay_reply={0: 0.2})
            started = time.monotonic()
            connection.step(StepRequest(session_id=session.session_id, actions=[1]))
            assert time.monotonic() - started >= 0.15
            connection.close()


# -- the heartbeat RPC --------------------------------------------------------


class TestHeartbeat:
    def test_heartbeat_returns_identity_and_uptime(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            transport = SocketTransport(server.url, timeout=5.0)
            transport.connect()
            try:
                beat = transport.heartbeat()
                assert beat["pid"] == os.getpid()  # in-process daemon
                assert beat["uptime_s"] >= 0.0
                info = transport.server_info()
                assert info["heartbeats_served"] >= 1
                assert info["last_heartbeat_age_s"] is not None
            finally:
                transport.shutdown()

    def test_heartbeat_is_served_before_auth(self):
        """A health monitor needs no tenant token: a raw connection that
        never said hello (and holds no token) still gets its heartbeat
        answered, while any other RPC is rejected."""
        with ServiceServer(
            _runtime(), session_timeout=None, auth_tokens=["secret"]
        ).start() as server:
            host, port = server.url[len("tcp://"):].rsplit(":", 1)
            raw = socket.create_connection((host, int(port)), timeout=5.0)
            try:
                wfile = raw.makefile("wb")
                rfile = raw.makefile("rb")
                write_frame(wfile, (1, "heartbeat", ()))
                request_id, status, payload = read_frame(rfile)
                assert (request_id, status) == (1, REPLY_OK)
                assert payload["pid"] == os.getpid()
                # The same tokenless connection may NOT call anything else.
                write_frame(wfile, (2, "server_info", ()))
                request_id, status, payload = read_frame(rfile)
                assert request_id == 2
                assert status != REPLY_OK
                assert isinstance(payload, PermissionDeniedError)
            finally:
                raw.close()


# -- the circuit breaker ------------------------------------------------------


class TestCircuitBreaker:
    def test_trips_after_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3, reset_timeout=60.0)
        assert breaker.state == "closed"
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed" and breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1

    def test_success_resets_the_failure_count(self):
        breaker = CircuitBreaker(failure_threshold=2)
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_half_open_admits_one_probe(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05)
        breaker.record_failure()
        assert not breaker.allow()
        time.sleep(0.06)
        assert breaker.state == "half-open"
        assert breaker.allow()  # the probe slot
        assert not breaker.allow()  # only one probe at a time

    def test_half_open_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=0.05)
        breaker.record_failure()
        time.sleep(0.06)
        assert breaker.allow()
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow()

    def test_half_open_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, reset_timeout=60.0)
        breaker.record_failure()
        # Force the cooldown to elapse without waiting a minute.
        breaker._opened_at = time.monotonic() - 61.0
        assert breaker.allow()
        breaker.record_failure()
        assert breaker.state == "open"
        assert not breaker.allow()

    def test_force_open(self):
        breaker = CircuitBreaker(failure_threshold=5, reset_timeout=60.0)
        breaker.force_open()
        assert breaker.state == "open"
        assert not breaker.allow()
        assert breaker.trips == 1


# -- retry jitter desynchronization -------------------------------------------


class _AlwaysFailingTransport(ServiceTransport):
    """Answers get_spaces (so ServiceConnection can bootstrap), then fails
    every call with a generic (retryable) error."""

    spaces_cache_key = None

    def connect(self, max_attempts: int = 1) -> None:
        pass

    def restart(self) -> None:
        pass

    def call(self, method, *args):
        if method == "get_spaces":
            # ServiceConnection stores the reply opaquely; a sentinel is
            # enough to bootstrap without a real runtime.
            return object()
        raise RuntimeError("chaos: simulated backend crash")


class TestRetryJitterDesync:
    """Regression: pool workers that lose the same daemon must not retry in
    lockstep. With jitter on (the default), each retry sleeps
    uniform(0, wait); with it off, exactly wait (for tests needing
    deterministic schedules)."""

    def _failing_connection(self, monkeypatch, **opts):
        sleeps, uniforms = [], []
        import repro.core.service.connection as connection_module

        monkeypatch.setattr(
            connection_module.time, "sleep", lambda s: sleeps.append(s)
        )
        real_uniform = connection_module.random.uniform

        def recording_uniform(low, high):
            uniforms.append((low, high))
            return real_uniform(low, high)

        monkeypatch.setattr(connection_module.random, "uniform", recording_uniform)
        connection = ServiceConnection(
            _AlwaysFailingTransport(),
            ConnectionOpts(
                rpc_max_retries=3,
                retry_wait_seconds=0.5,
                retry_wait_backoff_exponent=2.0,
                **opts,
            ),
        )
        return connection, sleeps, uniforms

    def test_jitter_on_by_default_sleeps_uniform(self, monkeypatch):
        connection, sleeps, uniforms = self._failing_connection(monkeypatch)
        assert connection.opts.retry_wait_jitter is True
        with pytest.raises(ServiceError, match="failed after 3 attempts"):
            connection._call("step")
        # Two retries: draws from uniform(0, wait) with backed-off waits,
        # never the deterministic wait itself.
        assert uniforms == [(0.0, 0.5), (0.0, 1.0)]
        assert len(sleeps) == 2
        assert all(0.0 <= s <= high for s, (_, high) in zip(sleeps, uniforms))

    def test_jitter_off_sleeps_exact_backoff(self, monkeypatch):
        connection, sleeps, uniforms = self._failing_connection(
            monkeypatch, retry_wait_jitter=False
        )
        with pytest.raises(ServiceError, match="failed after 3 attempts"):
            connection._call("step")
        assert uniforms == []
        assert sleeps == [0.5, 1.0]


# -- heartbeat-driven failover (acceptance) -----------------------------------


def _daemon_hosting(gateway, want_sessions=True):
    for daemon in gateway.live_daemons():
        hosts = any(record.daemon is daemon for record in gateway._sessions.values())
        if hosts == want_sessions:
            return daemon
    raise AssertionError("No daemon matched the requested load profile")


class TestHealthMonitorFailover:
    HEARTBEAT = 0.25

    def test_sigkill_detected_without_client_rpc(self):
        """Acceptance: a SIGKILLed daemon is detected and its sessions
        re-homed by the HealthMonitor within 2 heartbeat intervals, with no
        client RPC in flight."""
        gateway = ServiceGateway(
            env_id="llvm-v0", daemons=2, heartbeat_interval=self.HEARTBEAT
        ).start()
        env = _make_env(gateway.url)
        try:
            assert isinstance(gateway.health_monitor, HealthMonitor)
            env.reset()
            env.step(ACTIONS[0])
            victim = _daemon_hosting(gateway)
            os.kill(victim.pid, signal.SIGKILL)
            killed_at = time.monotonic()
            # NO client RPC from here on: the monitor alone must notice.
            budget = 2 * self.HEARTBEAT
            while gateway.failovers == 0:
                assert time.monotonic() - killed_at < budget + 2.0, (
                    "HealthMonitor did not detect the SIGKILLed daemon"
                )
                time.sleep(0.01)
            detection_latency = time.monotonic() - killed_at
            # The hard SLO (2 intervals) plus scheduling slack for loaded CI.
            assert detection_latency < budget + 1.0
            assert victim.dead
            # Detection precedes the replay; the monitor re-homes moments
            # later (still with no client RPC in flight).
            _wait_until(lambda: gateway.rehomed_sessions >= 1)
            assert gateway.health_monitor.deaths_detected >= 1
            # The replayed session continues the episode on a survivor.
            _, reward, done, _ = env.step(ACTIONS[1])
            assert reward is not None and not done
            assert env.actions == ACTIONS[:2]
        finally:
            env.close()
            gateway.shutdown()
            clear_spaces_cache()

    def test_fleet_health_in_server_info(self):
        gateway = ServiceGateway(
            env_id="llvm-v0", daemons=2, heartbeat_interval=self.HEARTBEAT
        ).start()
        try:
            _wait_until(
                lambda: all(
                    d.last_heartbeat is not None for d in gateway.live_daemons()
                )
            )
            info = gateway.server_info()
            assert info["health_monitor"]["interval_s"] == self.HEARTBEAT
            assert info["health_monitor"]["probes"] >= 2
            assert info["failovers"] == 0
            assert info["rehomed_sessions"] == 0
            for daemon_info in info["daemons"]:
                assert daemon_info["breaker"] == "closed"
                assert daemon_info["last_heartbeat_age_s"] is not None
                assert daemon_info["last_heartbeat_age_s"] < 10.0
        finally:
            gateway.shutdown()


class TestGracefulDegradation:
    def test_circuit_broken_daemon_degrades_then_recovers(self):
        """Sessions on a circuit-broken daemon get per-session ServiceIsDown
        (the batch never fails whole, survivors keep stepping); once the
        breaker's cooldown admits a half-open probe, the daemon — which was
        alive all along — serves again."""
        gateway = ServiceGateway(
            env_id="llvm-v0", daemons=2, breaker_reset_timeout=0.3
        ).start()
        env_a = _make_env(gateway.url)
        env_b = _make_env(gateway.url)
        try:
            env_a.reset()
            env_b.reset()
            with VecCompilerEnv(env_a, n=2, backend="thread") as vec:
                vec.reset()
                # The pool's forked sessions co-locate: its daemon is the
                # one carrying 2+ sessions (env_b's carries just one).
                session_counts = {}
                for record in gateway._sessions.values():
                    index = record.daemon.index
                    session_counts[index] = session_counts.get(index, 0) + 1
                pool_daemon = next(
                    d for d in gateway.live_daemons()
                    if session_counts.get(d.index, 0) >= 2
                )
                # Trip the breaker by hand (as repeated probe failures
                # would). The daemon itself stays alive throughout.
                pool_daemon.breaker.force_open()
                _, _, dones, infos = vec.step([ACTIONS[0], ACTIONS[0]])
                assert all(dones)
                assert all(info.get("service_is_down") for info in infos)
                # The other daemon's tenant is untouched by the outage.
                _, reward, done, _ = env_b.step(ACTIONS[0])
                assert reward is not None and not done
                # After the cooldown the half-open probe finds the daemon
                # alive, closes the breaker, and its sessions serve again.
                time.sleep(0.35)
                vec.reset()
                _, _, dones, _ = vec.step([ACTIONS[1], ACTIONS[1]])
                assert not any(dones)
                assert pool_daemon.breaker.state == "closed"
        finally:
            env_a.close()
            env_b.close()
            gateway.shutdown()
            clear_spaces_cache()
