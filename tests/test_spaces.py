"""Unit tests for the space hierarchy."""

import numpy as np
import pytest

from repro.core.spaces import (
    Box,
    Commandline,
    CommandlineFlag,
    DictSpace,
    Discrete,
    NamedDiscrete,
    Permutation,
    Reward,
    Scalar,
    SequenceSpace,
    TupleSpace,
)
from repro.core.spaces.reward import DefaultRewardFromObservation


class TestDiscrete:
    def test_sample_in_range(self):
        space = Discrete(5)
        space.seed(0)
        for _ in range(50):
            assert 0 <= space.sample() < 5

    def test_contains(self):
        space = Discrete(3)
        assert space.contains(0)
        assert space.contains(2)
        assert not space.contains(3)
        assert not space.contains(-1)
        assert not space.contains("a")
        assert not space.contains(1.5)

    def test_bool_is_not_member(self):
        assert not Discrete(3).contains(True)

    def test_invalid_size(self):
        with pytest.raises(ValueError):
            Discrete(0)

    def test_equality_and_len(self):
        assert Discrete(4) == Discrete(4)
        assert Discrete(4) != Discrete(5)
        assert len(Discrete(7)) == 7

    def test_seeded_sampling_is_reproducible(self):
        a, b = Discrete(100), Discrete(100)
        a.seed(42)
        b.seed(42)
        assert [a.sample() for _ in range(10)] == [b.sample() for _ in range(10)]


class TestNamedDiscrete:
    def test_names_and_index(self):
        space = NamedDiscrete(["a", "b", "c"])
        assert space.n == 3
        assert space["b"] == 1
        assert space.names == ["a", "b", "c"]

    def test_to_from_string(self):
        space = NamedDiscrete(["x", "y", "z"])
        assert space.to_string([0, 2, 1]) == "x z y"
        assert space.from_string("z y x") == [2, 1, 0]

    def test_to_string_single_value(self):
        assert NamedDiscrete(["p", "q"]).to_string(1) == "q"

    def test_empty_raises(self):
        with pytest.raises(ValueError):
            NamedDiscrete([])

    def test_equality_is_by_names(self):
        assert NamedDiscrete(["a", "b"]) == NamedDiscrete(["a", "b"])
        assert NamedDiscrete(["a", "b"]) != NamedDiscrete(["b", "a"])


class TestScalar:
    def test_contains_bounds(self):
        space = Scalar(min=0, max=10, dtype=int)
        assert space.contains(0)
        assert space.contains(10)
        assert not space.contains(11)
        assert not space.contains(-1)
        assert not space.contains(2.5)

    def test_unbounded(self):
        space = Scalar(min=None, max=None, dtype=float)
        assert space.contains(1e12)
        assert space.contains(-1e12)

    def test_sample_respects_bounds(self):
        space = Scalar(min=5, max=6, dtype=float)
        space.seed(1)
        for _ in range(20):
            assert 5 <= space.sample() <= 6

    def test_int_sampling(self):
        space = Scalar(min=0, max=3, dtype=int)
        space.seed(0)
        assert all(isinstance(space.sample(), int) for _ in range(10))

    def test_equality(self):
        assert Scalar(min=0, max=1, dtype=int) == Scalar(min=0, max=1, dtype=int)
        assert Scalar(min=0, max=1, dtype=int) != Scalar(min=0, max=2, dtype=int)


class TestBox:
    def test_shape_and_dtype(self):
        space = Box(low=0, high=10, shape=(5,), dtype=np.int64)
        assert space.shape == (5,)
        assert space.dtype == np.int64

    def test_contains(self):
        space = Box(low=0, high=1, shape=(3,), dtype=np.float64)
        assert space.contains([0.5, 0.5, 0.5])
        assert not space.contains([0.5, 0.5])
        assert not space.contains([2.0, 0.5, 0.5])

    def test_sample_within_bounds(self):
        space = Box(low=0, high=5, shape=(4,), dtype=np.int64)
        space.seed(3)
        sample = space.sample()
        assert sample.shape == (4,)
        assert (sample >= 0).all() and (sample <= 5).all()

    def test_mismatched_bounds_raise(self):
        with pytest.raises(ValueError):
            Box(low=np.zeros(3), high=np.ones(2), shape=(3,))


class TestSequenceSpace:
    def test_string_membership(self):
        space = SequenceSpace(size_range=(0, None), dtype=str)
        assert space.contains("hello")
        assert not space.contains(b"hello")

    def test_size_range(self):
        space = SequenceSpace(size_range=(2, 4), dtype=str)
        assert not space.contains("a")
        assert space.contains("abc")
        assert not space.contains("abcde")

    def test_scalar_range_elements(self):
        space = SequenceSpace(size_range=(0, None), dtype=int, scalar_range=Scalar(min=0, max=5, dtype=int))
        assert space.contains([0, 5, 3])
        assert not space.contains([0, 9])

    def test_sample_type(self):
        space = SequenceSpace(size_range=(1, 8), dtype=bytes)
        space.seed(0)
        assert isinstance(space.sample(), bytes)


class TestContainers:
    def test_dict_space(self):
        space = DictSpace({"a": Discrete(3), "b": Scalar(min=0, max=1, dtype=float)})
        space.seed(0)
        sample = space.sample()
        assert set(sample) == {"a", "b"}
        assert space.contains(sample)
        assert not space.contains({"a": 1})

    def test_tuple_space(self):
        space = TupleSpace([Discrete(2), Discrete(3)])
        space.seed(0)
        sample = space.sample()
        assert space.contains(sample)
        assert not space.contains((5, 0))
        assert len(space) == 2


class TestCommandline:
    def _space(self):
        return Commandline(
            [
                CommandlineFlag("dce", "-dce", "dead code elimination"),
                CommandlineFlag("gvn", "-gvn", "value numbering"),
                CommandlineFlag("licm", "-licm", "loop invariant code motion"),
            ],
            name="test",
        )

    def test_flags(self):
        space = self._space()
        assert space.n == 3
        assert space.flag(1) == "-gvn"
        assert space.description(0) == "dead code elimination"

    def test_commandline_round_trip(self):
        space = self._space()
        commandline = space.to_commandline([2, 0, 1])
        assert commandline == "-licm -dce -gvn"
        assert space.from_commandline(commandline) == [2, 0, 1]

    def test_unknown_flag_raises(self):
        with pytest.raises(LookupError):
            self._space().from_commandline("-unknown")


class TestPermutation:
    def test_sample_is_permutation(self):
        space = Permutation(6)
        space.seed(0)
        sample = space.sample()
        assert sorted(sample) == list(range(6))
        assert space.contains(sample)

    def test_contains_rejects_non_permutations(self):
        space = Permutation(3)
        assert not space.contains([0, 1, 1])
        assert not space.contains([0, 1])


class TestRewardSpaces:
    def test_default_reward_from_observation(self):
        reward = DefaultRewardFromObservation("IrInstructionCount")
        reward.reset("bench", None)
        assert reward.update([], [100], None) == 0.0
        assert reward.update([], [90], None) == 10.0
        assert reward.update([], [95], None) == -5.0

    def test_reward_on_error_negates_returns(self):
        reward = Reward(name="r", default_value=0, default_negates_returns=True)
        assert reward.reward_on_error(episode_reward=7.0) == -7.0

    def test_reward_range(self):
        reward = Reward(name="r", min=0, max=1)
        assert reward.range == (0, 1)
