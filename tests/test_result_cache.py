"""Tests for the two-layer result cache.

Layer 1 is the session-incremental observation memo keyed on the module
version counter; layer 2 is the daemon-wide (benchmark, action-prefix)
store shared across sessions. The acceptance criteria covered here:

- Cached and uncached rollouts are bit-identical across all three
  transports (in-process, socket daemon, 2-daemon gateway).
- fork() inherits the parent's warm prefix (and stays lazy until a miss).
- The LRU store evicts to its byte budget, oldest entries first.
- Every registered pass honors the version-counter contract the layer-1
  memo keys on (``changed`` return value <=> exactly one version bump).
"""

import numpy as np
import pytest

import repro
from repro.core.service.gateway import ServiceGateway
from repro.core.service.runtime.result_cache import ResultCache
from repro.core.service.runtime.server import make_env_server
from repro.llvm.datasets.generators import generate_module
from repro.llvm.ir.printer import print_module
from repro.llvm.passes.registry import PASS_REGISTRY, run_pass
from repro.llvm.passes.validate import LINT_EXCLUDED_PASSES

BENCHMARK = "cbench-v1/crc32"
SEQUENCES = [
    [0, 11, 3, 7, 1],
    [23, 5, 0, 11, 2],
]


def _make_env(**kwargs):
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
        **kwargs,
    )


def _trace(env, actions):
    """One episode's full observable record, in plain comparable types."""
    observation = env.reset()
    trace = [np.asarray(observation).tolist()]
    for action in actions:
        observation, reward, done, info = env.step(action)
        trace.append(
            (
                np.asarray(observation).tolist(),
                reward,
                done,
                info["action_had_no_effect"],
            )
        )
        if done:
            break
    return trace


def _traces(env):
    return [_trace(env, actions) for actions in SEQUENCES]


class TestTraceEquivalence:
    def test_in_process_cached_traces_bit_identical(self):
        cached = _make_env()
        uncached = _make_env(result_cache=False)
        try:
            cold = _traces(cached)  # populates the cache
            warm = _traces(cached)  # served from it
            reference = _traces(uncached)
            assert cold == reference
            assert warm == reference
            stats = cached.service.runtime.result_cache.stats()
            assert stats["hits"] > 0
        finally:
            cached.close()
            uncached.close()

    def test_daemon_cached_traces_bit_identical(self):
        cached_server = make_env_server("llvm-v0").start()
        uncached_server = make_env_server("llvm-v0", result_cache=False).start()
        try:
            cached = _make_env(service_url=cached_server.url)
            uncached = _make_env(service_url=uncached_server.url)
            try:
                cold = _traces(cached)
                warm = _traces(cached)
                reference = _traces(uncached)
                assert cold == reference
                assert warm == reference
                # The daemon reports its cache accounting via server_info.
                info = cached.service.transport.server_info()
                stats = info["cache_stats"]["result_cache"]
                assert stats["hits"] > 0
                assert uncached_server.runtime.result_cache is None
            finally:
                cached.close()
                uncached.close()
        finally:
            cached_server.shutdown()
            uncached_server.shutdown()

    def test_gateway_cached_traces_bit_identical(self):
        gateway = ServiceGateway(env_id="llvm-v0", daemons=2).start()
        uncached_server = make_env_server("llvm-v0", result_cache=False).start()
        try:
            uncached = _make_env(service_url=uncached_server.url)
            try:
                reference = _traces(uncached)
            finally:
                uncached.close()
            # Sessions round-robin across the fleet, so repeated rollouts
            # warm both daemons; every rollout, cold or warm, must match.
            for _ in range(4):
                env = _make_env(service_url=gateway.url)
                try:
                    assert _traces(env) == reference
                finally:
                    env.close()
            totals = gateway.result_cache_stats()["total"]
            assert totals["daemons"] == 2
            assert totals["hits"] > 0
        finally:
            gateway.shutdown()
            uncached_server.shutdown()


class TestForkInheritsPrefix:
    def test_fork_of_lazy_session_replays_warm_prefix(self):
        prefix, extra = SEQUENCES[0], 42
        uncached = _make_env(result_cache=False)
        try:
            reference = _trace(uncached, prefix + [extra])
        finally:
            uncached.close()

        env = _make_env()
        try:
            runtime = env.service.runtime
            _trace(env, prefix)  # cold: populates the cache
            _trace(env, prefix)  # warm: the session is never constructed
            assert runtime.sessions[env._session_id] is None
            fork = env.fork()
            try:
                # Forking a lazy session is free: the child is lazy too.
                assert runtime.sessions[fork._session_id] is None
                # The child's first miss materializes the inherited prefix
                # and continues from it, matching the uncached rollout.
                observation, reward, done, info = fork.step(extra)
                assert runtime.sessions[fork._session_id] is not None
                assert (
                    np.asarray(observation).tolist(),
                    reward,
                    done,
                    info["action_had_no_effect"],
                ) == reference[-1]
            finally:
                fork.close()
        finally:
            env.close()


class TestLruEviction:
    def test_evicts_oldest_to_byte_budget(self):
        cache = ResultCache(max_size_in_bytes=2000)
        payload = {"obs": b"x" * 200}
        for i in range(20):
            cache.store_step("b://x", tuple(range(i + 1)), 1, False, False, payload)
        assert cache.evictions > 0
        assert cache.size_in_bytes <= 2000
        # Oldest prefixes are gone, the newest survives.
        assert cache.lookup_step("b://x", (0,), 1, ["obs"]) is None
        assert cache.lookup_step("b://x", tuple(range(20)), 1, ["obs"]) is not None

    def test_oversized_entry_still_kept_alone(self):
        cache = ResultCache(max_size_in_bytes=64)
        cache.put_observation("b://x", (), "obs", b"y" * 500)
        assert cache.get_observation("b://x", (), "obs") == b"y" * 500
        assert cache.size == 1

    def test_disabled_and_coerced_budgets(self):
        assert ResultCache.coerce(False) is None
        assert ResultCache.coerce(0) is None
        assert ResultCache.coerce(1 << 20).max_size_in_bytes == 1 << 20
        default = ResultCache.coerce(None)
        assert default is not None
        shared = ResultCache()
        assert ResultCache.coerce(shared) is shared


class TestVersionCounterContract:
    def test_every_registered_pass_bumps_version_iff_changed(self):
        """The layer-1 memo keys on (space, module.version): a pass that
        mutates IR while reporting changed=False would serve stale
        observations, so the contract is audited for every registered pass."""
        module = generate_module(seed=7, size_scale=5)
        for name in sorted(set(PASS_REGISTRY) - LINT_EXCLUDED_PASSES):
            clone = module.clone()
            ir_before = print_module(clone)
            version_before = clone.version
            changed = run_pass(clone, name)
            expected = version_before + (1 if changed else 0)
            assert clone.version == expected, (
                f"{name}: changed={changed} but version went "
                f"{version_before} -> {clone.version}"
            )
            if not changed:
                assert print_module(clone) == ir_before, (
                    f"{name}: changed=False but the printed IR differs"
                )

    def test_noop_steps_leave_version_and_memo_untouched(self):
        env = _make_env(result_cache=False)
        try:
            env.reset()
            session = env.service.runtime.sessions[env._session_id]
            version = session.module.version
            # A mutating pass bumps the version and invalidates the memo.
            mem2reg = env.action_space.names.index("mem2reg")
            _, _, _, info = env.step(mem2reg)
            assert not info["action_had_no_effect"]
            assert session.module.version == version + 1
            # Re-running the same pass is a fixpoint no-op: the version (and
            # with it every memoized observation) stays put.
            count = env.observation["IrInstructionCount"]
            _, _, _, info = env.step(mem2reg)
            assert info["action_had_no_effect"]
            assert session.module.version == version + 1
            assert env.observation["IrInstructionCount"] == count
        finally:
            env.close()
