"""Tests for the vectorized environment pool (``repro.core.vector``)."""

import random

import numpy as np
import pytest

import repro
from repro.core.service.connection import AsyncResult
from repro.core.service.proto import StepRequest
from repro.core.vector import (
    SerialBackend,
    ThreadPoolBackend,
    VecCompilerEnv,
    make_vec_env,
    resolve_backend,
)
from repro.errors import SessionNotFound

BENCHMARK = "cbench-v1/crc32"


def _make_root():
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )


@pytest.fixture(params=["serial", "thread"])
def vec_env(request):
    vec = VecCompilerEnv(_make_root(), n=4, backend=request.param)
    yield vec
    vec.close()


class TestConstruction:
    def test_fork_population_shares_service(self, vec_env):
        services = {id(worker.service) for worker in vec_env.workers}
        assert len(services) == 1

    def test_invalid_pool_size(self):
        env = _make_root()
        try:
            with pytest.raises(ValueError, match="n >= 1"):
                VecCompilerEnv(env, n=0)
        finally:
            env.close()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="Unknown execution backend"):
            resolve_backend("fibers", 4)

    def test_make_vec_env_by_id(self):
        with make_vec_env(
            "llvm-v0", n=2, benchmark=BENCHMARK, reward_space="IrInstructionCount"
        ) as vec:
            assert vec.num_envs == 2
            assert str(vec.benchmark.uri) == f"benchmark://{BENCHMARK}"

    def test_make_vec_env_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            make_vec_env()

    def test_pool_introspection(self, vec_env):
        assert len(vec_env) == 4
        assert vec_env[0] is vec_env.workers[0]
        assert list(vec_env) == vec_env.workers
        assert vec_env.action_space.n == 124

    def test_failing_worker_wrapper_cleans_up(self):
        """A wrapper that raises mid-population must not leak forked sessions."""
        env = _make_root()
        calls = []

        def explode(worker):
            calls.append(worker)
            raise RuntimeError("wrapper failed")

        try:
            with pytest.raises(RuntimeError, match="wrapper failed"):
                VecCompilerEnv(env, n=3, backend="thread", worker_wrapper=explode)
            assert calls  # The wrapper did run before failing.
            # The root env is still the caller's to use and close.
            env.reset()
            env.step(0)
        finally:
            env.close()

    def test_reset_broadcasts_benchmark_object(self):
        """A single Benchmark instance is applied to all workers, like a URI."""
        with VecCompilerEnv(_make_root(), n=2) as vec:
            benchmark = vec.workers[0].datasets.benchmark("benchmark://cbench-v1/sha")
            vec.reset(benchmarks=benchmark)
            assert all(
                str(worker.benchmark.uri) == "benchmark://cbench-v1/sha"
                for worker in vec.workers
            )


class TestBatchedApi:
    def test_reset_returns_batch(self, vec_env):
        observations = vec_env.reset()
        assert len(observations) == 4
        for observation in observations:
            assert observation.shape == (56,)

    def test_reset_with_per_worker_benchmarks(self, vec_env):
        vec_env.reset(
            benchmarks=[BENCHMARK, "cbench-v1/sha", BENCHMARK, "cbench-v1/sha"]
        )
        uris = [str(worker.benchmark.uri) for worker in vec_env.workers]
        assert uris[1] == "benchmark://cbench-v1/sha"
        assert uris[0] == f"benchmark://{BENCHMARK}"

    def test_reset_benchmark_batch_size_mismatch(self, vec_env):
        with pytest.raises(ValueError, match="one entry per worker"):
            vec_env.reset(benchmarks=[BENCHMARK])

    def test_step_batch_size_mismatch(self, vec_env):
        vec_env.reset()
        with pytest.raises(ValueError, match="one entry per worker"):
            vec_env.step([0, 1])

    def test_step_applies_one_action_per_worker(self, vec_env):
        vec_env.reset()
        observations, rewards, dones, infos = vec_env.step([0, 1, 2, 3])
        assert len(observations) == len(rewards) == len(dones) == len(infos) == 4
        assert [worker.actions for worker in vec_env.workers] == [[0], [1], [2], [3]]

    def test_masked_workers_are_skipped(self, vec_env):
        vec_env.reset()
        observations, rewards, dones, infos = vec_env.multistep([[1], None, [2], None])
        assert dones == [False, True, False, True]
        assert rewards[1] is None and observations[1] is None
        assert infos[1] == {"skipped": True}
        assert vec_env.workers[1].actions == []

    def test_batched_observations_single_space(self, vec_env):
        vec_env.reset()
        counts = vec_env.observations("IrInstructionCount")
        assert len(counts) == 4
        assert all(int(count) > 0 for count in counts)

    def test_batched_observations_multiple_spaces(self, vec_env):
        vec_env.reset()
        batches = vec_env.observations(["IrInstructionCount", "IrSha1"])
        assert len(batches) == 4
        for count, sha in batches:
            assert int(count) > 0
            assert isinstance(sha, str)

    def test_episode_rewards(self, vec_env):
        vec_env.reset()
        vec_env.multistep([[0, 1], [2], [], [3, 4, 5]])
        rewards = vec_env.episode_rewards
        assert len(rewards) == 4
        assert all(reward is not None for reward in rewards)


class TestTrajectoryEquivalence:
    """Acceptance criterion: VecCompilerEnv(n=4) produces identical
    per-episode trajectories to 4 serial environments on the same
    benchmark/seed."""

    @pytest.mark.parametrize("backend", ["serial", "thread"])
    def test_vec_matches_serial_envs(self, backend):
        rng = random.Random(1234)
        episodes = [[rng.randrange(124) for _ in range(8)] for _ in range(4)]

        serial_observations, serial_rewards = [], []
        for actions in episodes:
            env = _make_root()
            try:
                env.reset()
                observation, reward, done, _ = env.multistep(actions)
                serial_observations.append(np.asarray(observation))
                serial_rewards.append(env.episode_reward)
            finally:
                env.close()

        with VecCompilerEnv(_make_root(), n=4, backend=backend) as vec:
            vec.reset()
            observations, _, _, _ = vec.multistep(episodes)
            for i in range(4):
                np.testing.assert_array_equal(
                    np.asarray(observations[i]), serial_observations[i]
                )
                assert vec.workers[i].episode_reward == serial_rewards[i]

    def test_thread_backend_matches_serial_backend_stepwise(self):
        rng = random.Random(99)
        action_plan = [[rng.randrange(124) for _ in range(4)] for _ in range(6)]

        def rollout(backend):
            with VecCompilerEnv(_make_root(), n=4, backend=backend) as vec:
                trajectory = []
                vec.reset()
                for step_actions in action_plan:
                    observations, rewards, dones, _ = vec.step(step_actions)
                    trajectory.append(
                        ([np.asarray(o) for o in observations], rewards, dones)
                    )
                return trajectory

        serial = rollout("serial")
        threaded = rollout("thread")
        for (s_obs, s_rew, s_done), (t_obs, t_rew, t_done) in zip(serial, threaded):
            for a, b in zip(s_obs, t_obs):
                np.testing.assert_array_equal(a, b)
            assert s_rew == t_rew
            assert s_done == t_done


class TestLifecycle:
    def test_close_is_idempotent(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.close()
        vec.close()

    def test_post_close_operations_raise(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.close()
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.step([0, 1])
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.reset()
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.observations("IrInstructionCount")

    def test_del_on_unclosed_pool_does_not_raise(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.__del__()

    def test_worker_close_then_pool_close(self):
        """Closing a worker out-of-band must not break pool shutdown."""
        vec = VecCompilerEnv(_make_root(), n=3)
        vec.reset()
        vec.workers[1].close()
        vec.close()

    def test_shared_backend_instance_is_not_closed(self):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            vec = VecCompilerEnv(_make_root(), n=2, backend=backend)
            vec.reset()
            vec.close()
            assert backend.executor is not None
            assert backend.run(lambda x: x + 1, [1, 2]) == [2, 3]
        finally:
            backend.close()

    def test_closed_thread_backend_rejects_batches(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.close()
        with pytest.raises(RuntimeError, match="closed ThreadPoolBackend"):
            backend.run(lambda x: x, [1])


class TestAsyncResult:
    def test_resolved(self):
        result = AsyncResult.resolved(42)
        assert result.done()
        assert result.result() == 42
        assert result.exception() is None

    def test_raised(self):
        error = RuntimeError("boom")
        result = AsyncResult.raised(error)
        assert result.done()
        assert result.exception() is error
        with pytest.raises(RuntimeError, match="boom"):
            result.result()

    def test_eager_dispatch_without_executor(self):
        env = _make_root()
        try:
            env.reset()
            result = env.service.step_async(
                StepRequest(
                    session_id=env._session_id,
                    actions=[],
                    observation_space_names=["IrInstructionCount"],
                )
            )
            assert result.done()
            assert int(result.result().observations[0].value()) > 0
        finally:
            env.close()

    def test_overlapped_dispatch_on_executor(self):
        backend = ThreadPoolBackend(max_workers=2)
        env = _make_root()
        try:
            env.reset()
            fork = env.fork()
            try:
                results = [
                    env.service.step_async(
                        StepRequest(
                            session_id=session,
                            actions=[1],
                            observation_space_names=["IrInstructionCount"],
                        ),
                        executor=backend.executor,
                    )
                    for session in (env._session_id, fork._session_id)
                ]
                replies = [result.result(timeout=30) for result in results]
                assert all(
                    int(reply.observations[0].value()) > 0 for reply in replies
                )
            finally:
                fork.close()
        finally:
            env.close()
            backend.close()

    def test_eager_dispatch_captures_errors(self):
        env = _make_root()
        try:
            result = env.service.step_async(
                StepRequest(session_id=10**9, actions=[], observation_space_names=[])
            )
            assert result.done()
            assert isinstance(result.exception(), SessionNotFound)
            with pytest.raises(SessionNotFound):
                result.result()
        finally:
            env.close()


class TestSerialBackend:
    def test_runs_in_order(self):
        backend = SerialBackend()
        order = []

        def record(item):
            order.append(item)
            return item * 2

        assert backend.run(record, [1, 2, 3]) == [2, 4, 6]
        assert order == [1, 2, 3]


class TestAutotuningIntegration:
    def test_parallel_evaluate_matches_serial_evaluation(self):
        from repro.autotuning.base import Budget, EpisodeTuner

        rng = random.Random(7)
        sequences = [[rng.randrange(124) for _ in range(5)] for _ in range(3)]

        serial_rewards = []
        for sequence in sequences:
            env = _make_root()
            try:
                serial_rewards.append(
                    EpisodeTuner.evaluate_episode(env, sequence, Budget())
                )
            finally:
                env.close()

        budget = Budget()
        with VecCompilerEnv(_make_root(), n=4, backend="thread") as vec:
            rewards = EpisodeTuner.parallel_evaluate(vec, sequences, budget)
        assert rewards == serial_rewards
        assert budget.steps == sum(len(s) for s in sequences)

    def test_parallel_evaluate_rejects_oversized_batches(self):
        from repro.autotuning.base import Budget, EpisodeTuner

        with VecCompilerEnv(_make_root(), n=2) as vec:
            with pytest.raises(ValueError, match="pool of 2 workers"):
                EpisodeTuner.parallel_evaluate(vec, [[0], [1], [2]], Budget())

    @pytest.mark.parametrize("tuner_name", ["random", "hill", "genetic"])
    def test_searchers_use_vectorized_path(self, tuner_name):
        from repro.autotuning import RandomSearch
        from repro.autotuning.genetic import SequenceGeneticAlgorithm
        from repro.autotuning.hill_climbing import SequenceHillClimbing

        tuner = {
            "random": RandomSearch(seed=3, patience=4, max_episode_length=8),
            "hill": SequenceHillClimbing(seed=3, episode_length=6),
            "genetic": SequenceGeneticAlgorithm(seed=3, episode_length=6, population_size=4),
        }[tuner_name]
        with VecCompilerEnv(_make_root(), n=3, backend="thread") as vec:
            result = tuner.tune(vec, max_steps=48)
        assert result.benchmark == f"benchmark://{BENCHMARK}"
        assert result.episodes > 0
        assert result.steps >= 48
        assert result.best_reward > float("-inf")


class TestRlIntegration:
    def _agent(self, cls):
        from repro.rl.trainer import AUTOPHASE_ACTION_SUBSET, observation_dim

        num_actions = len(AUTOPHASE_ACTION_SUBSET)
        return cls(
            obs_dim=observation_dim("Autophase", True, num_actions),
            num_actions=num_actions,
            seed=0,
        )

    @pytest.mark.parametrize("agent_cls_name", ["a2c", "ppo"])
    def test_vec_rollout_collection(self, agent_cls_name):
        from repro.rl.a2c import A2CAgent
        from repro.rl.ppo import PPOAgent
        from repro.rl.trainer import make_vec_rl_environment, run_vec_episode

        agent = self._agent({"a2c": A2CAgent, "ppo": PPOAgent}[agent_cls_name])
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=3, backend="thread", episode_length=5)
        try:
            rewards = run_vec_episode(vec, agent, benchmarks=[BENCHMARK] * 3, train=True)
            assert len(rewards) == 3
            # The TimeLimit wrapper bounds every worker to 5 steps.
            assert all(len(worker.unwrapped.actions) == 5 for worker in vec.workers)
        finally:
            vec.close()

    def test_train_agent_vec_records_requested_episodes(self):
        from repro.rl.a2c import A2CAgent
        from repro.rl.trainer import make_vec_rl_environment, train_agent_vec

        agent = self._agent(A2CAgent)
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=2, backend="serial", episode_length=4)
        try:
            result = train_agent_vec(
                agent, vec, [BENCHMARK, "cbench-v1/sha"], episodes=5
            )
            assert len(result.episode_rewards) == 5
        finally:
            vec.close()

    def test_training_without_batch_api_raises(self):
        from repro.rl.trainer import make_vec_rl_environment, run_vec_episode

        class Greedy:
            def act(self, observation, greedy=False):
                return 0

        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=2, backend="serial", episode_length=3)
        try:
            with pytest.raises(ValueError, match="act_batch"):
                run_vec_episode(vec, Greedy(), train=True)
            # Greedy evaluation (no learning state) is fine.
            rewards = run_vec_episode(vec, Greedy(), train=False)
            assert len(rewards) == 2
        finally:
            vec.close()
