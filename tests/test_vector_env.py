"""Tests for the vectorized environment pool (``repro.core.vector``)."""

import random

import numpy as np
import pytest

import repro
from repro.core.service.connection import AsyncResult
from repro.core.service.proto import StepRequest
from repro.core.vector import (
    ProcessPoolBackend,
    SerialBackend,
    ThreadPoolBackend,
    VecCompilerEnv,
    WorkerSpec,
    make_vec_env,
    resolve_backend,
)
from repro.core.wrappers import TimeLimit
from repro.errors import SessionNotFound

BENCHMARK = "cbench-v1/crc32"


def _make_root():
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )


class _TimeLimitWrapper:
    """A picklable worker_wrapper (usable with the process backend)."""

    def __init__(self, max_episode_steps: int):
        self.max_episode_steps = max_episode_steps

    def __call__(self, worker):
        return TimeLimit(worker, max_episode_steps=self.max_episode_steps)


@pytest.fixture(params=["serial", "thread"])
def vec_env(request):
    vec = VecCompilerEnv(_make_root(), n=4, backend=request.param)
    yield vec
    vec.close()


class TestConstruction:
    def test_fork_population_shares_service(self, vec_env):
        services = {id(worker.service) for worker in vec_env.workers}
        assert len(services) == 1

    def test_invalid_pool_size(self):
        env = _make_root()
        try:
            with pytest.raises(ValueError, match="n >= 1"):
                VecCompilerEnv(env, n=0)
        finally:
            env.close()

    def test_unknown_backend(self):
        with pytest.raises(ValueError, match="Unknown execution backend"):
            resolve_backend("fibers", 4)

    def test_make_vec_env_by_id(self):
        with make_vec_env(
            "llvm-v0", n=2, benchmark=BENCHMARK, reward_space="IrInstructionCount"
        ) as vec:
            assert vec.num_envs == 2
            assert str(vec.benchmark.uri) == f"benchmark://{BENCHMARK}"

    def test_make_vec_env_requires_exactly_one_source(self):
        with pytest.raises(ValueError, match="exactly one"):
            make_vec_env()

    def test_pool_introspection(self, vec_env):
        assert len(vec_env) == 4
        assert vec_env[0] is vec_env.workers[0]
        assert list(vec_env) == vec_env.workers
        assert vec_env.action_space.n == 124

    def test_failing_worker_wrapper_cleans_up(self):
        """A wrapper that raises mid-population must not leak forked sessions."""
        env = _make_root()
        calls = []

        def explode(worker):
            calls.append(worker)
            raise RuntimeError("wrapper failed")

        try:
            with pytest.raises(RuntimeError, match="wrapper failed"):
                VecCompilerEnv(env, n=3, backend="thread", worker_wrapper=explode)
            assert calls  # The wrapper did run before failing.
            # The root env is still the caller's to use and close.
            env.reset()
            env.step(0)
        finally:
            env.close()

    def test_wrapped_forks_closed_through_their_wrapper_on_failure(self):
        """Regression: when the wrapper fails partway, forks that were
        already wrapped must be closed *through the wrapper* (which may hold
        resources of its own), not just via the raw fork list."""

        class Recording:
            def __init__(self, worker):
                self.worker = worker
                self.close_calls = 0

            def close(self):
                self.close_calls += 1
                self.worker.close()

        env = _make_root()
        wrapped = []

        def wrap(worker):
            if len(wrapped) == 2:
                raise RuntimeError("wrapper failed late")
            wrapper = Recording(worker)
            wrapped.append(wrapper)
            return wrapper

        try:
            with pytest.raises(RuntimeError, match="wrapper failed late"):
                VecCompilerEnv(env, n=3, worker_wrapper=wrap)
            assert len(wrapped) == 2
            # The fork (index 1) was released through its wrapper; the root's
            # wrapper (index 0) is left open because the caller owns the root.
            assert wrapped[1].close_calls == 1
            assert wrapped[0].close_calls == 0
            env.reset()
            env.step(0)
        finally:
            env.close()

    def test_make_vec_env_closes_constructed_root_on_failure(self):
        """Regression: make_vec_env(env_id=...) must not leak the env it
        constructed when pool population fails."""
        captured = []

        def explode(worker):
            captured.append(worker)
            raise RuntimeError("wrapper failed")

        with pytest.raises(RuntimeError, match="wrapper failed"):
            make_vec_env(
                "llvm-v0",
                n=2,
                benchmark=BENCHMARK,
                reward_space="IrInstructionCount",
                worker_wrapper=explode,
            )
        # The wrapper saw the root first; make_vec_env owned it and must have
        # released it (and, with no forks left, its service) before re-raising.
        root = captured[0]
        assert root.service.closed

    def test_reset_broadcasts_benchmark_object(self):
        """A single Benchmark instance is applied to all workers, like a URI."""
        with VecCompilerEnv(_make_root(), n=2) as vec:
            benchmark = vec.workers[0].datasets.benchmark("benchmark://cbench-v1/sha")
            vec.reset(benchmarks=benchmark)
            assert all(
                str(worker.benchmark.uri) == "benchmark://cbench-v1/sha"
                for worker in vec.workers
            )


class TestBatchedApi:
    def test_reset_returns_batch(self, vec_env):
        observations = vec_env.reset()
        assert len(observations) == 4
        for observation in observations:
            assert observation.shape == (56,)

    def test_reset_with_per_worker_benchmarks(self, vec_env):
        vec_env.reset(
            benchmarks=[BENCHMARK, "cbench-v1/sha", BENCHMARK, "cbench-v1/sha"]
        )
        uris = [str(worker.benchmark.uri) for worker in vec_env.workers]
        assert uris[1] == "benchmark://cbench-v1/sha"
        assert uris[0] == f"benchmark://{BENCHMARK}"

    def test_reset_benchmark_batch_size_mismatch(self, vec_env):
        with pytest.raises(ValueError, match="one entry per worker"):
            vec_env.reset(benchmarks=[BENCHMARK])

    def test_step_batch_size_mismatch(self, vec_env):
        vec_env.reset()
        with pytest.raises(ValueError, match="one entry per worker"):
            vec_env.step([0, 1])

    def test_step_applies_one_action_per_worker(self, vec_env):
        vec_env.reset()
        observations, rewards, dones, infos = vec_env.step([0, 1, 2, 3])
        assert len(observations) == len(rewards) == len(dones) == len(infos) == 4
        assert [worker.actions for worker in vec_env.workers] == [[0], [1], [2], [3]]

    def test_masked_workers_are_skipped(self, vec_env):
        vec_env.reset()
        observations, rewards, dones, infos = vec_env.multistep([[1], None, [2], None])
        assert dones == [False, True, False, True]
        assert rewards[1] is None and observations[1] is None
        assert infos[1] == {"skipped": True}
        assert vec_env.workers[1].actions == []

    def test_batched_observations_single_space(self, vec_env):
        vec_env.reset()
        counts = vec_env.observations("IrInstructionCount")
        assert len(counts) == 4
        assert all(int(count) > 0 for count in counts)

    def test_batched_observations_multiple_spaces(self, vec_env):
        vec_env.reset()
        batches = vec_env.observations(["IrInstructionCount", "IrSha1"])
        assert len(batches) == 4
        for count, sha in batches:
            assert int(count) > 0
            assert isinstance(sha, str)

    def test_episode_rewards(self, vec_env):
        vec_env.reset()
        vec_env.multistep([[0, 1], [2], [], [3, 4, 5]])
        rewards = vec_env.episode_rewards
        assert len(rewards) == 4
        assert all(reward is not None for reward in rewards)


class TestTrajectoryEquivalence:
    """Acceptance criterion: VecCompilerEnv(n=4) produces identical
    per-episode trajectories to 4 serial environments on the same
    benchmark/seed, under every execution backend."""

    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_vec_matches_serial_envs(self, backend):
        rng = random.Random(1234)
        episodes = [[rng.randrange(124) for _ in range(8)] for _ in range(4)]

        serial_observations, serial_rewards = [], []
        for actions in episodes:
            env = _make_root()
            try:
                env.reset()
                observation, reward, done, _ = env.multistep(actions)
                serial_observations.append(np.asarray(observation))
                serial_rewards.append(env.episode_reward)
            finally:
                env.close()

        with VecCompilerEnv(_make_root(), n=4, backend=backend) as vec:
            vec.reset()
            observations, _, _, _ = vec.multistep(episodes)
            for i in range(4):
                np.testing.assert_array_equal(
                    np.asarray(observations[i]), serial_observations[i]
                )
                assert vec.workers[i].episode_reward == serial_rewards[i]

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_backend_matches_serial_backend_stepwise(self, backend):
        rng = random.Random(99)
        action_plan = [[rng.randrange(124) for _ in range(4)] for _ in range(6)]

        def rollout(backend):
            with VecCompilerEnv(_make_root(), n=4, backend=backend) as vec:
                trajectory = []
                vec.reset()
                for step_actions in action_plan:
                    observations, rewards, dones, _ = vec.step(step_actions)
                    trajectory.append(
                        ([np.asarray(o) for o in observations], rewards, dones)
                    )
                return trajectory

        serial = rollout("serial")
        other = rollout(backend)
        for (s_obs, s_rew, s_done), (t_obs, t_rew, t_done) in zip(serial, other):
            for a, b in zip(s_obs, t_obs):
                np.testing.assert_array_equal(a, b)
            assert s_rew == t_rew
            assert s_done == t_done


class TestProcessBackend:
    """Process-pool specifics: subprocess workers, attribute proxying, and
    construction-failure behaviour."""

    def test_batched_observations_cross_process(self):
        with VecCompilerEnv(_make_root(), n=2, backend="process") as vec:
            vec.reset()
            counts = vec.observations("IrInstructionCount")
            assert len(counts) == 2
            assert all(int(count) > 0 for count in counts)

    def test_remote_attribute_access(self):
        with VecCompilerEnv(_make_root(), n=2, backend="process") as vec:
            vec.reset()
            vec.step([1, 2])
            assert [worker.actions for worker in vec.workers] == [[1], [2]]
            assert all(reward is not None for reward in vec.episode_rewards)
            assert vec.action_space.n == 124
            assert str(vec.benchmark.uri) == f"benchmark://{BENCHMARK}"

    def test_remote_errors_propagate(self):
        with VecCompilerEnv(_make_root(), n=1, backend="process") as vec:
            with pytest.raises(SessionNotFound, match="before reset"):
                vec.step([0])

    def test_connection_stats_aggregate_across_processes(self):
        with VecCompilerEnv(_make_root(), n=2, backend="process") as vec:
            vec.reset()
            vec.step([0, 1])
            stats = vec.connection_stats()
            # One start_session per subprocess, one step call per worker.
            assert stats["start_session"]["calls"] == 2
            assert stats["step"]["calls"] >= 2

    def test_requires_picklable_worker_wrapper(self):
        env = _make_root()
        try:
            with pytest.raises(ValueError, match="picklable"):
                VecCompilerEnv(env, n=2, backend="process", worker_wrapper=lambda w: w)
            # The root remains the caller's to use and close.
            env.reset()
        finally:
            env.close()

    def test_requires_env_constructed_by_make(self):
        env = _make_root()
        del env.spec  # Simulate an env constructed outside the registry.
        try:
            with pytest.raises(ValueError, match="no .spec"):
                VecCompilerEnv(env, n=2, backend="process")
            env.reset()
        finally:
            env.close()

    def test_rejects_wrapped_root(self):
        env = _make_root()
        wrapped = TimeLimit(env, max_episode_steps=5)
        try:
            with pytest.raises(ValueError, match="raw root environment"):
                VecCompilerEnv(wrapped, n=2, backend="process")
        finally:
            wrapped.close()

    def test_directly_constructed_backend_keeps_default_dispatcher_sizing(self):
        """Regression: ProcessPoolBackend() must not pin the dispatcher to a
        single thread — that would serialize every subprocess round trip."""
        backend = ProcessPoolBackend()
        try:
            assert backend.executor._max_workers > 1
        finally:
            backend.close()

    def test_worker_spec_roundtrip_replays_source_state(self):
        """The property the process backend rests on: a spec-rebuilt env
        continues from the same session state as its source."""
        env = _make_root()
        try:
            env.reset()
            env.multistep([0, 1, 2])
            spec = WorkerSpec.from_env(env)
            rebuilt = spec.build()
            try:
                assert rebuilt.actions == env.actions
                a, _, _, _ = env.step(3)
                b, _, _, _ = rebuilt.step(3)
                np.testing.assert_array_equal(np.asarray(a), np.asarray(b))
            finally:
                rebuilt.close()
        finally:
            env.close()


class TestAutoReset:
    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_done_worker_resets_within_the_batched_step(self, backend):
        wrapper = _TimeLimitWrapper(max_episode_steps=2)
        env = _make_root()
        with VecCompilerEnv(
            env, n=2, backend=backend, worker_wrapper=wrapper, auto_reset=True
        ) as vec:
            initial = [np.asarray(o) for o in vec.reset()]
            _, _, dones, _ = vec.step([17, 28])
            assert dones == [False, False]
            observations, _, dones, infos = vec.step([3, 5])
            assert dones == [True, True]
            for i in range(2):
                # The terminal observation of the finished episode is
                # preserved, and the slot already holds the *new* episode's
                # initial observation.
                assert "terminal_observation" in infos[i]
                np.testing.assert_array_equal(np.asarray(observations[i]), initial[i])
                assert vec.workers[i].actions == []
            # The next step runs in the fresh episode without a manual reset.
            _, _, dones, infos = vec.step([17, 28])
            assert dones == [False, False]
            assert all("terminal_observation" not in info for info in infos)

    def test_auto_reset_respects_explicit_observation_spaces(self):
        """Regression: the reset slot of a finished worker must be re-fetched
        in the caller's explicit observation spaces, not the default space."""
        wrapper = _TimeLimitWrapper(max_episode_steps=1)
        with VecCompilerEnv(
            _make_root(), n=2, worker_wrapper=wrapper, auto_reset=True
        ) as vec:
            vec.reset()
            initial_count = int(vec.observations("IrInstructionCount")[0])
            observations, _, dones, infos = vec.step(
                [1, 2],
                observation_spaces=["IrInstructionCount"],
                reward_spaces=["IrInstructionCount"],
            )
            assert dones == [True, True]
            for observation, info in zip(observations, infos):
                assert isinstance(observation, list) and len(observation) == 1
                # The slot holds the *new* episode's initial state, in the
                # requested space.
                assert int(observation[0]) == initial_count
                assert "terminal_observation" in info

    def test_masked_slots_are_not_reset(self):
        wrapper = _TimeLimitWrapper(max_episode_steps=2)
        with VecCompilerEnv(
            _make_root(), n=2, worker_wrapper=wrapper, auto_reset=True
        ) as vec:
            vec.reset()
            observations, rewards, dones, infos = vec.multistep([None, [1]])
            assert dones == [True, False]
            assert infos[0] == {"skipped": True}
            assert observations[0] is None

    def test_auto_reset_off_keeps_terminal_state(self):
        wrapper = _TimeLimitWrapper(max_episode_steps=1)
        with VecCompilerEnv(_make_root(), n=2, worker_wrapper=wrapper) as vec:
            vec.reset()
            _, _, dones, infos = vec.step([1, 2])
            assert dones == [True, True]
            assert all("terminal_observation" not in info for info in infos)
            assert [worker.unwrapped.actions for worker in vec.workers] == [[1], [2]]


class TestResetWorker:
    def test_reset_worker_routes_through_the_backend(self):
        """Regression: single-worker benchmark re-resets used to call
        ``workers[i].reset()`` directly, bypassing the execution backend (a
        blocking out-of-protocol round trip under the process backend).
        ``reset_worker`` must dispatch through ``backend.run`` like every
        batched operation."""

        class RecordingBackend(SerialBackend):
            def __init__(self):
                self.batches = 0

            def run(self, fn, items):
                self.batches += 1
                return super().run(fn, items)

        backend = RecordingBackend()
        env = _make_root()
        with VecCompilerEnv(env, n=2, backend=backend) as vec:
            vec.reset()
            batches = backend.batches
            observation = vec.reset_worker(1, benchmark="cbench-v1/qsort")
            assert backend.batches == batches + 1
            assert observation is not None
            assert str(vec.workers[1].benchmark.uri) == "benchmark://cbench-v1/qsort"
            # The other worker is untouched.
            assert str(vec.workers[0].benchmark.uri) == f"benchmark://{BENCHMARK}"

    @pytest.mark.parametrize("backend", ["serial", "process"])
    def test_reset_worker_matches_direct_reset(self, backend):
        with VecCompilerEnv(_make_root(), n=2, backend=backend) as vec:
            vec.reset()
            routed = np.asarray(vec.reset_worker(0, benchmark="cbench-v1/qsort"))
            direct = np.asarray(vec.workers[1].reset(benchmark="cbench-v1/qsort"))
            np.testing.assert_array_equal(routed, direct)

    def test_reset_worker_requires_open_pool(self):
        vec = VecCompilerEnv(_make_root(), n=1)
        vec.close()
        with pytest.raises(SessionNotFound, match="reset_worker"):
            vec.reset_worker(0)


class TestResize:
    @pytest.mark.parametrize("backend", ["serial", "thread", "process"])
    def test_grow_and_shrink(self, backend):
        with VecCompilerEnv(_make_root(), n=2, backend=backend) as vec:
            vec.reset()
            assert vec.resize(4) == 4
            assert vec.num_envs == 4
            observations, _, dones, _ = vec.step([7, 7, 7, 7])
            assert len(observations) == 4
            # Workers forked at reset state all see the same trajectory.
            for observation in observations[1:]:
                np.testing.assert_array_equal(
                    np.asarray(observation), np.asarray(observations[0])
                )
            assert not any(dones)
            assert vec.resize(1) == 1
            observations, _, _, _ = vec.step([3])
            assert len(observations) == 1

    def test_grown_workers_keep_wrappers_without_fork_override(self):
        """Regression: if the outermost wrapper does not implement fork()
        (the base CompilerEnvWrapper returns the unwrapped fork), resize()
        must re-apply the pool's worker_wrapper to grown workers."""
        from repro.core.wrappers import CompilerEnvWrapper

        class Tagging(CompilerEnvWrapper):  # No fork() override on purpose.
            pass

        with VecCompilerEnv(_make_root(), n=1, worker_wrapper=Tagging) as vec:
            vec.reset()
            vec.resize(3)
            assert all(isinstance(worker, Tagging) for worker in vec.workers)
            observations, _, _, _ = vec.step([0, 0, 0])
            assert len(observations) == 3

    def test_grown_workers_are_not_double_wrapped(self):
        """Regression: a composed wrapper whose *outer* layer lacks fork()
        while the inner one implements it must not gain a duplicate inner
        layer on resize — the whole chain is rebuilt instead."""
        from repro.core.wrappers import CompilerEnvWrapper

        class Outer(CompilerEnvWrapper):  # No fork() override on purpose.
            pass

        def wrap(worker):
            return Outer(TimeLimit(worker, max_episode_steps=3))

        def chain(worker):
            types = []
            while worker is not None:
                types.append(type(worker).__name__)
                worker = worker.__dict__.get("env")
            return types

        with VecCompilerEnv(_make_root(), n=1, worker_wrapper=wrap) as vec:
            vec.reset()
            vec.resize(2)
            assert chain(vec.workers[1]) == chain(vec.workers[0])
            # The TimeLimit must fire after 3 steps, not 6.
            _, _, dones, _ = vec.multistep([[1, 2, 3], [1, 2, 3]])
            assert dones == [True, True]

    def test_grown_workers_inherit_worker0_state(self):
        with VecCompilerEnv(_make_root(), n=1) as vec:
            vec.reset()
            vec.step([11])
            vec.resize(2)
            assert vec.workers[1].actions == vec.workers[0].actions == [11]

    def test_resize_validates_bounds_and_lifecycle(self):
        vec = VecCompilerEnv(_make_root(), n=1)
        try:
            with pytest.raises(ValueError, match="n >= 1"):
                vec.resize(0)
        finally:
            vec.close()
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.resize(2)


class TestLifecycle:
    def test_close_is_idempotent(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.close()
        vec.close()

    def test_post_close_operations_raise(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.close()
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.step([0, 1])
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.reset()
        with pytest.raises(SessionNotFound, match="closed VecCompilerEnv"):
            vec.observations("IrInstructionCount")

    def test_del_on_unclosed_pool_does_not_raise(self):
        vec = VecCompilerEnv(_make_root(), n=2)
        vec.reset()
        vec.__del__()

    def test_worker_close_then_pool_close(self):
        """Closing a worker out-of-band must not break pool shutdown."""
        vec = VecCompilerEnv(_make_root(), n=3)
        vec.reset()
        vec.workers[1].close()
        vec.close()

    def test_close_aggregates_worker_errors(self, caplog):
        """Regression: every worker teardown error must stay diagnosable —
        the first is raised, the rest are logged and attached to it."""

        class FailingClose:
            def __init__(self, message):
                self.error = RuntimeError(message)

            def close(self):
                raise self.error

        vec = VecCompilerEnv(_make_root(), n=1)
        real_worker = vec.workers[0]
        first, second = FailingClose("boom-first"), FailingClose("boom-second")
        vec.workers = [first, second]
        try:
            with caplog.at_level("WARNING", logger="repro.core.vector.vec_env"):
                with pytest.raises(RuntimeError, match="boom-first") as excinfo:
                    vec.close()
            assert excinfo.value.suppressed_errors == (second.error,)
            assert any("boom-second" in record.getMessage() for record in caplog.records)
        finally:
            real_worker.close()

    def test_close_single_error_has_no_suppressed_list(self):
        class FailingClose:
            def close(self):
                raise RuntimeError("boom-only")

        vec = VecCompilerEnv(_make_root(), n=1)
        real_worker = vec.workers[0]
        vec.workers = [FailingClose()]
        try:
            with pytest.raises(RuntimeError, match="boom-only") as excinfo:
                vec.close()
            assert not getattr(excinfo.value, "suppressed_errors", ())
        finally:
            real_worker.close()

    def test_shared_backend_instance_is_not_closed(self):
        backend = ThreadPoolBackend(max_workers=2)
        try:
            vec = VecCompilerEnv(_make_root(), n=2, backend=backend)
            vec.reset()
            vec.close()
            assert backend.executor is not None
            assert backend.run(lambda x: x + 1, [1, 2]) == [2, 3]
        finally:
            backend.close()

    def test_closed_thread_backend_rejects_batches(self):
        backend = ThreadPoolBackend(max_workers=1)
        backend.close()
        with pytest.raises(RuntimeError, match="closed ThreadPoolBackend"):
            backend.run(lambda x: x, [1])


class TestAsyncResult:
    def test_resolved(self):
        result = AsyncResult.resolved(42)
        assert result.done()
        assert result.result() == 42
        assert result.exception() is None

    def test_raised(self):
        error = RuntimeError("boom")
        result = AsyncResult.raised(error)
        assert result.done()
        assert result.exception() is error
        with pytest.raises(RuntimeError, match="boom"):
            result.result()

    def test_eager_dispatch_without_executor(self):
        env = _make_root()
        try:
            env.reset()
            result = env.service.step_async(
                StepRequest(
                    session_id=env._session_id,
                    actions=[],
                    observation_space_names=["IrInstructionCount"],
                )
            )
            assert result.done()
            assert int(result.result().observations[0].value()) > 0
        finally:
            env.close()

    def test_overlapped_dispatch_on_executor(self):
        backend = ThreadPoolBackend(max_workers=2)
        env = _make_root()
        try:
            env.reset()
            fork = env.fork()
            try:
                results = [
                    env.service.step_async(
                        StepRequest(
                            session_id=session,
                            actions=[1],
                            observation_space_names=["IrInstructionCount"],
                        ),
                        executor=backend.executor,
                    )
                    for session in (env._session_id, fork._session_id)
                ]
                replies = [result.result(timeout=30) for result in results]
                assert all(
                    int(reply.observations[0].value()) > 0 for reply in replies
                )
            finally:
                fork.close()
        finally:
            env.close()
            backend.close()

    def test_eager_dispatch_captures_errors(self):
        env = _make_root()
        try:
            result = env.service.step_async(
                StepRequest(session_id=10**9, actions=[], observation_space_names=[])
            )
            assert result.done()
            assert isinstance(result.exception(), SessionNotFound)
            with pytest.raises(SessionNotFound):
                result.result()
        finally:
            env.close()


class TestSerialBackend:
    def test_runs_in_order(self):
        backend = SerialBackend()
        order = []

        def record(item):
            order.append(item)
            return item * 2

        assert backend.run(record, [1, 2, 3]) == [2, 4, 6]
        assert order == [1, 2, 3]


class TestAutotuningIntegration:
    def test_parallel_evaluate_matches_serial_evaluation(self):
        from repro.autotuning.base import Budget, EpisodeTuner

        rng = random.Random(7)
        sequences = [[rng.randrange(124) for _ in range(5)] for _ in range(3)]

        serial_rewards = []
        for sequence in sequences:
            env = _make_root()
            try:
                serial_rewards.append(
                    EpisodeTuner.evaluate_episode(env, sequence, Budget())
                )
            finally:
                env.close()

        budget = Budget()
        with VecCompilerEnv(_make_root(), n=4, backend="thread") as vec:
            rewards = EpisodeTuner.parallel_evaluate(vec, sequences, budget)
        assert rewards == serial_rewards
        assert budget.steps == sum(len(s) for s in sequences)

    def test_parallel_evaluate_rejects_oversized_batches(self):
        from repro.autotuning.base import Budget, EpisodeTuner

        with VecCompilerEnv(_make_root(), n=2) as vec:
            with pytest.raises(ValueError, match="pool of 2 workers"):
                EpisodeTuner.parallel_evaluate(vec, [[0], [1], [2]], Budget())

    @pytest.mark.parametrize("tuner_name", ["random", "hill", "genetic"])
    def test_searchers_use_vectorized_path(self, tuner_name):
        from repro.autotuning import RandomSearch
        from repro.autotuning.genetic import SequenceGeneticAlgorithm
        from repro.autotuning.hill_climbing import SequenceHillClimbing

        tuner = {
            "random": RandomSearch(seed=3, patience=4, max_episode_length=8),
            "hill": SequenceHillClimbing(seed=3, episode_length=6),
            "genetic": SequenceGeneticAlgorithm(seed=3, episode_length=6, population_size=4),
        }[tuner_name]
        with VecCompilerEnv(_make_root(), n=3, backend="thread") as vec:
            result = tuner.tune(vec, max_steps=48)
        assert result.benchmark == f"benchmark://{BENCHMARK}"
        assert result.episodes > 0
        assert result.steps >= 48
        assert result.best_reward > float("-inf")


class TestRlIntegration:
    def _agent(self, cls):
        from repro.rl.trainer import AUTOPHASE_ACTION_SUBSET, observation_dim

        num_actions = len(AUTOPHASE_ACTION_SUBSET)
        return cls(
            obs_dim=observation_dim("Autophase", True, num_actions),
            num_actions=num_actions,
            seed=0,
        )

    def _make_agent(self, name):
        from repro.rl import A2CAgent, ApexDQNAgent, ImpalaAgent, PPOAgent

        return self._agent(
            {"a2c": A2CAgent, "ppo": PPOAgent, "impala": ImpalaAgent, "apex": ApexDQNAgent}[
                name
            ]
        )

    @pytest.mark.parametrize("agent_cls_name", ["a2c", "ppo", "impala", "apex"])
    def test_vec_rollout_collection(self, agent_cls_name):
        from repro.rl.trainer import make_vec_rl_environment, run_vec_episode

        agent = self._make_agent(agent_cls_name)
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=3, backend="thread", episode_length=5)
        try:
            rewards = run_vec_episode(vec, agent, benchmarks=[BENCHMARK] * 3, train=True)
            assert len(rewards) == 3
            # The TimeLimit wrapper bounds every worker to 5 steps.
            assert all(len(worker.unwrapped.actions) == 5 for worker in vec.workers)
        finally:
            vec.close()

    def test_train_agent_vec_records_requested_episodes(self):
        from repro.rl.a2c import A2CAgent
        from repro.rl.trainer import make_vec_rl_environment, train_agent_vec

        agent = self._agent(A2CAgent)
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=2, backend="serial", episode_length=4)
        try:
            result = train_agent_vec(
                agent, vec, [BENCHMARK, "cbench-v1/sha"], episodes=5
            )
            assert len(result.episode_rewards) == 5
        finally:
            vec.close()

    @pytest.mark.parametrize("agent_cls_name", ["impala", "apex"])
    def test_auto_reset_rollouts_train_end_to_end(self, agent_cls_name):
        """IMPALA and Ape-X collect continuous auto-reset rollouts through
        train_agent_vec, like A2C/PPO."""
        from repro.rl.trainer import make_vec_rl_environment, train_agent_vec

        agent = self._make_agent(agent_cls_name)
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(
            env, n=2, backend="serial", episode_length=4, auto_reset=True
        )
        try:
            result = train_agent_vec(agent, vec, [BENCHMARK], episodes=5)
            assert len(result.episode_rewards) == 5
            assert all(np.isfinite(result.episode_rewards))
        finally:
            vec.close()

    def test_auto_reset_rollouts_cycle_all_benchmarks(self):
        """Regression: with more benchmarks than workers, continuous rollouts
        must still rotate through the whole training list (like the lockstep
        path) instead of pinning each worker to its first assignment."""
        from repro.core.wrappers import CompilerEnvWrapper
        from repro.rl.ppo import PPOAgent
        from repro.rl.trainer import run_vec_rollouts

        seen = []

        class Recorder(CompilerEnvWrapper):
            def reset(self, *args, **kwargs):
                if kwargs.get("benchmark") is not None:
                    seen.append(str(kwargs["benchmark"]))
                return self.env.reset(*args, **kwargs)

        def wrap(worker):
            return Recorder(TimeLimit(worker, max_episode_steps=2))

        agent = PPOAgent(obs_dim=56, num_actions=124, seed=0)
        vec = VecCompilerEnv(_make_root(), n=1, worker_wrapper=wrap, auto_reset=True)
        try:
            rewards = run_vec_rollouts(
                vec, agent, episodes=3, benchmarks=[BENCHMARK, "cbench-v1/sha"]
            )
            assert len(rewards) >= 3
            assert seen[:3] == [BENCHMARK, "cbench-v1/sha", BENCHMARK]
        finally:
            vec.close()

    def test_run_vec_rollouts_requires_auto_reset(self):
        from repro.rl.ppo import PPOAgent
        from repro.rl.trainer import make_vec_rl_environment, run_vec_rollouts

        agent = self._agent(PPOAgent)
        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=2, backend="serial", episode_length=3)
        try:
            with pytest.raises(ValueError, match="auto_reset"):
                run_vec_rollouts(vec, agent, episodes=2)
        finally:
            vec.close()

    def test_make_vec_rl_environment_closes_env_on_failure(self):
        from repro.rl.trainer import make_vec_rl_environment

        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        with pytest.raises(ValueError, match="Unknown execution backend"):
            make_vec_rl_environment(env, n=2, backend="bogus")
        assert env.service.closed

    def test_training_without_batch_api_raises(self):
        from repro.rl.trainer import make_vec_rl_environment, run_vec_episode

        class Greedy:
            def act(self, observation, greedy=False):
                return 0

        env = repro.make(
            "llvm-v0", benchmark=BENCHMARK, reward_space="IrInstructionCountNorm"
        )
        vec = make_vec_rl_environment(env, n=2, backend="serial", episode_length=3)
        try:
            with pytest.raises(ValueError, match="act_batch"):
                run_vec_episode(vec, Greedy(), train=True)
            # Greedy evaluation (no learning state) is fine.
            rewards = run_vec_episode(vec, Greedy(), train=False)
            assert len(rewards) == 2
        finally:
            vec.close()
