"""Tests for the command-line tools and the Explorer REST API."""

import json

import pytest

from repro.cli.main import main, make_parser
from repro.web.rest import ExplorerAPI


class TestCli:
    def test_envs_command(self, capsys):
        assert main(["envs"]) == 0
        out = capsys.readouterr().out
        assert "llvm-v0" in out and "gcc-v0" in out

    def test_describe_command(self, capsys):
        assert main(["describe", "--env", "llvm-v0", "--limit", "5"]) == 0
        out = capsys.readouterr().out
        assert "Action space" in out
        assert "Autophase" in out
        assert "IrInstructionCountOz" in out

    def test_datasets_command(self, capsys):
        assert main(["datasets", "--env", "llvm-v0"]) == 0
        out = capsys.readouterr().out
        assert "cbench-v1" in out
        assert "1041333" in out.replace(",", "")

    def test_random_search_and_validate_round_trip(self, capsys, tmp_path):
        output = str(tmp_path / "results.csv")
        assert (
            main(
                [
                    "random-search",
                    "--benchmark", "benchmark://cbench-v1/crc32",
                    "--steps", "60",
                    "--patience", "10",
                    "--output", output,
                ]
            )
            == 0
        )
        assert main(["validate", output]) == 0
        out = capsys.readouterr().out
        assert "✅" in out

    def test_replay_command(self, capsys, tmp_path):
        output = str(tmp_path / "results.csv")
        main(["random-search", "--benchmark", "benchmark://cbench-v1/crc32", "--steps", "40",
              "--output", output])
        assert main(["replay", output]) == 0

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            make_parser().parse_args([])

    @pytest.mark.parametrize("agent", ["impala", "apex"])
    def test_train_command(self, capsys, tmp_path, agent):
        output = str(tmp_path / "curve.json")
        assert (
            main(
                [
                    "train",
                    "--agent", agent,
                    "--benchmark", "benchmark://cbench-v1/crc32",
                    "--episodes", "3",
                    "--episode-length", "3",
                    "--workers", "2",
                    "--output", output,
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert agent in out
        assert "mean episode reward" in out
        with open(output) as f:
            curve = json.load(f)
        assert curve["agent"] == agent
        assert len(curve["episode_rewards"]) == 3


class TestExplorerApi:
    @pytest.fixture()
    def api(self):
        api = ExplorerAPI()
        yield api
        for session_id in list(api.sessions):
            api.stop(session_id)

    def test_describe(self, api):
        description = api.describe()
        assert len(description["actions"]) == 124
        assert "Autophase" in description["observations"]
        assert "IrInstructionCountOz" in description["rewards"]

    def test_start_step_stop(self, api):
        started = api.start("IrInstructionCount", "benchmark://cbench-v1/crc32")
        session_id = started["session_id"]
        assert started["states"][0]["instruction_count"] > 0
        stepped = api.step(session_id, [1, 2])
        assert len(stepped["states"]) == 2
        assert api.stop(session_id)["status"] == "closed"

    def test_start_with_action_replay(self, api):
        started = api.start("IrInstructionCount", "benchmark://cbench-v1/crc32", actions=[5])
        assert len(started["states"]) == 2

    def test_undo(self, api):
        started = api.start("IrInstructionCount", "benchmark://cbench-v1/crc32")
        session_id = started["session_id"]
        initial = started["states"][0]["instruction_count"]
        api.step(session_id, [api.describe()["actions"].index("mem2reg")])
        undone = api.undo(session_id, 1)
        assert undone["state"]["instruction_count"] == initial

    def test_http_server_round_trip(self):
        import threading
        import urllib.request

        from repro.web.rest import create_server

        server = create_server(port=0)
        port = server.server_address[1]
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(f"http://127.0.0.1:{port}/api/v1/describe") as response:
                payload = json.loads(response.read())
            assert len(payload["actions"]) == 124
        finally:
            server.shutdown()
