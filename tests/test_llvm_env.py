"""Integration tests for the LLVM phase-ordering environment."""

import numpy as np
import pytest

import repro
from repro.llvm.env import LlvmEnv


class TestObservationSpaces:
    def test_all_paper_observation_spaces_present(self, llvm_env):
        expected = {
            "Ir", "IrSha1", "IrInstructionCount", "IrInstructionCountO0", "IrInstructionCountO3",
            "IrInstructionCountOz", "InstCount", "Autophase", "Inst2vec",
            "Inst2vecPreprocessedText", "Programl", "ObjectTextSizeBytes", "ObjectTextSizeO0",
            "ObjectTextSizeO3", "ObjectTextSizeOz", "Runtime", "Buildtime",
        }
        assert expected <= set(llvm_env.observation.spaces)

    def test_ir_observation(self, llvm_env):
        llvm_env.reset()
        ir = llvm_env.observation["Ir"]
        assert "define i32 @main()" in ir

    def test_instcount_and_autophase_shapes(self, llvm_env):
        llvm_env.reset()
        assert llvm_env.observation["InstCount"].shape == (70,)
        assert llvm_env.observation["Autophase"].shape == (56,)

    def test_programl_graph_observation(self, llvm_env):
        llvm_env.reset()
        graph = llvm_env.observation["Programl"]
        assert graph.number_of_nodes() > 0

    def test_runtime_observation_is_nondeterministic(self, llvm_env):
        llvm_env.reset()
        samples = {llvm_env.observation["Runtime"] for _ in range(4)}
        assert len(samples) > 1
        spec = llvm_env.observation.spaces["Runtime"]
        assert not spec.deterministic
        assert spec.platform_dependent

    def test_codesize_observation_is_deterministic(self, llvm_env):
        llvm_env.reset()
        assert llvm_env.observation["IrInstructionCount"] == llvm_env.observation["IrInstructionCount"]
        spec = llvm_env.observation.spaces["IrInstructionCount"]
        assert spec.deterministic and not spec.platform_dependent

    def test_baseline_observations_are_cached_per_benchmark(self, llvm_env):
        llvm_env.reset()
        o0 = llvm_env.observation["IrInstructionCountO0"]
        oz = llvm_env.observation["IrInstructionCountOz"]
        o3 = llvm_env.observation["IrInstructionCountO3"]
        assert o0 >= oz > 0
        assert o0 >= o3 > 0
        assert o0 == llvm_env.observation["IrInstructionCount"]  # Fresh reset == unoptimized.


class TestRewardSpaces:
    def test_all_paper_reward_spaces_present(self, llvm_env):
        expected = {
            "IrInstructionCount", "IrInstructionCountNorm", "IrInstructionCountO3",
            "IrInstructionCountOz", "ObjectTextSizeBytes", "ObjectTextSizeNorm",
            "ObjectTextSizeO3", "ObjectTextSizeOz", "Runtime",
        }
        assert expected <= set(llvm_env.reward.spaces)

    def test_codesize_reward_equals_instruction_delta(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        before = env.observation["IrInstructionCount"]
        _, reward, _, _ = env.step(env.action_space["mem2reg"])
        after = env.observation["IrInstructionCount"]
        assert reward == pytest.approx(before - after)

    def test_noop_pass_gives_zero_reward(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        _, reward, _, info = env.step(env.action_space["barrier"])
        assert reward == 0.0
        assert info["action_had_no_effect"]

    def test_lowerswitch_can_give_negative_reward(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/gsm", reward_space="IrInstructionCount")
        try:
            env.reset()
            _, reward, _, _ = env.step(env.action_space["lowerswitch"])
            assert reward <= 0.0
        finally:
            env.close()


class TestLlvmSpecificApi:
    def test_write_ir_and_bitcode(self, llvm_env, tmp_path):
        llvm_env.reset()
        path = llvm_env.write_bitcode(str(tmp_path / "out.bc"))
        with open(path) as f:
            assert "define" in f.read()

    def test_ir_sha1_changes_with_optimization(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        before = env.ir_sha1
        env.step(env.action_space["mem2reg"])
        assert env.ir_sha1 != before

    def test_make_benchmark_from_ir_text(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        benchmark = env.make_benchmark(env.ir, uri="benchmark://user-v0/copy")
        env.reset(benchmark=benchmark)
        assert str(env.benchmark.uri) == "benchmark://user-v0/copy"
        assert env.observation["IrInstructionCount"] > 0

    def test_runtime_observation_count_parameter(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        env.runtime_observation_count = 3
        assert env.runtime_observation_count == 3
        measurements = env.observation["Runtime"]
        assert len(measurements) == 3

    def test_apply_baseline_pipeline(self, fresh_llvm_env):
        env = fresh_llvm_env
        env.reset()
        oz = env.observation["IrInstructionCountOz"]
        env.apply_baseline_pipeline("-Oz")
        assert env.observation["IrInstructionCount"] == oz

    def test_default_benchmark_is_qsort(self):
        env = repro.make("llvm-v0")
        try:
            assert str(env.benchmark.uri) == "benchmark://cbench-v1/qsort"
        finally:
            env.close()

    def test_registered_variants_set_spaces(self):
        env = repro.make("llvm-autophase-ic-v0")
        try:
            assert env.observation_space_spec.id == "Autophase"
            assert env.reward_space.name == "IrInstructionCountOz"
        finally:
            env.close()


class TestOptimizationPotential:
    def test_random_episode_changes_program(self, llvm_env):
        llvm_env.reset()
        llvm_env.action_space.seed(0)
        start = llvm_env.observation["IrInstructionCount"]
        for _ in range(30):
            llvm_env.step(llvm_env.action_space.sample())
        assert llvm_env.observation["IrInstructionCount"] < start

    def test_oz_actions_reach_oz_size(self, fresh_llvm_env):
        from repro.llvm.passes.registry import OZ_PIPELINE

        env = fresh_llvm_env
        env.reset()
        env.multistep([env.action_space[name] for name in OZ_PIPELINE])
        assert env.observation["IrInstructionCount"] == env.observation["IrInstructionCountOz"]

    def test_episode_has_no_terminal_state(self, llvm_env):
        llvm_env.reset()
        for _ in range(10):
            _, _, done, _ = llvm_env.step(0)
            assert not done
