"""Tests for the service transport layer and the socket daemon.

Covers the client/server split that turns this reproduction into the paper's
actual architecture: the ``ServiceTransport`` implementations (in-process,
subprocess pipe, socket), the ``repro serve`` daemon's session multiplexing
(per-session locking, idle reaping, client-churn survival, graceful
shutdown), transport equivalence of full environments, persistent-daemon
reuse across sequential vectorized pools, cross-transport stats aggregation,
and the autoscaling policy driving ``VecCompilerEnv.resize()``.
"""

import multiprocessing
import pickle
import random
import socket
import struct
import threading
import time

import numpy as np
import pytest

import repro
from repro.core.service import (
    CompilationSession,
    CompilerGymServiceRuntime,
    ConnectionOpts,
    ServiceConnection,
)
from repro.core.service.chaos import FlushLimitedSocket
from repro.core.service.proto import HelloReply, StartSessionRequest, StepRequest
from repro.core.service.runtime.server import ServiceServer, make_env_server
from repro.core.service.transport import (
    LEGACY_WIRE_VERSION,
    PROTOCOL_VERSION,
    REPLY_OK,
    InProcessTransport,
    PipeTransport,
    SocketTransport,
    parse_service_url,
    read_frame,
    write_frame,
    write_frame_reply,
)
from repro.core.spaces import NamedDiscrete, ObservationSpaceSpec, Scalar
from repro.core.vector import AutoscalePolicy, VecCompilerEnv, make_vec_env
from repro.core.vector.autoscale import interval_delta
from repro.core.service.connection import clear_spaces_cache, merge_stats_summaries
from repro.core.wrappers import TimeLimit
from repro.errors import (
    ServiceError,
    ServiceIsClosed,
    ServiceTransportError,
    SessionNotFound,
)
from tests.test_service import _CounterSession, _resolver, _runtime

BENCHMARK = "cbench-v1/crc32"


def _serve_handshake(client: socket.socket, rfile=None):
    """Answer the hello handshake on a raw fake-daemon socket.

    Every SocketTransport opens its connection with a hello RPC; a
    hand-rolled fake daemon must answer it before the transport's connect()
    returns. Returns the read stream so the fake can keep consuming frames.
    """
    rfile = rfile if rfile is not None else client.makefile("rb")
    request_id, method, _args = read_frame(rfile)
    assert method == "hello"
    wfile = client.makefile("wb")
    write_frame_reply(
        wfile,
        request_id,
        REPLY_OK,
        HelloReply(wire_version=PROTOCOL_VERSION),
        version=LEGACY_WIRE_VERSION,
    )
    return rfile


class _SlowStepSession(_CounterSession):
    """A counter session whose actions take a configurable wall time."""

    sleep_seconds = 0.1
    # Class-level concurrency tracker, observable because the daemon under
    # test runs in this process.
    _track_lock = threading.Lock()
    in_flight = 0
    max_in_flight = 0

    def apply_action(self, action):
        cls = _SlowStepSession
        with cls._track_lock:
            cls.in_flight += 1
            cls.max_in_flight = max(cls.max_in_flight, cls.in_flight)
        try:
            time.sleep(self.sleep_seconds)
            return super().apply_action(action)
        finally:
            with cls._track_lock:
                cls.in_flight -= 1

    @classmethod
    def reset_tracking(cls):
        with cls._track_lock:
            cls.in_flight = 0
            cls.max_in_flight = 0


def _slow_runtime() -> CompilerGymServiceRuntime:
    # Result cache off: these runtimes back the concurrency tests, which
    # assert on apply_action actually executing (sleeping, tracking
    # in-flight counts) — a cache hit would serve the step without running it.
    return CompilerGymServiceRuntime(
        session_type=_SlowStepSession, benchmark_resolver=_resolver, result_cache=False
    )


def _make_llvm_env(**kwargs):
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
        **kwargs,
    )


@pytest.fixture(scope="module")
def llvm_daemon():
    """A module-scoped LLVM service daemon accepting socket clients."""
    server = make_env_server("llvm-v0", port=0, session_timeout=None).start()
    yield server
    server.shutdown()


# -- URL parsing and framing -------------------------------------------------


class TestServiceUrl:
    def test_tcp_with_scheme(self):
        assert parse_service_url("tcp://127.0.0.1:5499") == ("tcp", ("127.0.0.1", 5499))

    def test_tcp_without_scheme(self):
        assert parse_service_url("example.org:80") == ("tcp", ("example.org", 80))

    def test_unix(self):
        assert parse_service_url("unix:///tmp/svc.sock") == ("unix", "/tmp/svc.sock")

    def test_ipv6_brackets_are_stripped(self):
        assert parse_service_url("tcp://[::1]:5499") == ("tcp", ("::1", 5499))

    @pytest.mark.parametrize("url", ["", "tcp://", "nohost", "host:notaport", "unix://"])
    def test_invalid(self, url):
        with pytest.raises(ValueError):
            parse_service_url(url)


class TestFraming:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "frames.bin"
        with open(path, "wb") as f:
            write_frame(f, ("step", (1, [2, 3])))
            write_frame(f, {"nested": np.arange(4)})
        with open(path, "rb") as f:
            assert read_frame(f) == ("step", (1, [2, 3]))
            np.testing.assert_array_equal(read_frame(f)["nested"], np.arange(4))
            with pytest.raises(EOFError):
                read_frame(f)

    def test_truncated_frame(self, tmp_path):
        path = tmp_path / "frames.bin"
        with open(path, "wb") as f:
            write_frame(f, "payload")
        data = path.read_bytes()
        path.write_bytes(data[:-3])
        with open(path, "rb") as f:
            with pytest.raises(ConnectionError, match="Truncated"):
                read_frame(f)


# -- transports behind ServiceConnection -------------------------------------


@pytest.mark.parametrize(
    "make_transport",
    [
        lambda: InProcessTransport(_runtime),
        lambda: PipeTransport(_runtime),
    ],
    ids=["in-process", "pipe"],
)
class TestTransportConnection:
    def test_full_session_lifecycle(self, make_transport):
        with ServiceConnection(make_transport()) as connection:
            assert [s.name for s in connection.spaces.action_spaces] == ["counter"]
            session = connection.start_session(
                StartSessionRequest(
                    benchmark_uri="benchmark://t-v0/5", observation_space_names=["value"]
                )
            )
            assert session.observations[0].value() == 5
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[1, 1],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 7
            assert connection.stats["step"].calls == 1

    def test_backend_crash_restarts_and_surfaces_service_error(self, make_transport):
        connection = ServiceConnection(
            make_transport(), ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001)
        )
        session = connection.start_session(
            StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
        )
        # Action 2 raises inside the backend; the transport channel is
        # restarted and the session is gone afterwards.
        with pytest.raises((ServiceError, SessionNotFound)):
            connection.step(StepRequest(session_id=session.session_id, actions=[2]))
        assert connection.restart_count >= 1
        connection.close()

    def test_closed_connection_rejects_calls(self, make_transport):
        connection = ServiceConnection(make_transport())
        connection.close()
        with pytest.raises(ServiceIsClosed):
            connection.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))


class TestPipeTransport:
    def test_runtime_is_not_local(self):
        with ServiceConnection(PipeTransport(_runtime)) as connection:
            assert connection.runtime is None

    def test_killed_subprocess_is_replaced_on_retry(self):
        transport = PipeTransport(_runtime)
        connection = ServiceConnection(
            transport, ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001)
        )
        transport._process.kill()
        transport._process.join(timeout=5)
        # The dead channel surfaces as a transport failure, the connection
        # restarts it (a fresh subprocess), and the retried call succeeds.
        session = connection.start_session(
            StartSessionRequest(
                benchmark_uri="benchmark://t-v0/3", observation_space_names=["value"]
            )
        )
        assert session.observations[0].value() == 3
        assert connection.restart_count >= 1
        connection.close()

    def test_shutdown_terminates_subprocess(self):
        transport = PipeTransport(_runtime)
        connection = ServiceConnection(transport)
        process = transport._process
        connection.close()
        assert not process.is_alive()


class TestSlowSuccessIsNotRetried:
    """Regression: a call that *succeeded* but exceeded the deadline must be
    recorded as a slow success and raised without retrying — re-executing an
    already-applied step() would corrupt the session."""

    def test_slow_success_raises_without_retry(self):
        connection = ServiceConnection(
            _slow_runtime,
            ConnectionOpts(rpc_call_max_seconds=0.02, rpc_max_retries=5, retry_wait_seconds=0.001),
        )
        session = connection.start_session(
            StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
        )
        runtime = connection.runtime
        steps_before = runtime.stats["step"]
        with pytest.raises(ServiceTransportError, match="will not be retried"):
            connection.step(StepRequest(session_id=session.session_id, actions=[1]))
        # Applied exactly once: no restart, no re-execution.
        assert runtime.stats["step"] == steps_before + 1
        assert connection.restart_count == 0
        assert connection.stats["step"].retries == 0
        # The slow success is recorded in the wall-time accounting.
        assert connection.stats["step"].calls == 1
        assert connection.stats["step"].errors == 1
        assert connection.stats["step"].wall_times[0] >= 0.02
        # The action WAS applied; the session remains usable and consistent.
        reply = connection.step(
            StepRequest(
                session_id=session.session_id,
                actions=[],
                observation_space_names=["value"],
            )
        )
        assert reply.observations[0].value() == 1
        connection.close()

    def test_fast_success_within_deadline_is_untouched(self):
        connection = ServiceConnection(
            _runtime, ConnectionOpts(rpc_call_max_seconds=5.0)
        )
        session = connection.start_session(
            StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
        )
        connection.step(StepRequest(session_id=session.session_id, actions=[1]))
        assert connection.stats["step"].errors == 0
        connection.close()


class TestLostReplyIsNotRetryable:
    """Regression: once a request frame reached the daemon, losing the reply
    must NOT be retryable — the daemon (unlike an in-process runtime, which a
    restart destroys) survives with the session live, so a retried step()
    would be applied twice."""

    def test_reply_loss_after_send_raises_transport_error(self):
        requests_seen = []
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def serve_one_then_drop():
            client, _ = listener.accept()
            rfile = _serve_handshake(client)
            requests_seen.append(read_frame(rfile))
            client.close()  # Swallow the request, never reply.

        thread = threading.Thread(target=serve_one_then_drop, daemon=True)
        thread.start()
        transport = SocketTransport(f"tcp://127.0.0.1:{port}", timeout=5.0)
        transport.connect()
        try:
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                transport.call("step", StepRequest(session_id=0, actions=[1]))
            thread.join(timeout=5)
            # The daemon-side saw the request exactly once, and the error is
            # in the ServiceError family, which ServiceConnection._call
            # raises without its restart/retry loop.
            assert len(requests_seen) == 1
            assert isinstance(ServiceTransportError("x"), ServiceError)
        finally:
            transport.shutdown()
            listener.close()

class TestSendFailureClassification:
    """Regression (headline): send-side failures must be classified by
    whether any bytes may have been flushed. A clean pre-flush failure
    cannot have reached the daemon, so it stays retryable ConnectionError;
    once part of the frame may be on the wire, the daemon may already own a
    complete request, so the failure is non-retryable."""

    def _server(self) -> ServiceServer:
        return ServiceServer(_runtime(), session_timeout=None).start()

    def test_presend_failure_surfaces_as_retryable_connection_error(self):
        with self._server() as server:
            transport = SocketTransport(server.url, timeout=5.0)
            transport.connect()
            conn = transport._conn
            conn.sock = FlushLimitedSocket(conn.sock, flush_budget=0)
            with pytest.raises(ConnectionError, match="before any of the request") as excinfo:
                transport.call("server_info")
            # The retryable family, NOT the non-retryable ServiceError one.
            assert not isinstance(excinfo.value, ServiceError)
            transport.shutdown()

    def test_presend_failure_is_retried_and_applied_exactly_once(self):
        with self._server() as server:
            connection = ServiceConnection(
                SocketTransport(server.url, timeout=5.0),
                ConnectionOpts(rpc_max_retries=3, retry_wait_seconds=0.001),
            )
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            steps_before = server.runtime.stats["step"]
            conn = connection.transport._conn
            conn.sock = FlushLimitedSocket(conn.sock, flush_budget=0)
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[1],
                    observation_space_names=["value"],
                )
            )
            # The retry transparently reconnected and applied the step once.
            assert reply.observations[0].value() == 1
            assert connection.stats["step"].retries == 1
            assert server.runtime.stats["step"] == steps_before + 1
            connection.close()

    def test_partial_flush_failure_is_never_retried(self):
        with self._server() as server:
            connection = ServiceConnection(
                SocketTransport(server.url, timeout=5.0),
                ConnectionOpts(rpc_max_retries=5, retry_wait_seconds=0.001),
            )
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            steps_before = server.runtime.stats["step"]
            conn = connection.transport._conn
            # Let 5 bytes of the frame out, then fail: from the client's view
            # the daemon may or may not own a complete request.
            conn.sock = FlushLimitedSocket(conn.sock, flush_budget=5)
            with pytest.raises(ServiceTransportError, match="will not be retried"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1])
                )
            # Never retried, never restarted, never re-sent to the daemon.
            assert connection.stats["step"].retries == 0
            assert connection.restart_count == 0
            assert server.runtime.stats["step"] == steps_before
            # The daemon session is untouched; a fresh connection epoch
            # carries on where the episode left off.
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 0
            connection.close()


# -- the socket daemon --------------------------------------------------------


class TestServiceServer:
    def _server(self, **kwargs) -> ServiceServer:
        kwargs.setdefault("session_timeout", None)
        return ServiceServer(_runtime(), **kwargs).start()

    def test_socket_connection_lifecycle(self):
        with self._server() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                assert connection.runtime is None
                session = connection.start_session(
                    StartSessionRequest(
                        benchmark_uri="benchmark://t-v0/4",
                        observation_space_names=["value"],
                    )
                )
                assert session.observations[0].value() == 4
                reply = connection.step(
                    StepRequest(
                        session_id=session.session_id,
                        actions=[1, 1, 1],
                        observation_space_names=["value"],
                    )
                )
                assert reply.observations[0].value() == 7

    def test_unix_socket(self, tmp_path):
        path = str(tmp_path / "service.sock")
        with ServiceServer(_runtime(), unix_path=path, session_timeout=None).start() as server:
            assert server.url == f"unix://{path}"
            with ServiceConnection(SocketTransport(server.url)) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/9")
                )
                assert session.session_id == 0

    def test_multiplexes_concurrent_clients(self):
        """Many clients, one runtime: all sessions land on the same backend."""
        with self._server() as server:
            connections = [
                ServiceConnection(SocketTransport(server.url)) for _ in range(4)
            ]
            try:
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri=f"benchmark://t-v0/{i}")
                    )
                    for i, connection in enumerate(connections)
                ]
                # Session ids are allocated by the one shared runtime.
                assert sorted(s.session_id for s in sessions) == [0, 1, 2, 3]
                for i, (connection, session) in enumerate(zip(connections, sessions)):
                    reply = connection.step(
                        StepRequest(
                            session_id=session.session_id,
                            actions=[1],
                            observation_space_names=["value"],
                        )
                    )
                    assert reply.observations[0].value() == i + 1
                assert server.runtime.stats["start_session"] == 4
            finally:
                for connection in connections:
                    connection.close()

    def test_sessions_survive_client_churn(self):
        """A dropped client ends nothing: its sessions remain reachable."""
        with self._server() as server:
            first = ServiceConnection(SocketTransport(server.url))
            session = first.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/5")
            )
            first.step(StepRequest(session_id=session.session_id, actions=[1]))
            # Simulate a client crash: drop the socket without end_session.
            first._transport._close_socket()
            first.closed = True

            second = ServiceConnection(SocketTransport(server.url))
            reply = second.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[1],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 7
            second.close()

    def test_client_restart_preserves_sessions(self):
        """Transport restart() reconnects without destroying daemon state."""
        with self._server() as server:
            transport = SocketTransport(server.url)
            with ServiceConnection(transport) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/2")
                )
                connection.restart()
                assert connection.restart_count == 1
                reply = connection.step(
                    StepRequest(
                        session_id=session.session_id,
                        actions=[],
                        observation_space_names=["value"],
                    )
                )
                assert reply.observations[0].value() == 2

    def test_same_session_calls_serialize_different_sessions_overlap(self):
        _SlowStepSession.reset_tracking()
        with ServiceServer(_slow_runtime(), session_timeout=None).start() as server:
            a = ServiceConnection(SocketTransport(server.url))
            b = ServiceConnection(SocketTransport(server.url))
            try:
                shared = a.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )

                def hammer(connection, session_id, actions):
                    connection.step(StepRequest(session_id=session_id, actions=actions))

                # Two clients on the SAME session: per-session locking keeps
                # the compiler state serialized.
                threads = [
                    threading.Thread(target=hammer, args=(c, shared.session_id, [1] * 3))
                    for c in (a, b)
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert _SlowStepSession.max_in_flight == 1
                reply = a.step(
                    StepRequest(
                        session_id=shared.session_id,
                        actions=[],
                        observation_space_names=["value"],
                    )
                )
                assert reply.observations[0].value() == 6

                # Two clients on DIFFERENT sessions: their steps overlap.
                _SlowStepSession.reset_tracking()
                other = b.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )
                threads = [
                    threading.Thread(target=hammer, args=(a, shared.session_id, [1] * 3)),
                    threading.Thread(target=hammer, args=(b, other.session_id, [1] * 3)),
                ]
                for t in threads:
                    t.start()
                for t in threads:
                    t.join()
                assert _SlowStepSession.max_in_flight == 2
            finally:
                a.close()
                b.close()

    def test_daemon_crash_is_not_retried_and_not_double_applied(self):
        """A generic exception inside the daemon (compiler crash mid-step)
        must surface as a non-retryable ServiceError: the daemon session
        survives a client restart(), so a retry would re-apply the request's
        already-applied prefix."""
        with self._server() as server:
            connection = ServiceConnection(
                SocketTransport(server.url),
                ConnectionOpts(rpc_max_retries=5, retry_wait_seconds=0.001),
            )
            session = connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
            # Action 1 applies, then action 2 raises RuntimeError server-side.
            with pytest.raises(ServiceError, match="simulated compiler crash"):
                connection.step(
                    StepRequest(session_id=session.session_id, actions=[1, 2])
                )
            assert connection.restart_count == 0
            assert connection.stats["step"].retries == 0
            # The prefix was applied exactly once — no silent re-execution.
            reply = connection.step(
                StepRequest(
                    session_id=session.session_id,
                    actions=[],
                    observation_space_names=["value"],
                )
            )
            assert reply.observations[0].value() == 1
            connection.close()

    def test_idle_sessions_are_reaped(self):
        with ServiceServer(
            _runtime(), session_timeout=0.2, reap_interval=0.05
        ).start() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )
                deadline = time.time() + 5
                while server.reaped_sessions == 0 and time.time() < deadline:
                    time.sleep(0.05)
                assert server.reaped_sessions == 1
                with pytest.raises(SessionNotFound):
                    connection.step(
                        StepRequest(session_id=session.session_id, actions=[1])
                    )

    def test_active_sessions_survive_reaping(self):
        with ServiceServer(
            _runtime(), session_timeout=0.3, reap_interval=0.05
        ).start() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )
                # Keep touching the session for longer than the timeout.
                for _ in range(6):
                    time.sleep(0.1)
                    connection.step(
                        StepRequest(session_id=session.session_id, actions=[1])
                    )
                assert server.reaped_sessions == 0

    def test_malformed_frame_drops_client_not_daemon(self):
        """A corrupt frame (stray writer, version skew) must cost only that
        client's connection, never the serving thread or the daemon."""
        with self._server() as server:
            _, address = parse_service_url(server.url)
            raw = socket.create_connection(address)
            garbage = b"not a pickle at all"
            raw.sendall(struct.pack(">Q", len(garbage)) + garbage)
            # The daemon drops us: the socket reaches EOF instead of hanging.
            raw.settimeout(5)
            assert raw.recv(1) == b""
            raw.close()
            # And keeps serving well-formed clients.
            with ServiceConnection(SocketTransport(server.url)) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/1")
                )
                assert session.session_id == 0

    def test_version_skewed_client_is_dropped(self):
        """A frame announcing a future protocol version must be rejected on
        its first byte — dropped cleanly, never unpickled."""
        with self._server() as server:
            _, address = parse_service_url(server.url)
            raw = socket.create_connection(address)
            payload = pickle.dumps((0, "server_info", ()))
            raw.sendall(
                bytes([PROTOCOL_VERSION + 1])
                + struct.pack(">Q", len(payload))
                + payload
            )
            raw.settimeout(5)
            assert raw.recv(1) == b""
            raw.close()
            # The daemon survives and still speaks the current version.
            with ServiceConnection(SocketTransport(server.url)) as connection:
                assert connection.transport.server_info()["protocol_version"] == (
                    PROTOCOL_VERSION
                )

    def test_unknown_method_is_rejected(self):
        with self._server() as server:
            transport = SocketTransport(server.url)
            transport.connect()
            with pytest.raises(ServiceError, match="Unknown service method"):
                transport.call("__class__")
            transport.shutdown()

    def test_unknown_session_leaves_no_tracking_entry(self):
        """Calls against ended/unknown sessions must not grow the daemon's
        session-tracking maps (they would leak forever with reaping off)."""
        with self._server() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                for bogus_id in (7, 8, 9):
                    with pytest.raises(SessionNotFound):
                        connection.step(StepRequest(session_id=bogus_id, actions=[1]))
                assert server.server_info()["active_sessions"] == 0
                assert not server._session_locks

    def test_request_shutdown_is_lock_free_and_stops_serving(self):
        """The signal-handler path: request_shutdown() under a held server
        lock must not deadlock, and serve_forever must exit afterwards."""
        server = self._server()
        with server._lock:
            server.request_shutdown()  # Deadlocks here if it takes _lock.
        deadline = time.time() + 5
        while server._accept_thread.is_alive() and time.time() < deadline:
            time.sleep(0.01)
        assert not server._accept_thread.is_alive()
        server.shutdown()

    def test_server_info(self):
        with self._server(env_id="counter-v0") as server:
            transport = SocketTransport(server.url)
            transport.connect()
            info = transport.server_info()
            assert info["env_id"] == "counter-v0"
            assert info["url"] == server.url
            assert info["connections_served"] == 1
            transport.shutdown()

    def test_graceful_shutdown_unblocks_clients(self):
        server = self._server()
        connection = ServiceConnection(SocketTransport(server.url))
        connection.start_session(StartSessionRequest(benchmark_uri="benchmark://t-v0/0"))
        server.shutdown()
        assert server.closed
        # The daemon is gone: further calls surface as service errors after
        # the retry loop fails to reconnect.
        connection.opts.rpc_max_retries = 2
        connection.opts.retry_wait_seconds = 0.001
        with pytest.raises(ServiceError):
            connection.start_session(
                StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
            )
        connection.close()
        # Shutdown is idempotent.
        server.shutdown()


# -- batched stepping and request-id multiplexing -----------------------------


class TestBatchedStepSessions:
    """The daemon-side batched stepping RPC: a vec pool's whole step in one
    round trip, concurrent under per-session locks, reaper-safe, and with
    per-session accounting."""

    def _server(self, **kwargs) -> ServiceServer:
        kwargs.setdefault("session_timeout", None)
        return ServiceServer(_runtime(), **kwargs).start()

    def test_batch_matches_individual_steps(self):
        with self._server() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                assert connection.supports_step_sessions
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri=f"benchmark://t-v0/{i}")
                    )
                    for i in range(3)
                ]
                results = connection.step_sessions(
                    [
                        StepRequest(
                            session_id=session.session_id,
                            actions=[1] * (i + 1),
                            observation_space_names=["value"],
                        )
                        for i, session in enumerate(sessions)
                    ]
                )
                assert [r.session_id for r in results] == [
                    s.session_id for s in sessions
                ]
                assert all(r.ok for r in results)
                # Counter i stepped (i + 1) times: same values as individual
                # step() calls would produce.
                assert [r.reply.observations[0].value() for r in results] == [1, 3, 5]
                assert server.batched_steps == 1
                assert server.server_info()["batched_steps"] == 1

    def test_batched_sub_steps_overlap_under_session_locks(self):
        _SlowStepSession.reset_tracking()
        with ServiceServer(_slow_runtime(), session_timeout=None).start() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                    )
                    for _ in range(3)
                ]
                results = connection.step_sessions(
                    [
                        StepRequest(session_id=s.session_id, actions=[1])
                        for s in sessions
                    ]
                )
                assert all(r.ok for r in results)
                # Distinct sessions stepped concurrently inside the batch.
                assert _SlowStepSession.max_in_flight >= 2

    def test_per_session_failure_is_reported_not_raised(self):
        with self._server() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                session = connection.start_session(
                    StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                )
                results = connection.step_sessions(
                    [
                        StepRequest(session_id=session.session_id, actions=[1]),
                        StepRequest(session_id=999, actions=[1]),
                    ]
                )
                assert results[0].ok
                assert not results[1].ok
                assert isinstance(results[1].error, SessionNotFound)
                # The bogus id left no tracking entry behind; the live
                # session is untouched.
                assert server.server_info()["active_sessions"] == 1

    def test_batched_stats_attribute_per_session_for_autoscaling(self):
        # Satellite: connection_stats()-driven autoscaling keeps seeing
        # per-worker load when the pool steps through the batched RPC.
        with self._server() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                    )
                    for _ in range(4)
                ]
                before = connection.stats_summary()
                connection.step_sessions(
                    [
                        StepRequest(session_id=s.session_id, actions=[1])
                        for s in sessions
                    ]
                )
                after = connection.stats_summary()
                delta = interval_delta(before, after)
                # One round trip, but four per-session step records — NOT one
                # shared counter.
                assert delta["step_sessions"]["calls"] == 1
                assert delta["step"]["calls"] == 4
                assert delta["step"]["wall_time_s"] > 0
                # Paired autoscale observation: the policy sees the batched
                # steps as per-worker load and makes a scaling decision.
                policy = AutoscalePolicy(
                    max_workers=8, scale_up_latency_s=10.0, scale_down_latency_s=20.0
                )
                assert policy(after, current_workers=4) == 5

    def test_reaper_cannot_reap_mid_batch(self):
        # Satellite: a session stepping inside a batch holds its per-session
        # lock and re-stamps last_used, so a reaper firing mid-batch (the
        # step here takes 2x the idle timeout) must never end it.
        _SlowStepSession.reset_tracking()
        with ServiceServer(
            _slow_runtime(), session_timeout=0.2, reap_interval=0.02
        ).start() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                    )
                    for _ in range(2)
                ]
                results = connection.step_sessions(
                    [
                        StepRequest(
                            session_id=s.session_id,
                            actions=[1] * 4,  # 4 x 0.1s >> 0.2s idle timeout
                            observation_space_names=["value"],
                        )
                        for s in sessions
                    ]
                )
                assert all(r.ok for r in results)
                assert server.reaped_sessions == 0
                # Both sessions are still alive and consistent.
                for session in sessions:
                    reply = connection.step(
                        StepRequest(
                            session_id=session.session_id,
                            actions=[],
                            observation_space_names=["value"],
                        )
                    )
                    assert reply.observations[0].value() == 4


class TestMultiplexedConcurrency:
    """Request-id multiplexing: concurrent callers share one socket without
    serializing on it, and produce exactly the traces dedicated connections
    would."""

    def _trace_sessions(self, url, shared: bool, action_plans):
        n = len(action_plans)
        if shared:
            owned = [ServiceConnection(SocketTransport(url))]
            connections = owned * n
        else:
            owned = [ServiceConnection(SocketTransport(url)) for _ in range(n)]
            connections = owned
        traces = [None] * n
        try:
            sessions = [
                connections[i].start_session(
                    StartSessionRequest(benchmark_uri=f"benchmark://t-v0/{i}")
                )
                for i in range(n)
            ]

            def run(i):
                trace = []
                for action in action_plans[i]:
                    reply = connections[i].step(
                        StepRequest(
                            session_id=sessions[i].session_id,
                            actions=[action],
                            observation_space_names=["value"],
                        )
                    )
                    trace.append(reply.observations[0].value())
                traces[i] = trace

            threads = [threading.Thread(target=run, args=(i,)) for i in range(n)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not any(thread.is_alive() for thread in threads)
        finally:
            for connection in owned:
                connection.close()
        return traces

    def test_shared_connection_traces_match_dedicated_connections(self):
        rng = random.Random(3)
        plans = [[rng.choice([0, 1]) for _ in range(8)] for _ in range(4)]
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            dedicated = self._trace_sessions(server.url, shared=False, action_plans=plans)
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            shared = self._trace_sessions(server.url, shared=True, action_plans=plans)
        assert shared == dedicated

    def test_concurrent_callers_overlap_on_one_socket(self):
        # The point of multiplexing: independent sessions driven through ONE
        # transport reach the daemon concurrently instead of queueing on a
        # client-side lock.
        _SlowStepSession.reset_tracking()
        with ServiceServer(_slow_runtime(), session_timeout=None).start() as server:
            with ServiceConnection(SocketTransport(server.url)) as connection:
                sessions = [
                    connection.start_session(
                        StartSessionRequest(benchmark_uri="benchmark://t-v0/0")
                    )
                    for _ in range(3)
                ]

                def hammer(session):
                    connection.step(
                        StepRequest(session_id=session.session_id, actions=[1] * 2)
                    )

                threads = [
                    threading.Thread(target=hammer, args=(s,)) for s in sessions
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                assert _SlowStepSession.max_in_flight >= 2

    def test_connection_death_fails_every_in_flight_caller_without_retry(self):
        # Satellite: the daemon dying with a batch of calls in flight must
        # fail EVERY caller promptly and non-retryably — no hang, no retry,
        # no chance of double-applying the lost steps.
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def swallow_three_then_die():
            client, _ = listener.accept()
            rfile = _serve_handshake(client)
            for _ in range(3):
                read_frame(rfile)
            client.close()  # The daemon "dies" with three calls in flight.

        thread = threading.Thread(target=swallow_three_then_die, daemon=True)
        thread.start()
        transport = SocketTransport(f"tcp://127.0.0.1:{port}", timeout=60.0)
        transport.connect()
        errors = []
        errors_lock = threading.Lock()

        def call_step(i):
            try:
                transport.call("step", StepRequest(session_id=i, actions=[1]))
            except BaseException as error:  # noqa: BLE001 - collected for asserts
                with errors_lock:
                    errors.append(error)

        try:
            callers = [
                threading.Thread(target=call_step, args=(i,)) for i in range(3)
            ]
            for caller in callers:
                caller.start()
            for caller in callers:
                caller.join(timeout=10)
            # Nobody hangs until the 60s transport timeout...
            assert not any(caller.is_alive() for caller in callers)
            # ...and every caller got the non-retryable classification (the
            # requests DID reach the wire, so a retry could double-apply).
            assert len(errors) == 3
            for error in errors:
                assert isinstance(error, ServiceTransportError)
                assert "will not be retried" in str(error)
        finally:
            transport.shutdown()
            listener.close()


# -- full environments over the socket transport ------------------------------


class TestSocketEnvEquivalence:
    """Acceptance: a SocketTransport env produces the same observations,
    rewards, and episode traces as the InProcessTransport env."""

    ACTIONS = random.Random(7).sample(range(100), 12)

    def _trace(self, env, actions):
        trace = [np.asarray(env.reset(), dtype=np.float64)]
        for action in actions:
            observation, reward, done, info = env.step(action)
            trace.append(
                (np.asarray(observation, dtype=np.float64), reward, done,
                 info["action_had_no_effect"])
            )
        return trace

    def test_same_episode_trace_as_in_process(self, llvm_daemon):
        local = _make_llvm_env()
        remote = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            local_trace = self._trace(local, self.ACTIONS)
            remote_trace = self._trace(remote, self.ACTIONS)
            np.testing.assert_array_equal(local_trace[0], remote_trace[0])
            for (l_obs, l_rew, l_done, l_noop), (r_obs, r_rew, r_done, r_noop) in zip(
                local_trace[1:], remote_trace[1:]
            ):
                np.testing.assert_array_equal(l_obs, r_obs)
                assert l_rew == r_rew
                assert l_done == r_done
                assert l_noop == r_noop
            assert local.episode_reward == remote.episode_reward
            assert local.actions == remote.actions
        finally:
            local.close()
            remote.close()

    def test_fork_equivalence_over_socket(self, llvm_daemon):
        from tests.test_fork_equivalence import _assert_fork_replays_like_parent

        env = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            env.reset()
            env.multistep(self.ACTIONS[:4])
            fork = env.fork()
            try:
                assert fork.actions == env.actions
                assert fork.episode_reward == env.episode_reward
                _assert_fork_replays_like_parent(env, fork, self.ACTIONS[4:9])
            finally:
                fork.close()
        finally:
            env.close()

    def test_observation_spaces_match(self, llvm_daemon):
        local = _make_llvm_env()
        remote = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            assert sorted(remote.observation.spaces) == sorted(local.observation.spaces)
            assert remote.action_space.n == local.action_space.n
            local.reset()
            remote.reset()
            assert remote.observation["IrSha1"] == local.observation["IrSha1"]
            assert int(remote.observation["IrInstructionCount"]) == int(
                local.observation["IrInstructionCount"]
            )
        finally:
            local.close()
            remote.close()

    def test_spec_records_service_url(self, llvm_daemon):
        env = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            assert env.spec.kwargs["service_url"] == llvm_daemon.url
        finally:
            env.close()

    def test_daemon_fork_shares_then_can_dedicate_connection(self, llvm_daemon):
        """Sequential forks (ForkOnStep, backtracking) stay cheap — one
        fork_session RPC on the shared socket; concurrent users re-home a
        fork onto its own connection with use_dedicated_connection()."""
        env = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            env.reset()
            env.step(1)
            fork = env.fork()
            try:
                assert fork.service is env.service  # No per-fork handshake.
                assert fork.use_dedicated_connection()
                assert fork.service is not env.service
                # Both connections drive daemon-hosted sessions; closing the
                # fork's must not disturb the parent's.
                fork.step(2)
                fork.close()
                _, _, done, info = env.step(3)
                assert not done and "error_details" not in info
            finally:
                fork.close()
        finally:
            env.close()

    def test_custom_benchmark_fails_fast_over_daemon(self, llvm_daemon):
        from repro.errors import BenchmarkInitError

        env = _make_llvm_env(service_url=llvm_daemon.url)
        try:
            env.reset()
            custom = env.make_benchmark(
                env.observation["Ir"], uri="benchmark://user-v0/socket-test"
            )
            env.benchmark = custom
            with pytest.raises(BenchmarkInitError, match="resolved by the daemon"):
                env.reset()
        finally:
            env.close()

    def test_in_process_fork_still_shares_connection(self):
        env = _make_llvm_env()
        try:
            env.reset()
            fork = env.fork()
            try:
                assert fork.service is env.service
            finally:
                fork.close()
        finally:
            env.close()


class TestDaemonPoolReuse:
    """Acceptance: sequential VecCompilerEnv pools against one daemon reuse
    its service process — workers become daemon sessions, and no new service
    subprocess is spawned for the second pool."""

    def _pool(self, url, n):
        return make_vec_env(
            env_id="llvm-v0",
            n=n,
            backend="process",
            service_url=url,
            benchmark=BENCHMARK,
            observation_space="Autophase",
            reward_space="IrInstructionCount",
        )

    def test_sequential_pools_share_one_daemon(self, llvm_daemon):
        children_before = len(multiprocessing.active_children())
        sessions_before = llvm_daemon.runtime.stats["start_session"]

        with self._pool(llvm_daemon.url, 2) as pool1:
            pool1.reset()
            pool1.step([1, 2])
            info1 = pool1.workers[0].service.transport.server_info()
        after_pool1 = llvm_daemon.runtime.stats["start_session"]
        assert after_pool1 >= sessions_before + 2

        with self._pool(llvm_daemon.url, 2) as pool2:
            pool2.reset()
            pool2.step([1, 2])
            # Daemon-attached workers are local client objects (sessions on
            # the daemon), not subprocess proxies.
            from repro.core.vector import RemoteWorker

            assert not any(isinstance(w, RemoteWorker) for w in pool2.workers)
            info2 = pool2.workers[0].service.transport.server_info()

        # Same daemon process served both pools; its runtime accumulated the
        # second pool's sessions on top of the first's.
        assert info1["pid"] == info2["pid"]
        assert llvm_daemon.runtime.stats["start_session"] >= after_pool1 + 2
        # No service subprocess was spawned client-side for either pool.
        assert len(multiprocessing.active_children()) == children_before

    def test_thread_backend_daemon_pool_shares_one_multiplexed_connection(self, llvm_daemon):
        """Fork-populated thread pools keep every worker on the root's
        socket: the transport multiplexes concurrent RPCs by request id (and
        batched stepping collapses a pool step into one round trip), so
        sharing no longer serializes the backend's concurrency."""
        with make_vec_env(
            env_id="llvm-v0",
            n=3,
            backend="thread",
            service_url=llvm_daemon.url,
            benchmark=BENCHMARK,
            reward_space="IrInstructionCount",
        ) as pool:
            services = {id(worker.service) for worker in pool.workers}
            assert len(services) == 1
            pool.reset()
            _, rewards, _, _ = pool.step([1, 2, 3])
            assert len(rewards) == 3

    def test_daemon_pool_accepts_unpicklable_wrapper(self, llvm_daemon):
        """Daemon-attached workers are built in-process, so the picklable-
        spec requirement of subprocess workers must not apply."""
        with make_vec_env(
            env_id="llvm-v0",
            n=2,
            backend="process",
            service_url=llvm_daemon.url,
            benchmark=BENCHMARK,
            reward_space="IrInstructionCount",
            worker_wrapper=lambda e: TimeLimit(e, max_episode_steps=3),
        ) as pool:
            pool.reset()
            _, _, dones, _ = pool.step([1, 2])
            assert dones == [False, False]

    def test_resize_amortizes_daemon_sessions(self, llvm_daemon):
        children_before = len(multiprocessing.active_children())
        with self._pool(llvm_daemon.url, 2) as pool:
            pool.reset()
            pool.resize(4)
            assert pool.num_envs == 4
            observations, rewards, dones, _ = pool.step([1, 2, 3, 4])
            assert len(observations) == 4
            # Growth forked daemon sessions; still no local subprocesses.
            assert len(multiprocessing.active_children()) == children_before
            # Grown workers stay on the shared multiplexed connection — no
            # per-worker handshake, and batched steps cover the whole pool.
            services = {id(worker.service) for worker in pool.workers}
            assert len(services) == 1


class TestSocketStatsAggregation:
    """Satellite: connection stats from daemon-hosted sessions merge with
    local ones through the same summary pipeline."""

    def test_pool_aggregates_across_daemon_workers(self, llvm_daemon):
        with make_vec_env(
            env_id="llvm-v0",
            n=2,
            backend="process",
            service_url=llvm_daemon.url,
            benchmark=BENCHMARK,
            reward_space="IrInstructionCount",
        ) as pool:
            pool.reset()
            pool.step([1, 2])
            stats = pool.connection_stats()
        # Each worker holds its own socket connection; the pool merges them.
        assert stats["start_session"]["calls"] == 2
        assert stats["step"]["calls"] >= 2
        assert stats["step"]["wall_time_s"] > 0

    def test_daemon_and_local_summaries_merge(self, llvm_daemon):
        # Earlier tests against the same daemon populated the client-side
        # spaces cache; drop it so the remote env records a get_spaces call.
        clear_spaces_cache(llvm_daemon.url)
        remote = _make_llvm_env(service_url=llvm_daemon.url)
        local = _make_llvm_env()
        try:
            for env in (remote, local):
                env.reset()
                env.step(1)
            merged = merge_stats_summaries(
                [remote.service.stats_summary(), local.service.stats_summary()]
            )
            assert merged["step"]["calls"] == (
                remote.service.stats["step"].calls + local.service.stats["step"].calls
            )
            assert merged["start_session"]["calls"] == 2
            assert merged["get_spaces"]["calls"] == 2
        finally:
            remote.close()
            local.close()


class TestSpacesCache:
    """Static space metadata of a daemon is cached client-side by service
    URL, so auto-reset re-fetches and pool-worker handshakes stop costing a
    get_spaces round trip each."""

    def test_second_connection_to_same_daemon_skips_get_spaces(self):
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            clear_spaces_cache()
            first = ServiceConnection(SocketTransport(server.url))
            second = ServiceConnection(SocketTransport(server.url))
            try:
                assert first.stats["get_spaces"].calls == 1
                # The second connection was served from the cache: no RPC.
                assert "get_spaces" not in second.stats
                assert second.spaces is first.spaces
            finally:
                first.close()
                second.close()
                clear_spaces_cache(server.url)

    def test_shutdown_retires_the_urls_cache_entry(self):
        # A daemon's ephemeral port can be reused by a later, different
        # daemon; its cache entry must die with it.
        with ServiceServer(_runtime(), session_timeout=None).start() as server:
            url = server.url
            with ServiceConnection(SocketTransport(url)) as connection:
                assert connection.stats["get_spaces"].calls == 1
        from repro.core.service.connection import _SPACES_CACHE

        assert url not in _SPACES_CACHE

    def test_private_runtime_transports_always_fetch(self):
        # In-process transports own a private runtime each: nothing to share.
        first = ServiceConnection(_runtime)
        second = ServiceConnection(_runtime)
        try:
            assert first.stats["get_spaces"].calls == 1
            assert second.stats["get_spaces"].calls == 1
            assert second.spaces is not first.spaces
        finally:
            first.close()
            second.close()


# -- spec picklability (required by the remote transports) --------------------


class TestSpecPickling:
    def test_default_spec_roundtrips(self):
        spec = ObservationSpaceSpec(
            "value", 0, Scalar(min=0, max=None, dtype=int), default_value=0
        )
        clone = pickle.loads(pickle.dumps(spec))
        assert clone == spec
        assert clone.translate(41) == 41
        assert clone.to_string(41) == "41"

    def test_unpicklable_callables_degrade_to_defaults(self):
        spec = ObservationSpaceSpec(
            "value",
            0,
            Scalar(min=0, max=None, dtype=int),
            translate=lambda value: value * 2,
            to_string=lambda value: f"<{value}>",
        )
        assert spec.translate(4) == 8
        clone = pickle.loads(pickle.dumps(spec))
        assert clone.translate(4) == 4
        assert clone.to_string(4) == "4"

    def test_get_spaces_reply_is_picklable(self):
        runtime = CompilerGymServiceRuntime(
            session_type=_CounterSession, benchmark_resolver=_resolver
        )
        reply = pickle.loads(pickle.dumps(runtime.get_spaces()))
        assert [s.name for s in reply.action_spaces] == ["counter"]


# -- autoscaling --------------------------------------------------------------


def _stats(step_calls, step_wall, errors=0, extra_calls=0):
    return {
        "step": {
            "calls": step_calls,
            "errors": errors,
            "retries": 0,
            "wall_time_s": step_wall,
        },
        "start_session": {
            "calls": extra_calls,
            "errors": 0,
            "retries": 0,
            "wall_time_s": 0.0,
        },
    }


class TestAutoscalePolicy:
    def test_interval_delta(self):
        before = _stats(10, 1.0)
        after = _stats(30, 2.0)
        delta = interval_delta(before, after)
        assert delta["step"]["calls"] == 20
        assert delta["step"]["wall_time_s"] == 1.0

    def test_interval_delta_resets_after_shrink(self):
        # A resize retires workers (and their counters); the delta restarts
        # from the new pool's values instead of going negative.
        before = _stats(100, 10.0)
        after = _stats(40, 1.0)
        delta = interval_delta(before, after)
        assert delta["step"]["calls"] == 40

    def test_interval_delta_resets_whole_method_on_any_negative_key(self):
        # Mixed signs after a resize: calls grew past the retired worker's
        # count but wall time did not. Clamping per key would pair interval
        # calls with *cumulative* wall time; the whole method must restart.
        before = _stats(10, 5.0)
        after = _stats(15, 3.0)
        delta = interval_delta(before, after)
        assert delta["step"]["calls"] == 15
        assert delta["step"]["wall_time_s"] == 3.0

    def test_scales_up_on_low_latency(self):
        policy = AutoscalePolicy(max_workers=4, scale_up_latency_s=0.1)
        assert policy(_stats(10, 0.1), current_workers=2) == 3

    def test_scales_down_on_high_latency(self):
        policy = AutoscalePolicy(scale_down_latency_s=0.2)
        assert policy(_stats(10, 10.0), current_workers=3) == 2

    def test_scales_down_on_errors(self):
        policy = AutoscalePolicy(
            max_error_rate=0.1, scale_up_latency_s=1.0, scale_down_latency_s=2.0
        )
        # Fast calls, but a third of them failed: back off, don't grow.
        assert policy(_stats(9, 0.01, errors=3), current_workers=4) == 3

    def test_no_decision_without_step_calls(self):
        policy = AutoscalePolicy()
        assert policy(_stats(0, 0.0, extra_calls=5), current_workers=2) is None

    def test_scales_down_when_every_step_fails(self):
        # CallStats records `calls` only for successes, so an interval where
        # every step errored has step calls == 0 — the error rule must still
        # fire (that is exactly the failing-service-tier case).
        policy = AutoscalePolicy(max_error_rate=0.1)
        assert policy(_stats(0, 0.0, errors=5, extra_calls=2), current_workers=3) == 2

    def test_clamped_to_bounds(self):
        policy = AutoscalePolicy(min_workers=2, max_workers=2)
        assert policy(_stats(10, 0.0001), current_workers=2) is None
        assert policy(_stats(10, 100.0), current_workers=2) is None

    def test_uses_interval_not_lifetime_stats(self):
        policy = AutoscalePolicy(scale_up_latency_s=0.05, scale_down_latency_s=0.2)
        # Lifetime mean is fast...
        assert policy(_stats(100, 1.0), current_workers=2) == 3
        # ...but the most recent interval is slow: 10 more calls, 10 more
        # seconds of wall time.
        assert policy(_stats(110, 11.0), current_workers=3) == 2

    def test_validation(self):
        with pytest.raises(ValueError, match="min_workers"):
            AutoscalePolicy(min_workers=5, max_workers=2)
        with pytest.raises(ValueError, match="scale_up_latency_s"):
            AutoscalePolicy(scale_up_latency_s=1.0, scale_down_latency_s=0.1)


class _ScriptedAgent:
    """A minimal act_batch/observe_batch agent for rollout-harness tests."""

    def __init__(self, num_actions):
        self.rng = random.Random(0)
        self.num_actions = num_actions
        self.flushes = 0

    def act_batch(self, observations, greedy=False):
        return [self.rng.randrange(self.num_actions) for _ in observations]

    def observe_batch(self, rewards, dones, observations=None):
        pass

    def end_episode_batch(self):
        self.flushes += 1


class TestRolloutAutoscaling:
    def _vec(self, n=2):
        env = _make_llvm_env()
        return VecCompilerEnv(
            env,
            n=n,
            backend="serial",
            worker_wrapper=lambda e: TimeLimit(e, max_episode_steps=3),
            auto_reset=True,
        )

    def test_rollouts_grow_the_pool(self):
        from repro.rl.trainer import run_vec_rollouts

        vec = self._vec(n=2)
        try:
            agent = _ScriptedAgent(vec.action_space.n)
            policy_calls = []

            def policy(stats, current_workers):
                policy_calls.append(current_workers)
                return 3 if current_workers == 2 else None

            rewards = run_vec_rollouts(
                vec,
                agent,
                episodes=8,
                benchmarks=[BENCHMARK],
                train=True,
                autoscale=policy,
                autoscale_interval=2,
            )
            assert len(rewards) >= 8
            assert vec.num_envs == 3
            assert policy_calls and policy_calls[0] == 2
            # The agent's slot bookkeeping was flushed before the resize.
            assert agent.flushes >= 2
        finally:
            vec.close()

    def test_rollouts_shrink_the_pool(self):
        from repro.rl.trainer import run_vec_rollouts

        vec = self._vec(n=3)
        try:
            agent = _ScriptedAgent(vec.action_space.n)
            rewards = run_vec_rollouts(
                vec,
                agent,
                episodes=9,
                benchmarks=[BENCHMARK],
                train=True,
                autoscale=lambda stats, n: 2 if n == 3 else None,
                autoscale_interval=3,
            )
            assert len(rewards) >= 9
            assert vec.num_envs == 2
        finally:
            vec.close()

    def test_autoscale_policy_end_to_end(self):
        """The shipped policy drives a real pool through connection_stats()."""
        from repro.rl.trainer import run_vec_rollouts

        vec = self._vec(n=2)
        try:
            agent = _ScriptedAgent(vec.action_space.n)
            policy = AutoscalePolicy(
                min_workers=1, max_workers=3,
                scale_up_latency_s=10.0, scale_down_latency_s=20.0,
            )  # Steps are far faster than 10s: every decision scales up.
            run_vec_rollouts(
                vec,
                agent,
                episodes=10,
                benchmarks=[BENCHMARK],
                train=True,
                autoscale=policy,
                autoscale_interval=2,
            )
            assert vec.num_envs == 3
        finally:
            vec.close()

    def test_invalid_interval_rejected(self):
        from repro.rl.trainer import run_vec_rollouts

        vec = self._vec(n=1)
        try:
            with pytest.raises(ValueError, match="autoscale_interval"):
                run_vec_rollouts(
                    vec,
                    _ScriptedAgent(vec.action_space.n),
                    episodes=1,
                    autoscale=lambda stats, n: None,
                    autoscale_interval=0,
                )
        finally:
            vec.close()
