"""Tests for the IR printer and parser, including round-trip fidelity."""

import pytest

from repro.llvm.datasets.generators import generate_module, llvm_stress_module
from repro.llvm.ir.parser import ParseError, parse_module
from repro.llvm.ir.printer import print_instruction, print_module
from repro.llvm.ir.verifier import verify_module


EXAMPLE_IR = """\
; ModuleID = 'example'
@g = global i32 7

declare i32 @printf(i32 %value)

define i32 @main() {
entry:
  %p = alloca i32
  store i32 5, ptr %p
  %v = load i32, ptr %p
  %c = icmp slt i32 %v, 10
  br i1 %c, label %then, label %else
then:
  %a = add i32 %v, 1
  br label %join
else:
  %b = mul i32 %v, 2
  br label %join
join:
  %m = phi i32 [ %a, %then ], [ %b, %else ]
  %g0 = load i32, ptr @g
  %sum = add i32 %m, %g0
  %unused = call i32 @printf(i32 %sum)
  ret i32 %sum
}
"""


class TestParser:
    def test_parse_example(self):
        module = parse_module(EXAMPLE_IR)
        assert module.name == "example"
        assert set(module.functions) == {"printf", "main"}
        assert "g" in module.globals
        assert module.function("printf").is_declaration
        assert module.instruction_count == 14
        assert verify_module(module) == []

    def test_parse_phi_and_branches(self):
        module = parse_module(EXAMPLE_IR)
        main = module.function("main")
        join = main.block_by_name("join")
        phi = join.phis()[0]
        incoming_blocks = {block.name for _, block in phi.phi_incoming()}
        assert incoming_blocks == {"then", "else"}

    def test_parse_call_operands(self):
        module = parse_module(EXAMPLE_IR)
        call = next(i for i in module.function("main").instructions() if i.opcode == "call")
        assert call.attrs["callee"] == "printf"
        assert len(call.operands) == 1

    def test_undefined_value_rejected(self):
        bad = "define i32 @f() {\nentry:\n  ret i32 %ghost\n}\n"
        with pytest.raises(ParseError):
            parse_module(bad)

    def test_branch_to_undefined_block_rejected(self):
        bad = "define i32 @f() {\nentry:\n  br label %missing\n}\n"
        with pytest.raises(ParseError):
            parse_module(bad)

    def test_unknown_line_rejected(self):
        with pytest.raises(ParseError):
            parse_module("this is not IR\n")

    def test_switch_round_trip(self):
        ir = (
            "define i32 @f(i32 %x) {\n"
            "entry:\n"
            "  switch i32 %x, label %d [ i32 0, label %a ] [ i32 1, label %b ]\n"
            "a:\n  ret i32 1\n"
            "b:\n  ret i32 2\n"
            "d:\n  ret i32 0\n"
            "}\n"
        )
        module = parse_module(ir)
        switch = module.function("f").entry.terminator
        assert switch.opcode == "switch"
        assert len(switch.successors()) == 3
        reparsed = parse_module(print_module(module))
        assert reparsed.function("f").entry.terminator.opcode == "switch"


class TestPrinter:
    def test_print_instruction_forms(self, small_module):
        lines = [print_instruction(i) for i in small_module.function("main").instructions()]
        assert any(line.startswith("%a = add i32") for line in lines)
        assert lines[-1].startswith("ret i32")

    def test_print_module_contains_globals_and_declarations(self):
        module = parse_module(EXAMPLE_IR)
        text = print_module(module)
        assert "@g = global i32 7" in text
        assert "declare i32 @printf" in text


class TestRoundTrip:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    def test_generated_module_round_trip(self, seed):
        module = generate_module(seed, size_scale=4)
        text = print_module(module)
        reparsed = parse_module(text)
        assert reparsed.instruction_count == module.instruction_count
        assert set(reparsed.functions) == set(module.functions)
        assert verify_module(reparsed) == []
        # A second round trip is a fixed point.
        assert print_module(reparsed) == text

    @pytest.mark.parametrize("seed", [10, 11])
    def test_llvm_stress_round_trip(self, seed):
        module = llvm_stress_module(seed)
        reparsed = parse_module(print_module(module))
        assert reparsed.instruction_count == module.instruction_count

    def test_round_trip_preserves_semantics(self):
        from repro.llvm.interpreter import run_module

        module = generate_module(21, size_scale=4)
        reparsed = parse_module(print_module(module))
        assert run_module(module, max_steps=500_000) == run_module(reparsed, max_steps=500_000)
