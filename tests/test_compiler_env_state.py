"""Tests for CompilerEnvState serialization."""

import io

import pytest

from repro.core.compiler_env_state import (
    CompilerEnvState,
    CompilerEnvStateReader,
    CompilerEnvStateWriter,
    read_states_from_file,
    write_states_to_file,
)


def _state(reward=1.5):
    return CompilerEnvState(
        benchmark="benchmark://cbench-v1/qsort",
        commandline="-mem2reg -dce",
        walltime=3.0,
        reward=reward,
    )


class TestCompilerEnvState:
    def test_equality_ignores_walltime(self):
        a = _state()
        b = CompilerEnvState(a.benchmark, a.commandline, walltime=99.0, reward=1.5)
        assert a == b

    def test_inequality_on_reward(self):
        assert _state(1.5) != _state(2.5)

    def test_equality_tolerance(self):
        assert _state(1.5) == _state(1.5 + 1e-7)

    def test_negative_walltime_rejected(self):
        with pytest.raises(ValueError):
            CompilerEnvState("b", "c", walltime=-1)

    def test_has_reward(self):
        assert _state().has_reward
        assert not CompilerEnvState("b", "c").has_reward

    def test_json_round_trip(self):
        state = _state()
        assert CompilerEnvState.from_json(state.json()) == state


class TestReaderWriter:
    def test_csv_round_trip(self):
        buffer = io.StringIO()
        writer = CompilerEnvStateWriter(buffer)
        states = [_state(1.0), _state(2.0)]
        for state in states:
            writer.write_state(state)
        buffer.seek(0)
        assert list(CompilerEnvStateReader(buffer)) == states

    def test_json_reading(self):
        buffer = io.StringIO(
            '[{"benchmark": "b", "commandline": "-dce", "walltime": 1.0, "reward": 0.5}]'
        )
        states = list(CompilerEnvStateReader(buffer))
        assert states[0].benchmark == "b"
        assert states[0].reward == 0.5

    def test_empty_file(self):
        assert list(CompilerEnvStateReader(io.StringIO(""))) == []

    def test_none_reward_round_trip(self):
        buffer = io.StringIO()
        CompilerEnvStateWriter(buffer).write_state(CompilerEnvState("b", "-dce"))
        buffer.seek(0)
        states = list(CompilerEnvStateReader(buffer))
        assert states[0].reward is None

    def test_file_helpers(self, tmp_path):
        path = str(tmp_path / "states.csv")
        write_states_to_file(path, [_state()])
        assert read_states_from_file(path) == [_state()]
