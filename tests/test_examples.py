"""Smoke tests: every example application runs end-to-end with tiny budgets."""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).parent.parent / "examples"

EXAMPLES = [
    ("quickstart.py", ["--steps", "30", "--benchmark", "cbench-v1/crc32"]),
    ("autotune_llvm_phase_ordering.py", ["--benchmark", "cbench-v1/crc32", "--budget", "200"]),
    ("parallel_random_search.py", ["--benchmark", "cbench-v1/crc32", "--workers", "2", "--steps", "120"]),
    ("remote_service.py", ["--benchmark", "cbench-v1/crc32", "--workers", "2", "--steps", "4"]),
    ("rl_phase_ordering.py", ["--episodes", "6", "--episode-length", "10"]),
    ("gcc_flag_tuning.py", ["--compilations", "60", "--programs", "2"]),
    ("loop_tool_sweep.py", ["--size", "65536"]),
    ("state_transition_dataset_demo.py", ["--episodes", "4", "--steps-per-episode", "4", "--epochs", "4"]),
]


@pytest.mark.parametrize("script,args", EXAMPLES, ids=[name for name, _ in EXAMPLES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script), *args],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "example produced no output"
