"""Unit tests for the simulated LLVM IR data structures."""

import pytest

from repro.llvm.ir import (
    I1,
    I32,
    I64,
    PTR,
    VOID,
    BasicBlock,
    Constant,
    Function,
    IRBuilder,
    Instruction,
    Module,
    Type,
)
from repro.llvm.ir.cfg import dominates, dominators, loop_depths, natural_loops, predecessors, reachable_blocks
from repro.llvm.ir.values import Argument, GlobalVariable, UndefValue
from repro.llvm.ir.verifier import VerificationError, verify_module


class TestTypes:
    def test_interning(self):
        assert Type("i32") is I32
        assert Type("i32") is Type("i32")

    def test_bits(self):
        assert I32.bits == 32
        assert I64.bits == 64
        assert I1.bits == 1
        assert PTR.bits == 64
        assert VOID.bits == 0

    def test_predicates(self):
        assert I32.is_integer and not I32.is_float
        assert Type("double").is_float
        assert PTR.is_pointer
        assert VOID.is_void

    def test_deepcopy_preserves_identity(self):
        import copy

        assert copy.deepcopy(I32) is I32


class TestValues:
    def test_constant_equality(self):
        assert Constant(I32, 5) == Constant(I32, 5)
        assert Constant(I32, 5) != Constant(I32, 6)
        assert Constant(I32, 5) != Constant(I64, 5)

    def test_constant_rendering(self):
        assert Constant(I32, 42).short() == "42"

    def test_argument(self):
        arg = Argument("x", I32)
        assert arg.short() == "%x"

    def test_global(self):
        g = GlobalVariable("counter", I32, initializer=3)
        assert g.short() == "@counter"
        assert g.type is PTR

    def test_undef(self):
        assert UndefValue(I32).short() == "undef"


class TestInstructions:
    def test_unknown_opcode_rejected(self):
        with pytest.raises(ValueError):
            Instruction("frobnicate")

    def test_classification(self):
        add = Instruction("add", [Constant(I32, 1), Constant(I32, 2)], type=I32, name="x")
        assert add.is_binary and add.has_result and not add.is_terminator
        ret = Instruction("ret", [], type=VOID)
        assert ret.is_terminator and not ret.has_result

    def test_side_effects(self):
        store = Instruction("store", [Constant(I32, 1), Constant(I32, 0)], type=VOID)
        assert store.has_side_effects()
        call = Instruction("call", [], type=I32, name="r", attrs={"callee": "f", "pure": True})
        assert not call.has_side_effects()
        impure = Instruction("call", [], type=I32, name="r", attrs={"callee": "f"})
        assert impure.has_side_effects()

    def test_branch_successors(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        cond = Constant(I1, 1)
        br = Instruction("br", [cond, a, b], type=VOID)
        assert br.successors() == [a, b]
        br.replace_successor(b, a)
        assert br.successors() == [a, a]

    def test_phi_incoming(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        phi = Instruction("phi", [Constant(I32, 1), a, Constant(I32, 2), b], type=I32, name="p")
        incoming = list(phi.phi_incoming())
        assert len(incoming) == 2
        phi.set_phi_incoming([(Constant(I32, 9), a)])
        assert len(list(phi.phi_incoming())) == 1

    def test_value_operands_excludes_blocks(self):
        a, b = BasicBlock("a"), BasicBlock("b")
        cond = Constant(I1, 1)
        br = Instruction("br", [cond, a, b], type=VOID)
        assert br.value_operands() == [cond]

    def test_clone(self):
        add = Instruction("add", [Constant(I32, 1), Constant(I32, 2)], type=I32, name="x")
        clone = add.clone()
        assert clone is not add
        assert clone.operands == add.operands
        assert clone.parent is None


class TestStructure:
    def test_block_append_and_terminator(self):
        block = BasicBlock("entry")
        assert block.terminator is None
        inst = Instruction("ret", [], type=VOID)
        block.append(inst)
        assert block.terminator is inst
        assert inst.parent is block

    def test_function_naming_helpers(self):
        function = Function("f", arg_types=[I32], arg_names=["x"])
        name1 = function.new_value_name()
        name2 = function.new_value_name()
        assert name1 != name2
        assert function.new_block_name() != function.new_block_name()

    def test_function_len_counts_instructions(self, small_module):
        assert len(small_module.function("main")) == 9

    def test_module_queries(self, small_module):
        assert small_module.instruction_count == 9
        assert small_module.function("main") is not None
        assert small_module.function("missing") is None
        assert len(small_module.defined_functions()) == 1

    def test_module_clone_is_deep(self, small_module):
        clone = small_module.clone()
        clone.function("main").blocks[0].instructions.pop()
        assert small_module.instruction_count == 9
        assert clone.instruction_count == 8

    def test_declaration(self):
        function = Function("printf", arg_types=[I32])
        assert function.is_declaration


class TestBuilder:
    def test_builder_produces_verified_ir(self, small_module):
        assert verify_module(small_module) == []

    def test_cond_br_and_phi(self):
        module = Module("m")
        function = Function("f", arg_types=[I32], arg_names=["x"])
        entry = function.add_block("entry")
        then_block = function.add_block("then")
        else_block = function.add_block("else")
        join = function.add_block("join")
        builder = IRBuilder(function, entry)
        cond = builder.icmp("slt", function.args[0], Constant(I32, 0))
        builder.cond_br(cond, then_block, else_block)
        builder.set_insert_point(then_block)
        a = builder.add(function.args[0], Constant(I32, 1))
        builder.br(join)
        builder.set_insert_point(else_block)
        b = builder.sub(function.args[0], Constant(I32, 1))
        builder.br(join)
        builder.set_insert_point(join)
        phi = builder.phi(I32, [(a, then_block), (b, else_block)])
        builder.ret(phi)
        module.add_function(function)
        assert verify_module(module) == []

    def test_invalid_binary_opcode(self):
        function = Function("f")
        function.add_block("entry")
        builder = IRBuilder(function)
        with pytest.raises(ValueError):
            builder.binary("load", Constant(I32, 1), Constant(I32, 2))


class TestCfgAnalyses:
    def _diamond(self):
        function = Function("f", arg_types=[I32], arg_names=["x"])
        entry = function.add_block("entry")
        left = function.add_block("left")
        right = function.add_block("right")
        join = function.add_block("join")
        builder = IRBuilder(function, entry)
        cond = builder.icmp("eq", function.args[0], Constant(I32, 0))
        builder.cond_br(cond, left, right)
        builder.set_insert_point(left)
        builder.br(join)
        builder.set_insert_point(right)
        builder.br(join)
        builder.set_insert_point(join)
        builder.ret(Constant(I32, 0))
        return function, entry, left, right, join

    def test_predecessors(self):
        function, entry, left, right, join = self._diamond()
        preds = predecessors(function)
        assert set(preds[join]) == {left, right}
        assert preds[entry] == []

    def test_reachability(self):
        function, *_ = self._diamond()
        dead = function.add_block("dead")
        IRBuilder(function, dead).ret(Constant(I32, 1))
        reachable = reachable_blocks(function)
        assert dead not in reachable
        assert len(reachable) == 4

    def test_dominators(self):
        function, entry, left, right, join = self._diamond()
        dom = dominators(function)
        assert dominates(dom, entry, join)
        assert not dominates(dom, left, join)
        assert dominates(dom, join, join)

    def test_natural_loop_detection(self):
        from repro.llvm.datasets.generators import generate_module

        # Counted over several generated modules so the check does not depend
        # on one seed's random region choices.
        total_loops = sum(
            len(natural_loops(f))
            for seed in range(5)
            for f in generate_module(seed, size_scale=6).defined_functions()
        )
        assert total_loops >= 1

    def test_loop_depths(self, generated_module):
        for function in generated_module.defined_functions():
            depths = loop_depths(function)
            for loop in natural_loops(function):
                assert depths[loop.header] >= 1

    def test_no_loops_in_diamond(self):
        function, *_ = self._diamond()
        assert natural_loops(function) == []


class TestVerifier:
    def test_detects_missing_terminator(self):
        module = Module("bad")
        function = Function("f")
        block = function.add_block("entry")
        block.append(Instruction("add", [Constant(I32, 1), Constant(I32, 2)], type=I32, name="x"))
        module.add_function(function)
        errors = verify_module(module, raise_on_error=False)
        assert any("no terminator" in error for error in errors)

    def test_detects_foreign_value_use(self):
        module = Module("bad")
        other = Function("other", arg_types=[I32], arg_names=["y"])
        function = Function("f")
        block = function.add_block("entry")
        block.append(Instruction("ret", [Instruction("add", [], type=I32, name="ghost")], type=VOID))
        module.add_function(function)
        del other
        errors = verify_module(module, raise_on_error=False)
        assert errors

    def test_raises_when_requested(self):
        module = Module("bad")
        function = Function("f")
        function.add_block("entry")
        module.add_function(function)
        with pytest.raises(VerificationError):
            verify_module(module)

    def test_detects_unknown_callee(self):
        module = Module("bad")
        function = Function("f")
        block = function.add_block("entry")
        block.append(Instruction("call", [], type=I32, name="r", attrs={"callee": "missing"}))
        block.append(Instruction("ret", [], type=VOID))
        module.add_function(function)
        errors = verify_module(module, raise_on_error=False)
        assert any("unknown function" in error for error in errors)
