"""Tests for leaderboard aggregation."""

import pytest

from repro.core.compiler_env_state import CompilerEnvState
from repro.core.leaderboard import Leaderboard, LeaderboardEntry


def _states(reward_a=1.1, reward_b=1.2):
    return [
        CompilerEnvState("benchmark://cbench-v1/a", "-dce", walltime=1.0, reward=reward_a),
        CompilerEnvState("benchmark://cbench-v1/b", "-gvn", walltime=2.0, reward=reward_b),
    ]


class TestLeaderboardEntry:
    def test_aggregates(self):
        entry = LeaderboardEntry("mine", _states(1.0, 4.0))
        assert entry.walltime == 3.0
        assert entry.geomean_reward == pytest.approx(2.0)
        assert entry.mean_reward == pytest.approx(2.5)


class TestLeaderboard:
    def test_submission_and_ranking(self):
        board = Leaderboard("llvm-ic-cbench")
        board.submit("slow-but-good", _states(1.3, 1.3))
        board.submit("fast-but-weak", _states(1.0, 1.0))
        ranking = board.ranking()
        assert [entry.name for entry in ranking] == ["slow-but-good", "fast-but-weak"]

    def test_missing_benchmark_rejected(self):
        board = Leaderboard("task", benchmarks=["benchmark://cbench-v1/a", "benchmark://cbench-v1/c"])
        with pytest.raises(ValueError):
            board.submit("incomplete", _states())

    def test_resubmission_replaces(self):
        board = Leaderboard("task")
        board.submit("me", _states(1.0, 1.0))
        board.submit("me", _states(2.0, 2.0))
        assert len(board) == 1
        assert board.entries["me"].geomean_reward == pytest.approx(2.0)

    def test_markdown_rendering(self):
        board = Leaderboard("task")
        board.submit("me", _states())
        text = board.to_markdown()
        assert "| Rank |" in text
        assert "| 1 | me |" in text

    def test_tie_broken_by_walltime(self):
        board = Leaderboard("task")
        slow = [
            CompilerEnvState("benchmark://x/a", "-dce", walltime=10.0, reward=1.0),
        ]
        fast = [
            CompilerEnvState("benchmark://x/a", "-dce", walltime=1.0, reward=1.0),
        ]
        board.submit("slow", slow)
        board.submit("fast", fast)
        assert board.ranking()[0].name == "fast"
