"""Tests for the autotuning techniques (Table IV / Table V machinery)."""

import pytest

import repro
from repro.autotuning import (
    GeneticAlgorithm,
    GreedySearch,
    HillClimbingSearch,
    LaMCTSSearch,
    NevergradEnsembleSearch,
    OpenTunerBaselineSearch,
    RandomConfigurationSearch,
    RandomSearch,
    SequenceGeneticAlgorithm,
    SequenceHillClimbing,
)
from repro.autotuning.base import Budget
from repro.gcc.compiler import SimulatedGcc
from repro.gcc.spec import GccSpec


@pytest.fixture()
def tuning_env():
    env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", reward_space="IrInstructionCount")
    yield env
    env.close()


EPISODE_TUNERS = [
    RandomSearch(seed=1, patience=10, max_episode_length=30),
    GreedySearch(seed=1, max_episode_length=5),
    LaMCTSSearch(seed=1, rollout_length=20),
    NevergradEnsembleSearch(seed=1, episode_length=20),
    OpenTunerBaselineSearch(seed=1, episode_length=20),
    SequenceHillClimbing(seed=1, episode_length=20),
    SequenceGeneticAlgorithm(seed=1, episode_length=20, population_size=4),
]


class TestBudget:
    def test_budget_immune_to_wall_clock_jumps(self, monkeypatch):
        """Regression: the search budget used time.time(), so an NTP step or
        manual clock change mid-search could terminate (or extend) it. The
        budget must run on the monotonic clock."""
        import time as time_module

        budget = Budget(max_seconds=3600)
        # A huge forward wall-clock jump must not exhaust the budget...
        monkeypatch.setattr(time_module, "time", lambda: time_module.monotonic() + 1e9)
        assert not budget.exhausted()
        assert budget.walltime < 60
        # ...while monotonic time genuinely elapsing still does.
        monkeypatch.setattr(
            time_module, "monotonic", lambda start=budget.start: start + 7200
        )
        assert budget.exhausted()
        assert budget.walltime == pytest.approx(7200)

    def test_step_budget(self):
        budget = Budget(max_steps=3)
        assert not budget.exhausted()
        budget.spend(3)
        assert budget.exhausted()


class TestEpisodeTuners:
    @pytest.mark.parametrize("tuner", EPISODE_TUNERS, ids=lambda t: t.name)
    def test_finds_positive_reward(self, tuning_env, tuner):
        result = tuner.tune(tuning_env, max_steps=600)
        assert result.best_reward > 0
        assert result.steps <= 700
        assert result.best_actions

    def test_greedy_stops_when_no_improvement(self, tuning_env):
        result = GreedySearch(max_episode_length=50).tune(tuning_env, max_steps=20_000)
        # Greedy terminates by itself well before the budget once no action
        # gives positive reward.
        assert result.steps < 20_000

    def test_best_actions_replay_to_best_reward(self, tuning_env):
        tuner = RandomSearch(seed=3, patience=10, max_episode_length=30)
        result = tuner.tune(tuning_env, max_steps=500)
        tuning_env.reset()
        if result.best_actions:
            tuning_env.multistep(result.best_actions)
        assert tuning_env.episode_reward == pytest.approx(result.best_reward, abs=1e-6)

    def test_wall_time_budget_respected(self, tuning_env):
        result = RandomSearch(seed=0).tune(tuning_env, max_seconds=0.5)
        assert result.walltime < 5.0

    def test_random_search_reproducible(self, tuning_env):
        a = RandomSearch(seed=7, patience=5, max_episode_length=15).tune(tuning_env, max_steps=200)
        b = RandomSearch(seed=7, patience=5, max_episode_length=15).tune(tuning_env, max_steps=200)
        assert a.best_reward == b.best_reward
        assert a.best_actions == b.best_actions


class _QuadraticObjective:
    """A synthetic minimization problem with a known optimum at [3, 3, ..., 3]."""

    def __init__(self):
        self.evaluations = 0

    def __call__(self, config):
        self.evaluations += 1
        return sum((v - 3) ** 2 for v in config) + 10.0


class TestConfigurationTuners:
    CARDINALITIES = [8] * 6

    @pytest.mark.parametrize(
        "tuner",
        [
            RandomConfigurationSearch(seed=0),
            HillClimbingSearch(seed=0),
            GeneticAlgorithm(seed=0, population_size=20),
        ],
        ids=lambda t: t.name,
    )
    def test_improves_over_default(self, tuner):
        objective = _QuadraticObjective()
        default_cost = objective([0] * 6)
        result = tuner.tune(objective, self.CARDINALITIES, max_evaluations=300)
        assert result.best_metric < default_cost
        assert result.steps <= 301

    def test_ga_finds_near_optimum(self):
        objective = _QuadraticObjective()
        result = GeneticAlgorithm(seed=1, population_size=30).tune(
            objective, self.CARDINALITIES, max_evaluations=900
        )
        assert result.best_metric <= 13.0  # Optimum is 10.

    def test_evaluation_budget_respected(self):
        objective = _QuadraticObjective()
        GeneticAlgorithm(seed=0).tune(objective, self.CARDINALITIES, max_evaluations=150)
        assert objective.evaluations <= 150

    def test_hill_climbing_on_gcc_objective(self):
        spec = GccSpec("11.2.0")
        gcc = SimulatedGcc(spec)
        cardinalities = [min(len(option), 50) for option in spec.options]

        def objective(config):
            return gcc.obj_size("chstone/adpcm", config)

        baseline = objective(spec.default_choices())
        result = HillClimbingSearch(seed=0).tune(
            objective, cardinalities, max_evaluations=120, initial=spec.default_choices()
        )
        assert result.best_metric <= baseline
