"""Tests for the LLVM benchmark generators and dataset suites."""

import itertools

import pytest

from repro.llvm.datasets.generators import generate_module, llvm_stress_module
from repro.llvm.datasets.suites import (
    CBENCH_PROGRAMS,
    CHSTONE_PROGRAMS,
    DATASET_SPECS,
    make_llvm_datasets,
)
from repro.llvm.ir.printer import print_module
from repro.llvm.ir.verifier import verify_module


class TestGenerators:
    def test_determinism(self):
        a = generate_module(123, size_scale=5)
        b = generate_module(123, size_scale=5)
        assert print_module(a) == print_module(b)

    def test_different_seeds_differ(self):
        assert print_module(generate_module(1)) != print_module(generate_module(2))

    def test_size_scale_controls_size(self):
        small = generate_module(9, size_scale=2)
        large = generate_module(9, size_scale=20)
        assert large.instruction_count > small.instruction_count * 2

    @pytest.mark.parametrize("seed", range(5))
    def test_generated_modules_verify(self, seed):
        assert verify_module(generate_module(seed), raise_on_error=False) == []

    def test_modules_contain_optimization_opportunities(self):
        from repro.llvm.passes.registry import OZ_PIPELINE, run_pipeline

        module = generate_module(42, size_scale=8)
        before = module.instruction_count
        run_pipeline(module, OZ_PIPELINE)
        # The generator plants enough redundancy that -Oz removes >25%.
        assert module.instruction_count < before * 0.75

    def test_llvm_stress_determinism_and_validity(self):
        a = llvm_stress_module(7)
        b = llvm_stress_module(7)
        assert print_module(a) == print_module(b)
        assert verify_module(a, raise_on_error=False) == []


class TestDatasetInventory:
    def test_table1_dataset_names_present(self):
        datasets = make_llvm_datasets()
        names = {d.name for d in datasets}
        expected = {
            "benchmark://anghabench-v1", "benchmark://blas-v0", "benchmark://cbench-v1",
            "benchmark://chstone-v0", "benchmark://clgen-v0", "benchmark://github-v0",
            "benchmark://linux-v0", "benchmark://mibench-v1", "benchmark://npb-v0",
            "benchmark://opencv-v0", "benchmark://poj104-v1", "benchmark://tensorflow-v0",
            "generator://csmith-v0", "generator://llvm-stress-v0",
        }
        assert expected <= names

    def test_table1_benchmark_counts(self):
        datasets = make_llvm_datasets()
        counts = {
            "benchmark://anghabench-v1": 1_041_333,
            "benchmark://blas-v0": 300,
            "benchmark://cbench-v1": 23,
            "benchmark://chstone-v0": 12,
            "benchmark://clgen-v0": 996,
            "benchmark://github-v0": 49_738,
            "benchmark://linux-v0": 13_894,
            "benchmark://mibench-v1": 40,
            "benchmark://npb-v0": 122,
            "benchmark://opencv-v0": 442,
            "benchmark://poj104-v1": 49_816,
            "benchmark://tensorflow-v0": 1_985,
        }
        for name, count in counts.items():
            assert datasets[name].size == count

    def test_total_excluding_generators_matches_table1(self):
        datasets = make_llvm_datasets()
        total = sum(d.size for d in datasets if d.protocol == "benchmark")
        # The CompilerGym column of Table I sums to 1,158,701 benchmarks (the
        # prose quotes 1,145,499, which excludes a couple of suites); this
        # reproduction matches the per-dataset counts exactly.
        assert total == 1_158_701

    def test_generators_are_unbounded(self):
        datasets = make_llvm_datasets()
        assert datasets["generator://csmith-v0"].size == 0
        assert datasets["generator://llvm-stress-v0"].size == 0

    def test_cbench_program_names(self):
        datasets = make_llvm_datasets()
        uris = list(datasets["benchmark://cbench-v1"].benchmark_uris())
        assert len(uris) == 23
        assert "benchmark://cbench-v1/qsort" in uris
        assert "benchmark://cbench-v1/ghostscript" in uris
        assert set(CBENCH_PROGRAMS) == {uri.rsplit("/", 1)[-1] for uri in uris}

    def test_chstone_program_names(self):
        assert len(CHSTONE_PROGRAMS) == 12

    def test_benchmark_generation_by_uri_is_deterministic(self):
        datasets = make_llvm_datasets()
        a = datasets.benchmark("benchmark://npb-v0/5")
        b = datasets.benchmark("benchmark://npb-v0/5")
        assert print_module(a.program) == print_module(b.program)

    def test_cbench_size_spread(self):
        # Figure 6's step-time spread comes from the wide range of cBench
        # program sizes; check the generated programs reproduce it.
        datasets = make_llvm_datasets()
        crc32 = datasets.benchmark("benchmark://cbench-v1/crc32").program.instruction_count
        ghostscript = datasets.benchmark("benchmark://cbench-v1/ghostscript").program.instruction_count
        assert ghostscript > crc32 * 10

    def test_out_of_range_benchmark_rejected(self):
        datasets = make_llvm_datasets()
        with pytest.raises(LookupError):
            datasets.benchmark("benchmark://cbench-v1/not-a-benchmark")
        with pytest.raises(LookupError):
            datasets.benchmark("benchmark://npb-v0/99999")

    def test_csmith_generator_benchmarks(self):
        datasets = make_llvm_datasets()
        benchmark = datasets.benchmark("generator://csmith-v0/17")
        assert benchmark.program.instruction_count > 0
        assert benchmark.is_validatable()

    def test_lazy_iteration_over_large_dataset(self):
        datasets = make_llvm_datasets()
        uris = list(itertools.islice(datasets["benchmark://anghabench-v1"].benchmark_uris(), 10))
        assert len(uris) == 10

    def test_cbench_benchmarks_are_validatable(self):
        datasets = make_llvm_datasets()
        assert datasets.benchmark("benchmark://cbench-v1/qsort").is_validatable()
        assert not datasets.benchmark("benchmark://npb-v0/0").is_validatable()
