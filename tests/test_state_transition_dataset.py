"""Tests for the state-transition database and logging wrapper."""

import random

import pytest

import repro
from repro.state_transition_dataset import (
    StateTransitionDatabase,
    StateTransitionLoggingWrapper,
    populate_state_transitions,
)
from repro.state_transition_dataset.postprocess import transition_statistics


class TestDatabase:
    def test_schema_tables_exist(self):
        with StateTransitionDatabase() as db:
            assert db.num_steps() == 0
            assert db.num_unique_states() == 0
            assert db.num_transitions() == 0

    def test_add_and_read_step(self):
        with StateTransitionDatabase() as db:
            db.add_step("benchmark://x/1", [1, 2], "abc", [0.5, 1.0])
            db.commit()
            steps = list(db.steps())
            assert steps == [("benchmark://x/1", [1, 2], "abc", False, [0.5, 1.0])]

    def test_step_primary_key_deduplicates(self):
        with StateTransitionDatabase() as db:
            db.add_step("benchmark://x/1", [1], "a", [1.0])
            db.add_step("benchmark://x/1", [1], "a2", [2.0])
            db.commit()
            assert db.num_steps() == 1
            assert list(db.steps())[0][2] == "a2"

    def test_observation_ir_compression_round_trip(self):
        with StateTransitionDatabase() as db:
            ir = "define i32 @main() {\nentry:\n  ret i32 0\n}\n" * 20
            db.add_observation("state0", ir=ir, instcounts=[1, 2], autophase=[3], instruction_count=2)
            db.commit()
            row = db.observation("state0")
            assert row["ir"] == ir
            assert row["instcounts"] == [1, 2]
            assert row["instruction_count"] == 2

    def test_missing_observation(self):
        with StateTransitionDatabase() as db:
            assert db.observation("nope") is None

    def test_transitions_round_trip(self):
        with StateTransitionDatabase() as db:
            db.add_transition("a", 3, "b", [1.5])
            db.commit()
            assert list(db.transitions()) == [("a", 3, "b", [1.5])]

    def test_file_backed_database(self, tmp_path):
        path = str(tmp_path / "stdb.sqlite")
        with StateTransitionDatabase(path) as db:
            db.add_step("benchmark://x/1", [], "root", [])
        with StateTransitionDatabase(path) as db:
            assert db.num_steps() == 1


class TestLoggingWrapperAndPostprocess:
    @pytest.fixture()
    def logged_env(self):
        db = StateTransitionDatabase()
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", reward_space="IrInstructionCount")
        wrapper = StateTransitionLoggingWrapper(env, db)
        yield wrapper, db
        wrapper.close()

    def test_logging_populates_steps_and_observations(self, logged_env):
        wrapper, db = logged_env
        wrapper.reset()
        for name in ("mem2reg", "instcombine", "gvn", "dce", "simplifycfg"):
            wrapper.step(wrapper.action_space[name])
        assert db.num_steps() == 6  # Initial state plus five steps.
        assert db.num_unique_states() >= 2

    def test_postprocess_builds_transitions(self, logged_env):
        wrapper, db = logged_env
        wrapper.reset()
        for action in (wrapper.action_space["mem2reg"], wrapper.action_space["dce"],
                       wrapper.action_space["gvn"]):
            wrapper.step(action)
        count = populate_state_transitions(db)
        assert count == 3
        stats = transition_statistics(db)
        assert stats["transitions"] == 3
        assert stats["unique_states"] >= 2

    def test_transitions_link_consecutive_states(self, logged_env):
        wrapper, db = logged_env
        wrapper.reset()
        first = wrapper.observation["IrSha1"]
        wrapper.step(wrapper.action_space["mem2reg"])
        second = wrapper.observation["IrSha1"]
        populate_state_transitions(db)
        transitions = list(db.transitions())
        assert (first, wrapper.action_space["mem2reg"], second) in [
            (a, action, b) for a, action, b, _ in transitions
        ]

    def test_duplicate_episodes_are_deduplicated(self, logged_env):
        wrapper, db = logged_env
        for _ in range(2):  # The same trajectory twice.
            wrapper.reset()
            wrapper.step(wrapper.action_space["mem2reg"])
        count = populate_state_transitions(db)
        assert count == 1
