"""Fork-equivalence property tests.

The vectorized environment pool is populated with ``fork()``, so the whole
subsystem rests on one property: *a forked environment replays to the same
observation/reward trajectory as its parent*. These tests assert that
property for the raw environment and for every wrapper in
``repro.core.wrappers`` (ForkOnStep, TimeLimit, the Commandline wrappers,
the Observation wrappers, and the DatasetsIterators wrappers).
"""

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

import repro
from repro.core.wrappers import (
    CommandlineWithTerminalAction,
    ConcatActionsHistogram,
    ConstrainedCommandline,
    CounterWrapper,
    CycleOverBenchmarks,
    ForkOnStep,
    IterateOverBenchmarks,
    RandomOrderBenchmarks,
    TimeLimit,
)

BENCHMARK = "cbench-v1/crc32"
CONSTRAINED_FLAGS = ["-mem2reg", "-dce", "-gvn", "-instcombine", "-simplifycfg"]


def _make_env():
    return repro.make(
        "llvm-v0",
        benchmark=BENCHMARK,
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )


def _replay(env, actions):
    """Step an action sequence, returning the (observation, reward, done) trace."""
    trace = []
    for action in actions:
        observation, reward, done, _ = env.step(action)
        trace.append((np.asarray(observation, dtype=np.float64), reward, done))
        if done:
            break
    return trace


def _assert_same_trace(parent_trace, fork_trace):
    assert len(parent_trace) == len(fork_trace)
    for (p_obs, p_rew, p_done), (f_obs, f_rew, f_done) in zip(parent_trace, fork_trace):
        np.testing.assert_array_equal(p_obs, f_obs)
        assert p_rew == f_rew
        assert p_done == f_done


def _assert_fork_replays_like_parent(env, fork, replay_actions):
    """The core property: identical replay traces, starting from identical state."""
    fork_trace = _replay(fork, replay_actions)
    parent_trace = _replay(env, replay_actions)
    _assert_same_trace(parent_trace, fork_trace)


class TestRawEnvForkEquivalence:
    @settings(
        max_examples=10,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(data=st.data())
    def test_fork_replays_parent_trajectory(self, data):
        prefix = data.draw(
            st.lists(st.integers(min_value=0, max_value=123), min_size=0, max_size=6)
        )
        replay = data.draw(
            st.lists(st.integers(min_value=0, max_value=123), min_size=1, max_size=6)
        )
        env = _make_env()
        try:
            env.reset()
            if prefix:
                env.multistep(prefix)
            fork = env.fork()
            try:
                assert fork.actions == env.actions
                assert fork.episode_reward == env.episode_reward
                _assert_fork_replays_like_parent(env, fork, replay)
            finally:
                fork.close()
        finally:
            env.close()

    def test_fork_is_independent_of_parent(self):
        env = _make_env()
        try:
            env.reset()
            fork = env.fork()
            try:
                env.multistep([0, 1, 2])
                # Stepping the parent must not move the fork.
                assert fork.actions == []
                before = fork.observation["IrSha1"]
                env.multistep([3])
                assert fork.observation["IrSha1"] == before
            finally:
                fork.close()
        finally:
            env.close()


class TestForkOnStep:
    def test_undo_restores_parent_trajectory(self):
        env = _make_env()
        wrapped = ForkOnStep(env)
        try:
            wrapped.reset()
            shas = [wrapped.observation["IrSha1"]]
            actions = [wrapped.action_space["mem2reg"], wrapped.action_space["gvn"]]
            for action in actions:
                wrapped.step(action)
                shas.append(wrapped.observation["IrSha1"])
            # Unwind the whole episode; each undo must restore the recorded state.
            for expected in reversed(shas[:-1]):
                wrapped.undo()
                assert wrapped.observation["IrSha1"] == expected
        finally:
            wrapped.close()

    def test_undo_on_empty_stack_fails_cleanly(self):
        env = _make_env()
        wrapped = ForkOnStep(env)
        try:
            wrapped.reset()
            with pytest.raises(IndexError, match="empty ForkOnStep stack"):
                wrapped.undo()
            # The failure must not corrupt the wrapper: stepping still works.
            _, _, done, _ = wrapped.step(0)
            assert not done
            assert len(wrapped.stack) == 1
        finally:
            wrapped.close()


class TestTimeLimitForkEquivalence:
    def test_fork_preserves_step_budget(self):
        env = TimeLimit(_make_env(), max_episode_steps=5)
        try:
            env.reset()
            env.step(0)
            env.step(1)
            fork = env.fork()
            try:
                assert fork._elapsed_steps == env._elapsed_steps
                _assert_fork_replays_like_parent(env, fork, [2, 3, 4, 5])
            finally:
                fork.close()
        finally:
            env.close()


class TestCommandlineForkEquivalence:
    def test_constrained_commandline_fork(self):
        env = ConstrainedCommandline(_make_env(), flags=CONSTRAINED_FLAGS)
        try:
            env.reset()
            env.step(0)
            fork = env.fork()
            try:
                assert fork.action_space.n == len(CONSTRAINED_FLAGS)
                _assert_fork_replays_like_parent(env, fork, [1, 2, 3, 0])
            finally:
                fork.close()
        finally:
            env.close()

    def test_terminal_action_fork(self):
        env = CommandlineWithTerminalAction(_make_env())
        terminal = env.action_space.n - 1
        try:
            env.reset()
            env.step(0)
            fork = env.fork()
            try:
                assert fork.action_space.n == env.action_space.n
                _assert_fork_replays_like_parent(env, fork, [1, terminal])
            finally:
                fork.close()
        finally:
            env.close()


class TestObservationForkEquivalence:
    def test_concat_actions_histogram_fork(self):
        env = ConcatActionsHistogram(_make_env(), norm_to_episode_len=10)
        try:
            env.reset()
            env.step(3)
            env.step(3)
            fork = env.fork()
            try:
                # The histogram of past actions must carry over to the fork …
                np.testing.assert_array_equal(fork._histogram, env._histogram)
                # … and diverge independently afterwards.
                _assert_fork_replays_like_parent(env, fork, [3, 5, 7])
            finally:
                fork.close()
        finally:
            env.close()

    def test_counter_wrapper_fork(self):
        env = CounterWrapper(_make_env())
        try:
            env.reset()
            env.step(0)
            fork = env.fork()
            try:
                assert fork.counters == env.counters
                fork.step(1)
                assert fork.counters["step"] == env.counters["step"] + 1
            finally:
                fork.close()
        finally:
            env.close()


class TestDatasetsIteratorsForkEquivalence:
    def test_cycle_over_benchmarks_fork_shares_iterator(self):
        env = CycleOverBenchmarks(
            _make_env(),
            benchmarks=[f"benchmark://{BENCHMARK}", "benchmark://cbench-v1/sha"],
            fork_shares_iterator=True,
        )
        try:
            env.reset()
            env.step(0)
            fork = env.fork()
            try:
                _assert_fork_replays_like_parent(env, fork, [1, 2])
                # The benchmark iterator is shared: successive resets on the
                # parent and the fork interleave through the cycle.
                uri_a = str(env.reset() is not None and env.benchmark.uri)
                uri_b = str(fork.reset() is not None and fork.benchmark.uri)
                assert uri_a != uri_b
            finally:
                fork.close()
        finally:
            env.close()

    def test_iterate_over_benchmarks_requires_opt_in(self):
        env = IterateOverBenchmarks(_make_env(), benchmarks=[f"benchmark://{BENCHMARK}"])
        try:
            env.reset()
            with pytest.raises(TypeError, match="fork_shares_iterator"):
                env.fork()
        finally:
            env.close()

    def test_random_order_benchmarks_fork(self):
        env = RandomOrderBenchmarks(
            _make_env(),
            benchmarks=[f"benchmark://{BENCHMARK}"],
            rng=np.random.default_rng(0),
        )
        try:
            env.reset()
            env.step(0)
            fork = env.fork()
            try:
                assert fork.benchmark_list == env.benchmark_list
                # Generators are not thread-safe, so the fork must not share
                # the parent's rng instance (workers may reset concurrently).
                assert fork.rng is not env.rng
                _assert_fork_replays_like_parent(env, fork, [1, 2])
            finally:
                fork.close()
        finally:
            env.close()


class TestCloseIdempotence:
    """Regression tests: close()/__del__ are idempotent and exception-safe."""

    def test_double_close(self):
        env = _make_env()
        env.reset()
        env.close()
        env.close()

    def test_del_after_close(self):
        env = _make_env()
        env.reset()
        env.close()
        env.__del__()

    def test_del_on_unclosed_env(self):
        env = _make_env()
        env.reset()
        env.__del__()

    def test_close_unreset_env(self):
        env = _make_env()
        env.close()
        env.close()

    def test_close_forked_worker_after_parent(self):
        """Any close order between a parent and its forks is safe."""
        env = _make_env()
        env.reset()
        fork = env.fork()
        env.close()
        fork.close()
        fork.close()
        env.close()

    def test_close_on_partially_constructed_env(self):
        env = _make_env().__class__.__new__(_make_env().__class__)
        # No attributes at all: close() must still be a no-op.
        env.close()

    def test_step_after_close_raises_clear_error(self):
        from repro.errors import SessionNotFound

        env = _make_env()
        env.reset()
        env.close()
        with pytest.raises(SessionNotFound, match="closed environment"):
            env.step(0)


class TestMultistepEdgeCases:
    """Regression tests for multistep() corner cases."""

    def test_empty_action_list(self):
        env = _make_env()
        try:
            env.reset()
            observation, reward, done, info = env.multistep([])
            assert observation.shape == (56,)
            assert reward == 0.0
            assert not done
            assert env.actions == []
        finally:
            env.close()

    def test_mixed_explicit_observation_and_reward_spaces(self):
        env = _make_env()
        try:
            env.reset()
            observation, reward, done, _ = env.multistep(
                [0, 1],
                observation_spaces=["IrInstructionCount", "Autophase"],
                reward_spaces=["IrInstructionCount", "IrInstructionCountOz"],
            )
            assert isinstance(observation, list) and len(observation) == 2
            assert int(observation[0]) > 0
            assert np.asarray(observation[1]).shape == (56,)
            assert isinstance(reward, list) and len(reward) == 2
        finally:
            env.close()

    def test_explicit_observation_spaces_only(self):
        env = _make_env()
        try:
            env.reset()
            observation, reward, done, _ = env.multistep(
                [0], observation_spaces=["IrSha1"]
            )
            assert isinstance(observation, list) and len(observation) == 1
            # The default reward space still applies when only observations
            # are explicit.
            assert isinstance(reward, float)
        finally:
            env.close()

    def test_explicit_reward_spaces_only(self):
        env = _make_env()
        try:
            env.reset()
            observation, reward, done, _ = env.multistep(
                [0], reward_spaces=["IrInstructionCount"]
            )
            assert isinstance(reward, list) and len(reward) == 1
            assert np.asarray(observation).shape == (56,)
        finally:
            env.close()
