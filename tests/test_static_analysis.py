"""Tests for the static-analysis layer: dominators, dataflow, the semantic
verifier, the pass-validation harness, and the verify_ir env wiring."""

import numpy as np
import pytest

import repro
from repro.core.service.gateway import ServiceGateway
from repro.core.service.runtime.server import make_env_server
from repro.llvm.analysis import (
    DominatorTree,
    dominance_frontiers,
    dom_tree_depths,
    def_use_chains,
    liveness,
    liveness_features,
    max_domtree_depth,
    reaching_definitions,
    reachingdefs_features,
    use_def_chains,
)
from repro.llvm.analysis.summaries import LIVENESS_DIMS, REACHINGDEFS_DIMS
from repro.llvm.datasets.generators import generate_module
from repro.llvm.ir.function import Function
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.types import I32
from repro.llvm.ir.verifier import verify_module
from repro.llvm.passes.registry import PASS_REGISTRY, run_pass
from repro.llvm.passes.validate import (
    MISCOMPILE_MUTATIONS,
    lint_module,
    self_test_module,
    validate_pass,
    verifier_self_test,
)

DIAMOND = """
define i32 @main(i32 %a, i32 %b) {
entry:
  %cmp = icmp slt i32 %a, %b
  br i1 %cmp, label %then, label %else
then:
  %x = add i32 %a, 1
  br label %join
else:
  %y = mul i32 %b, 2
  br label %join
join:
  %p = phi i32 [ %x, %then ], [ %y, %else ]
  %z = add i32 %p, %a
  ret i32 %z
}
"""

# A loop with two back-edges into one header, plus an unreachable block that
# is itself a CFG predecessor of the header.
MULTI_BACKEDGE = """
define i32 @main(i32 %n) {
entry:
  br label %header
header:
  %i = phi i32 [ 0, %entry ], [ %i1, %latch1 ], [ %i2, %latch2 ], [ %d, %dead ]
  %c = icmp slt i32 %i, %n
  br i1 %c, label %body, label %exit
body:
  %odd = and i32 %i, 1
  %isodd = icmp eq i32 %odd, 1
  br i1 %isodd, label %latch1, label %latch2
latch1:
  %i1 = add i32 %i, 1
  br label %header
latch2:
  %i2 = add i32 %i, 2
  br label %header
dead:
  %d = add i32 %i, 99
  br label %header
exit:
  ret i32 %i
}
"""


def _blocks(function):
    return {block.name: block for block in function.blocks}


class TestDominatorTree:
    def test_diamond_idoms_and_depths(self):
        f = parse_module(DIAMOND).function("main")
        tree = DominatorTree(f)
        b = _blocks(f)
        assert tree.idom[b["entry"]] is None
        assert tree.idom[b["then"]] is b["entry"]
        assert tree.idom[b["else"]] is b["entry"]
        assert tree.idom[b["join"]] is b["entry"]
        assert tree.depth[b["entry"]] == 0
        assert tree.depth[b["join"]] == 1
        assert tree.dominates(b["entry"], b["join"])
        assert not tree.dominates(b["then"], b["join"])
        assert tree.dominates(b["join"], b["join"])
        assert not tree.strictly_dominates(b["join"], b["join"])

    def test_diamond_frontiers(self):
        f = parse_module(DIAMOND).function("main")
        frontiers = dominance_frontiers(f)
        b = _blocks(f)
        assert frontiers[b["then"]] == {b["join"]}
        assert frontiers[b["else"]] == {b["join"]}
        assert frontiers[b["entry"]] == set()

    def test_multi_backedge_loop(self):
        f = parse_module(MULTI_BACKEDGE).function("main")
        tree = DominatorTree(f)
        b = _blocks(f)
        assert tree.idom[b["header"]] is b["entry"]
        assert tree.idom[b["latch1"]] is b["body"]
        assert tree.idom[b["latch2"]] is b["body"]
        # The header dominates both latches through the body.
        assert tree.dominates(b["header"], b["latch1"])
        assert tree.dominates(b["header"], b["latch2"])
        # Header is in its own latches' frontier (it's a loop header).
        assert b["header"] in tree.frontiers()[b["latch1"]]

    def test_unreachable_blocks_excluded(self):
        f = parse_module(MULTI_BACKEDGE).function("main")
        tree = DominatorTree(f)
        b = _blocks(f)
        assert [x.name for x in tree.unreachable] == ["dead"]
        assert b["dead"] not in tree.idom
        assert not tree.dominates(b["entry"], b["dead"])
        assert not tree.dominates(b["dead"], b["header"])

    def test_single_block_function(self):
        f = parse_module("define i32 @main() {\nentry:\n  ret i32 0\n}").function("main")
        tree = DominatorTree(f)
        assert tree.root is f.entry
        assert tree.depth[f.entry] == 0
        assert tree.frontiers() == {f.entry: set()}
        assert dom_tree_depths(f) == {f.entry: 0}

    def test_declaration(self):
        tree = DominatorTree(Function("ext", return_type=I32))
        assert tree.root is None
        assert tree.idom == {}
        assert tree.unreachable == []

    def test_instruction_dominance_within_block(self):
        f = parse_module(DIAMOND).function("main")
        tree = DominatorTree(f)
        b = _blocks(f)
        phi, z = b["join"].instructions[0], b["join"].instructions[1]
        assert tree.instruction_dominates(phi, z)
        assert not tree.instruction_dominates(z, phi)
        x = b["then"].instructions[0]
        assert tree.value_reaches_end_of_block(x, b["then"])
        assert not tree.value_reaches_end_of_block(x, b["else"])


class TestDataflow:
    def test_liveness_edge_sensitive_phi_uses(self):
        f = parse_module(DIAMOND).function("main")
        b = _blocks(f)
        result = liveness(f)
        x = b["then"].instructions[0]
        y = b["else"].instructions[0]
        # %x is live out of then (used by the phi along then->join) but never
        # live out of else, and vice versa.
        assert x in result.out_of(b["then"])
        assert x not in result.out_of(b["else"])
        assert y in result.out_of(b["else"])
        assert y not in result.out_of(b["then"])
        # Phi results are defs: %p is not live into join.
        phi = b["join"].instructions[0]
        assert phi not in result.in_of(b["join"])

    def test_liveness_entry_contains_only_args(self):
        for seed in range(3):
            module = generate_module(seed=seed, size_scale=4)
            for f in module.functions.values():
                if f.is_declaration:
                    continue
                live_in = liveness(f).in_of(f.entry)
                assert live_in <= frozenset(f.args)

    def test_liveness_loop_carried_value(self):
        f = parse_module(MULTI_BACKEDGE).function("main")
        b = _blocks(f)
        result = liveness(f)
        phi = b["header"].instructions[0]
        i1 = b["latch1"].instructions[0]
        # The loop counter is live through the body...
        assert phi in result.in_of(b["body"])
        # ...but not across the back-edge: the header phi re-defines it, so
        # only the increment is live out of the latch (via the phi edge use).
        assert phi not in result.out_of(b["latch1"])
        assert i1 in result.out_of(b["latch1"])

    def test_reaching_definitions(self):
        f = parse_module(DIAMOND).function("main")
        b = _blocks(f)
        result = reaching_definitions(f)
        assert result.in_of(f.entry) == frozenset(f.args)
        x = b["then"].instructions[0]
        y = b["else"].instructions[0]
        assert x in result.in_of(b["join"]) and y in result.in_of(b["join"])
        assert x not in result.in_of(b["else"])

    def test_use_def_and_def_use_chains(self):
        f = parse_module(DIAMOND).function("main")
        b = _blocks(f)
        ud = use_def_chains(f)
        du = def_use_chains(f)
        phi, z = b["join"].instructions[0], b["join"].instructions[1]
        assert ud[(z, 0)] is phi
        assert (z, 0) in du[phi]
        # Block operands of the phi are not value uses.
        assert (phi, 1) not in ud and (phi, 3) not in ud

    def test_declaration_has_empty_solution(self):
        f = Function("ext", return_type=I32)
        assert liveness(f).in_of(f.entry) == frozenset()
        assert reaching_definitions(f).out_of(f.entry) == frozenset()
        assert use_def_chains(f) == {}


class TestSemanticVerifier:
    def test_clean_modules_verify(self):
        assert verify_module(self_test_module(), raise_on_error=False) == []
        assert verify_module(parse_module(MULTI_BACKEDGE), raise_on_error=False) == []
        for seed in range(3):
            assert verify_module(generate_module(seed=seed, size_scale=4), raise_on_error=False) == []

    @pytest.mark.parametrize("mutation", sorted(MISCOMPILE_MUTATIONS))
    def test_seeded_miscompiles_rejected(self, mutation):
        module = self_test_module()
        MISCOMPILE_MUTATIONS[mutation](module)
        assert verify_module(module, raise_on_error=False), (
            f"seeded mutation {mutation!r} was not rejected"
        )

    def test_self_test_passes(self):
        assert verifier_self_test() == []

    def test_structural_only_mode_skips_semantic_checks(self):
        module = self_test_module()
        MISCOMPILE_MUTATIONS["type-mismatched-operand"](module)
        assert verify_module(module, raise_on_error=False)
        assert verify_module(module, raise_on_error=False, semantic=False) == []

    def test_dominance_ignores_unreachable_uses(self):
        # %d in the unreachable block uses the header phi: fine, dominance is
        # vacuous in unreachable code.
        assert verify_module(parse_module(MULTI_BACKEDGE), raise_on_error=False) == []

    def test_branch_condition_type_checked(self):
        module = parse_module(DIAMOND)
        f = module.function("main")
        entry = _blocks(f)["entry"]
        entry.terminator.operands[0] = f.args[0]  # i32 condition
        errors = verify_module(module, raise_on_error=False)
        assert any("branch condition" in e for e in errors)

    def test_return_type_checked(self):
        module = parse_module(DIAMOND)
        f = module.function("main")
        join = _blocks(f)["join"]
        join.terminator.operands.clear()
        errors = verify_module(module, raise_on_error=False)
        assert any("returns no value" in e for e in errors)

    def test_call_arity_checked(self):
        module = parse_module(
            "define i32 @f(i32 %x) {\nentry:\n  ret i32 %x\n}\n"
            "define i32 @main() {\nentry:\n  %r = call i32 @f(i32 1, i32 2)\n  ret i32 %r\n}"
        )
        errors = verify_module(module, raise_on_error=False)
        assert any("passes 2 argument(s), expected 1" in e for e in errors)


class TestValidationHarness:
    def test_validate_pass_clean(self):
        assert validate_pass(self_test_module(), "mem2reg") == []

    def test_validate_pass_catches_corruption(self, monkeypatch):
        def evil(module):
            MISCOMPILE_MUTATIONS["clobbered-phi-edge"](module)
            return True

        monkeypatch.setitem(PASS_REGISTRY, "instnamer", evil)
        failures = validate_pass(self_test_module(), "instnamer")
        assert failures and failures[0].kind == "verifier"

    def test_validate_pass_catches_behavior_change(self, monkeypatch):
        from repro.llvm.interpreter import run_module

        def evil(module):
            # Structurally valid but wrong: flip the add to a sub.
            for f in module.functions.values():
                for inst in f.instructions():
                    if inst.opcode == "add":
                        inst.opcode = "sub"
                        return True
            return False

        monkeypatch.setitem(PASS_REGISTRY, "instnamer", evil)
        module = parse_module(
            "define i32 @main() {\nentry:\n  %x = add i32 2, 3\n  ret i32 %x\n}"
        )
        reference = run_module(module.clone())
        failures = validate_pass(module, "instnamer", reference=reference)
        assert failures and failures[0].kind == "differential"

    def test_lint_module_all_passes(self):
        assert lint_module(self_test_module(), "self-test") == []

    def test_lint_module_reports_invalid_input(self):
        module = self_test_module()
        MISCOMPILE_MUTATIONS["duplicate-name"](module)
        failures = lint_module(module, "bad")
        assert len(failures) == 1 and failures[0].pass_name == "<input>"


class TestVerifyIrEnvWiring:
    def _evil(self, module):
        for f in module.functions.values():
            if f.blocks:
                insts = [i for b in f.blocks for i in b.instructions if i.has_result]
                if len(insts) >= 2:
                    insts[1].name = insts[0].name
                    return True
        return False

    def test_corrupting_pass_fails_step(self, monkeypatch):
        monkeypatch.setitem(PASS_REGISTRY, "instnamer", self._evil)
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", verify_ir=True)
        try:
            env.reset()
            action = env.action_space.names.index("instnamer")
            _, _, done, info = env.step(action)
            assert done
            assert "produced invalid IR" in info["error_details"]
            # The failure ends the episode, not the service: reset and go on.
            env.reset()
            _, _, done, _ = env.step(env.action_space.names.index("mem2reg"))
            assert not done
        finally:
            env.close()

    def test_verification_off_by_default(self, monkeypatch):
        monkeypatch.setitem(PASS_REGISTRY, "instnamer", self._evil)
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort")
        try:
            assert env.verify_ir is False
            env.reset()
            _, _, done, info = env.step(env.action_space.names.index("instnamer"))
            assert not done
        finally:
            env.close()

    def test_env_var_enables_verification(self, monkeypatch):
        monkeypatch.setenv("REPRO_VERIFY_IR", "1")
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort")
        try:
            assert env.verify_ir is True
            env.reset()
            value = env.service.handle_session_parameter(
                env._session_id, "llvm.get_verify_ir", ""
            )
            assert value == "1"
        finally:
            env.close()

    def test_fork_inherits_verification(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", verify_ir=True)
        fork = None
        try:
            env.reset()
            fork = env.fork()
            value = fork.service.handle_session_parameter(
                fork._session_id, "llvm.get_verify_ir", ""
            )
            assert value == "1"
        finally:
            if fork is not None:
                fork.close()
            env.close()

    def test_clean_episode_verifies(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", verify_ir=True)
        try:
            env.reset()
            for name in ("mem2reg", "instcombine", "simplifycfg", "dce"):
                _, _, done, info = env.step(env.action_space.names.index(name))
                assert not done, info
        finally:
            env.close()


class TestAnalysisObservationSpaces:
    SPACES = ["Liveness", "DomTreeDepth", "ReachingDefs"]

    def test_in_process_values(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort")
        try:
            env.reset()
            live = env.observation["Liveness"]
            assert live.shape == (LIVENESS_DIMS,) and live.dtype == np.int64
            assert live[0] > 0  # TotalBlocks
            depth = env.observation["DomTreeDepth"]
            assert depth >= 1
            reach = env.observation["ReachingDefs"]
            assert reach.shape == (REACHINGDEFS_DIMS,) and reach[0] == live[0]
        finally:
            env.close()

    def test_features_track_module_state(self):
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort")
        try:
            before = env.reset(observation_space="Liveness")
            env.step(env.action_space.names.index("mem2reg"))
            after = env.observation["Liveness"]
            assert not np.array_equal(before, after)
        finally:
            env.close()

    def test_summaries_deterministic(self):
        module = generate_module(seed=3, size_scale=4)
        assert np.array_equal(liveness_features(module), liveness_features(module))
        assert np.array_equal(reachingdefs_features(module), reachingdefs_features(module))
        assert max_domtree_depth(module) == max_domtree_depth(module)

    def _observe(self, url=None):
        env = repro.make("llvm-v0", benchmark="cbench-v1/qsort", service_url=url)
        try:
            env.reset()
            for action in (0, 11, 3):
                env.step(action)
            return {space: env.observation[space] for space in self.SPACES}
        finally:
            env.close()

    def test_identical_across_transports(self):
        """Acceptance: identical values in-process, over a daemon, and over a
        2-daemon gateway."""
        local = self._observe()
        daemon = make_env_server("llvm-v0").start()
        try:
            over_daemon = self._observe(daemon.url)
        finally:
            daemon.shutdown()
        gateway = ServiceGateway(env_id="llvm-v0", daemons=2).start()
        try:
            over_gateway = self._observe(gateway.url)
        finally:
            gateway.shutdown()
        for space in self.SPACES:
            assert np.array_equal(local[space], over_daemon[space]), space
            assert np.array_equal(local[space], over_gateway[space]), space


class TestLintCli:
    def test_lint_subcommand(self, capsys):
        from repro.cli.main import main

        exit_code = main(
            [
                "lint",
                "--dataset", "benchmark://cbench-v1",
                "--benchmarks-per-dataset", "1",
                "--passes", "mem2reg", "instcombine", "simplifycfg",
                "--quiet",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "verifier self-test: ok" in captured.out
        assert "0 failure(s)" in captured.out

    def test_lint_fails_on_bad_pass(self, capsys, monkeypatch):
        from repro.cli.main import main

        def evil(module):
            for f in module.functions.values():
                insts = [i for b in f.blocks for i in b.instructions if i.has_result]
                if len(insts) >= 2:
                    insts[1].name = insts[0].name
                    return True
            return False

        monkeypatch.setitem(PASS_REGISTRY, "instnamer", evil)
        exit_code = main(
            [
                "lint",
                "--dataset", "benchmark://cbench-v1",
                "--benchmarks-per-dataset", "1",
                "--passes", "instnamer",
                "--quiet",
            ]
        )
        assert exit_code == 1
        assert "FAIL" in capsys.readouterr().out
