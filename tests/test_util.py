"""Tests for the shared utility helpers."""

import time

import pytest

from repro.util.gaussian import gaussian_filter1d
from repro.util.statistics import arithmetic_mean, geometric_mean, percentile, stdev
from repro.util.timer import Timer, humanize_duration
from repro.util.truncate import truncate, truncate_lines


class TestTimer:
    def test_context_manager_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert 0.005 < timer.time < 1.0

    def test_label_in_str(self):
        timer = Timer(label="compile")
        with timer:
            pass
        assert str(timer).startswith("compile:")

    def test_humanize_duration_units(self):
        assert humanize_duration(2e-9).endswith("ns")
        assert humanize_duration(3e-6).endswith("us")
        assert humanize_duration(0.005).endswith("ms")
        assert humanize_duration(2.5) == "2.500s"
        assert humanize_duration(65) == "1m 5.0s"
        assert humanize_duration(3_661).startswith("1h 1m")

    def test_negative_duration_rejected(self):
        with pytest.raises(ValueError):
            humanize_duration(-1)


class TestTruncate:
    def test_no_truncation_needed(self):
        assert truncate("short", max_line_len=60) == "short"

    def test_long_line_truncated_with_ellipsis(self):
        out = truncate("x" * 100, max_line_len=10)
        assert len(out) == 10
        assert out.endswith("...")

    def test_multi_line_truncation(self):
        out = truncate("a\nb\nc", max_line_len=60, max_lines=2)
        assert out.splitlines()[0] == "a"
        assert out.endswith("...")

    def test_tail_mode_keeps_end(self):
        out = truncate("abcdefghij", max_line_len=6, tail=True)
        assert out == "...hij"

    def test_truncate_lines(self):
        out = truncate_lines([f"line{i}" for i in range(10)], max_lines=3)
        assert out.count("\n") == 2

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            truncate("x", max_line_len=2)
        with pytest.raises(ValueError):
            truncate("x", max_lines=0)


class TestStatistics:
    def test_arithmetic_mean(self):
        assert arithmetic_mean([1, 2, 3]) == 2
        assert arithmetic_mean([]) == 0

    def test_geometric_mean(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([2, 2, 2]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0
        assert geometric_mean([1.0, 0.0]) == 0  # Non-positive values -> undefined -> 0.

    def test_stdev(self):
        assert stdev([5]) == 0
        assert stdev([2, 4]) == pytest.approx(1.0)

    def test_percentile_interpolation(self):
        values = [1, 2, 3, 4]
        assert percentile(values, 0) == 1
        assert percentile(values, 100) == 4
        assert percentile(values, 50) == pytest.approx(2.5)
        with pytest.raises(ValueError):
            percentile(values, 150)


class TestGaussianFilter:
    def test_preserves_constant_signal(self):
        assert gaussian_filter1d([3.0] * 10, sigma=2.0) == pytest.approx([3.0] * 10)

    def test_smooths_spike(self):
        signal = [0.0] * 5 + [10.0] + [0.0] * 5
        smoothed = gaussian_filter1d(signal, sigma=1.5)
        assert max(smoothed) < 10.0
        assert sum(smoothed) == pytest.approx(sum(signal), rel=0.05)

    def test_zero_sigma_is_identity(self):
        signal = [1.0, 5.0, 2.0]
        assert gaussian_filter1d(signal, sigma=0) == signal
