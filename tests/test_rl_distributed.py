"""Tests for distributed actor/learner training (``repro.rl.distributed``)."""

import numpy as np
import pytest

import repro
from repro.rl import ApexDQNAgent, DistributedTrainer, ImpalaAgent
from repro.rl.distributed import (
    ActorSpec,
    _build_agent,
    checkpoint_path,
    load_learner_checkpoint,
    train_agent_distributed,
)
from repro.rl.policies import LinearPolicy, LinearValueFunction
from repro.rl.trainer import (
    AUTOPHASE_ACTION_SUBSET,
    make_vec_rl_environment,
    observation_dim,
    train_agent_vec,
)

NUM_ACTIONS = len(AUTOPHASE_ACTION_SUBSET)
OBS_DIM = observation_dim("Autophase", True, NUM_ACTIONS)
BENCHMARKS = ["benchmark://cbench-v1/crc32", "benchmark://cbench-v1/qsort"]
EPISODE_LENGTH = 5


def _single_process_reference(agent, episodes):
    env = repro.make(
        "llvm-v0", benchmark=BENCHMARKS[0], reward_space="IrInstructionCountNorm"
    )
    vec = make_vec_rl_environment(
        env, n=2, backend="serial", episode_length=EPISODE_LENGTH, auto_reset=True
    )
    try:
        return train_agent_vec(agent, vec, BENCHMARKS, episodes=episodes)
    finally:
        vec.close()


def _distributed_trainer(agent_name, agent_kwargs, num_actors, **kwargs):
    kwargs.setdefault(
        "make_kwargs",
        {"benchmark": BENCHMARKS[0], "reward_space": "IrInstructionCountNorm"},
    )
    return DistributedTrainer(
        agent=agent_name,
        agent_kwargs=agent_kwargs,
        env_id="llvm-v0",
        num_actors=num_actors,
        episode_length=EPISODE_LENGTH,
        timeout=120.0,
        **kwargs,
    )


class TestWeightTransfer:
    @pytest.mark.parametrize("model_type", [LinearPolicy, LinearValueFunction])
    def test_policy_weight_roundtrip(self, model_type):
        source = model_type(6, 3, seed=1)
        target = model_type(6, 3, seed=2)
        target.set_weights(source.get_weights())
        np.testing.assert_array_equal(target.weights, source.weights)
        np.testing.assert_array_equal(target.bias, source.bias)
        # get_weights returns copies: mutating them must not touch the model.
        weights, _ = source.get_weights()
        weights += 1.0
        assert not np.array_equal(weights, source.weights)

    def test_scaler_state_roundtrip_and_merge(self):
        from repro.rl.policies import FeatureScaler

        rng = np.random.default_rng(0)
        samples = rng.uniform(0, 100, size=(40, 3))
        whole = FeatureScaler(dim=3)
        left, right = FeatureScaler(dim=3), FeatureScaler(dim=3)
        for i, sample in enumerate(samples):
            whole(sample)
            (left if i < 20 else right)(sample)
        merged = FeatureScaler.merge_states([left.get_state(), right.get_state()])
        restored = FeatureScaler(dim=3)
        restored.set_state(merged)
        # Chan's merge reproduces the single-stream statistics (up to the
        # per-scaler initialization priors).
        np.testing.assert_allclose(restored.mean, whole.mean, rtol=1e-4)
        np.testing.assert_allclose(restored.m2, whole.m2, rtol=0.1)
        assert restored.count == pytest.approx(whole.count, rel=1e-3)
        with pytest.raises(ValueError, match="at least one"):
            FeatureScaler.merge_states([])

    def test_set_weights_rejects_shape_mismatch(self):
        policy = LinearPolicy(6, 3, seed=0)
        other = LinearPolicy(4, 3, seed=0)
        with pytest.raises(ValueError, match="do not match"):
            policy.set_weights(other.get_weights())

    def test_apex_weights_cover_the_online_q(self):
        learner = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0)
        actor = ApexDQNAgent(obs_dim=4, num_actions=3, seed=7)
        actor.set_weights(learner.get_weights())
        observation = np.ones(4)
        np.testing.assert_array_equal(actor.q(observation), learner.q(observation))

    def test_impala_weights_install_as_behaviour(self):
        learner = ImpalaAgent(obs_dim=4, num_actions=3, seed=0)
        learner.policy.policy_gradient_step(np.ones(4), action=1, scale=1.0)
        actor = ImpalaAgent(obs_dim=4, num_actions=3, seed=7)
        actor.set_weights(learner.get_weights())
        np.testing.assert_array_equal(actor.behaviour.weights, learner.policy.weights)
        np.testing.assert_array_equal(actor.policy.weights, learner.policy.weights)


class TestActorLearnerProtocol:
    def test_apex_collect_batch_does_not_learn(self):
        agent = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=2)
        before = agent.q.weights.copy()
        observation = np.ones(4)
        for _ in range(4):
            agent.act_batch([observation, observation])
            items = agent.collect_batch(
                [0.1, 0.2], [False, False], [observation, observation]
            )
            assert len(items) == 2
        np.testing.assert_array_equal(agent.q.weights, before)
        assert len(agent.replay) == 0
        assert agent.total_steps == 8  # The actor-side epsilon schedule advances.

    def test_apex_learn_items_matches_observe_batch(self):
        """A learner fed collected items replays the single-process update."""
        reference = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=2)
        actor = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=2)
        learner = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=2)
        rng = np.random.default_rng(5)
        for _ in range(6):
            observation = rng.uniform(size=4)
            next_observation = rng.uniform(size=4)
            reference.act_batch([observation])
            reference.observe_batch([0.5], [False], [next_observation])
            actor.set_weights(learner.get_weights())
            actor.act_batch([observation])
            weights = learner.learn_items(
                actor.collect_batch([0.5], [False], [next_observation])
            )
            assert weights is not None
        np.testing.assert_allclose(learner.q.weights, reference.q.weights)
        assert len(learner.replay) == len(reference.replay)

    def test_impala_collect_batch_ships_completed_trajectories(self):
        agent = ImpalaAgent(obs_dim=4, num_actions=3, seed=0)
        observation = np.ones(4)
        agent.act_batch([observation, observation])
        items = agent.collect_batch([0.1, 0.2], [False, True])
        assert len(items) == 1 and len(items[0]) == 1  # Slot 1 finished.
        agent.act_batch([observation, observation])
        items = agent.collect_batch([0.3, 0.4], [False, False])
        assert items == []
        flushed = agent.collect_flush()
        assert len(flushed) == 2  # Both open trajectories handed over.
        assert not agent._slot_trajectories

    def test_impala_learn_items_broadcasts_at_sync_boundaries(self):
        agent = ImpalaAgent(obs_dim=4, num_actions=3, seed=0, sync_interval=2)
        trajectory = [(np.ones(4), 0, 0.5, -1.0)]
        assert agent.learn_items([trajectory]) is None  # Episode 1: no boundary.
        weights = agent.learn_items([trajectory])  # Episode 2: boundary crossed.
        assert weights is not None
        np.testing.assert_array_equal(weights["policy"][0], agent.policy.weights)

    def test_rejects_on_policy_agents(self):
        with pytest.raises(ValueError, match="does not implement the distributed"):
            _build_agent("a2c", {"obs_dim": 4, "num_actions": 3})
        with pytest.raises(ValueError, match="Unknown agent"):
            _build_agent("dreamer", {})

    def test_actor_spec_is_picklable(self):
        import pickle

        spec = ActorSpec(
            actor_id=0,
            agent_name="apex",
            agent_kwargs={"obs_dim": 4, "num_actions": 3, "seed": 0},
            env_id="llvm-v0",
            make_kwargs={"benchmark": BENCHMARKS[0]},
            envs_per_actor=1,
            env_backend="serial",
            observation_space="Autophase",
            use_action_histogram=True,
            episode_length=5,
            action_subset=None,
            benchmarks=tuple(BENCHMARKS),
            episodes=2,
            synchronous=True,
            timeout=60.0,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec


class TestDistributedTraining:
    @pytest.mark.parametrize(
        "agent_name,agent_kwargs",
        [("apex", {"batch_size": 8}), ("impala", {})],
        ids=["apex", "impala"],
    )
    def test_one_actor_matches_single_process_seed_for_seed(
        self, agent_name, agent_kwargs
    ):
        """The acceptance criterion: with one (synchronous) actor, the
        distributed topology replays the exact single-process learning
        sequence — same acting RNG stream, same scaler statistics, same
        replay/update order — so the learning curves are identical."""
        agent_type = {"apex": ApexDQNAgent, "impala": ImpalaAgent}[agent_name]
        reference_agent = agent_type(
            obs_dim=OBS_DIM, num_actions=NUM_ACTIONS, seed=3, **agent_kwargs
        )
        reference = _single_process_reference(reference_agent, episodes=6)
        trainer = _distributed_trainer(
            agent_name, {"seed": 3, **agent_kwargs}, num_actors=1, envs_per_actor=2, seed=3
        )
        result = trainer.train(BENCHMARKS, episodes=6)
        assert result.agent_name == reference.agent_name
        assert result.episodes == reference.episodes
        assert result.episode_rewards == pytest.approx(
            reference.episode_rewards, rel=1e-12
        )
        assert trainer.stats["synchronous"] is True
        # The trained learner *is* the single-process agent: learned weights
        # and the (actor-transferred) feature scaler statistics both match,
        # so greedy evaluation of trainer.learner is equivalent too.
        learner = trainer.learner
        if agent_name == "apex":
            np.testing.assert_array_equal(learner.q.weights, reference_agent.q.weights)
        else:
            np.testing.assert_array_equal(
                learner.policy.weights, reference_agent.policy.weights
            )
        np.testing.assert_allclose(learner.scaler.mean, reference_agent.scaler.mean)
        np.testing.assert_allclose(learner.scaler.m2, reference_agent.scaler.m2)
        assert learner.scaler.count == pytest.approx(reference_agent.scaler.count)

    def test_two_actor_smoke_broadcasts_weights_and_grows_shared_replay(self):
        trainer = _distributed_trainer(
            "apex",
            {"batch_size": 8},
            num_actors=2,
            envs_per_actor=1,
            broadcast_interval=1,
        )
        result = trainer.train([BENCHMARKS[0]], episodes=6)
        assert len(result.episode_rewards) == 6
        assert all(np.isfinite(r) for r in result.episode_rewards)
        stats = trainer.stats
        assert stats["actors"] == 2
        assert stats["synchronous"] is False
        # Both actors fed the one central replay buffer...
        assert len(trainer.learner.replay) == stats["items_learned"] > 0
        assert all(steps > 0 for steps in stats["actor_steps"].values())
        # ...and received weight broadcasts back from the learner.
        assert stats["broadcasts"] >= 1
        assert sum(stats["actor_weight_updates"].values()) >= 1

    def test_two_actor_impala_smoke(self):
        trainer = _distributed_trainer(
            "impala",
            {"sync_interval": 1},
            num_actors=2,
            envs_per_actor=1,
            broadcast_interval=1,
        )
        result = trainer.train([BENCHMARKS[0]], episodes=4)
        assert len(result.episode_rewards) == 4
        assert trainer.stats["broadcasts"] >= 1

    def test_actor_failure_propagates(self):
        trainer = _distributed_trainer(
            "apex", {}, num_actors=1, make_kwargs={"benchmark": "benchmark://nope-v0/x"}
        )
        with pytest.raises(RuntimeError, match="Actor 0 failed"):
            trainer.train(["benchmark://nope-v0/x"], episodes=2)

    def test_train_agent_distributed_convenience(self):
        result = train_agent_distributed(
            "impala",
            [BENCHMARKS[0]],
            episodes=2,
            num_actors=2,
            env_id="llvm-v0",
            make_kwargs={"benchmark": BENCHMARKS[0], "reward_space": "IrInstructionCountNorm"},
            episode_length=EPISODE_LENGTH,
            timeout=120.0,
        )
        assert result.agent_name == "impala"
        assert len(result.episode_rewards) == 2

    def test_episode_quota_never_spawns_idle_actors(self):
        trainer = _distributed_trainer("apex", {"batch_size": 8}, num_actors=4)
        result = trainer.train([BENCHMARKS[0]], episodes=2)
        assert len(result.episode_rewards) == 2
        assert trainer.stats["actors"] == 2  # Actors beyond the quota are skipped.

    def test_invalid_configuration(self):
        with pytest.raises(ValueError, match="num_actors"):
            DistributedTrainer(agent="apex", num_actors=0)
        with pytest.raises(ValueError, match="envs_per_actor"):
            DistributedTrainer(agent="apex", envs_per_actor=0)


class TestLearnerCheckpoints:
    """Periodic learner checkpoints and the kill-and-resume contract."""

    def _trainer(self, **kwargs):
        return _distributed_trainer(
            "apex",
            {"batch_size": 8, "seed": 3},
            num_actors=1,
            envs_per_actor=2,
            seed=3,
            **kwargs,
        )

    def test_kill_and_resume_reaches_total_episode_target(self, tmp_path):
        """The crash-resume contract: train 3 of 6 episodes, 'crash' (drop
        the trainer), resume in a fresh trainer, and ask for the same total.
        The resumed run replays only the remainder and returns a trajectory
        of exactly 6 rewards whose first 3 are the checkpointed ones."""
        checkpoint_dir = str(tmp_path / "ckpt")
        first = self._trainer(checkpoint_dir=checkpoint_dir, checkpoint_interval=1)
        partial = first.train(BENCHMARKS, episodes=3)
        assert len(partial.episode_rewards) == 3
        state = load_learner_checkpoint(checkpoint_dir)
        assert state is not None
        assert state["episodes_done"] == 3
        assert state["episode_rewards"] == pytest.approx(partial.episode_rewards)

        # A fresh trainer (the "restarted process") warm-starts from disk.
        resumed = self._trainer(checkpoint_dir=checkpoint_dir, resume=True)
        result = resumed.train(BENCHMARKS, episodes=6)
        assert len(result.episode_rewards) == 6
        assert result.episode_rewards[:3] == pytest.approx(partial.episode_rewards)
        assert all(np.isfinite(r) for r in result.episode_rewards)
        # Only the remainder actually ran.
        assert resumed.stats["resumed_episodes"] == 3
        # The final checkpoint now carries the whole trajectory.
        final = load_learner_checkpoint(checkpoint_dir)
        assert final["episodes_done"] == 6

    def test_checkpoint_restores_weights_and_scaler(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        first = self._trainer(checkpoint_dir=checkpoint_dir)
        first.train(BENCHMARKS, episodes=2)
        resumed = self._trainer(checkpoint_dir=checkpoint_dir, resume=True)
        np.testing.assert_array_equal(
            resumed.learner.q.weights, first.learner.q.weights
        )
        np.testing.assert_allclose(resumed.learner.scaler.mean, first.learner.scaler.mean)
        assert resumed.learner.replay._max_priority == first.learner.replay._max_priority

    def test_resume_requires_checkpoint_dir(self):
        with pytest.raises(ValueError, match="requires checkpoint_dir"):
            self._trainer(resume=True)

    def test_resume_without_checkpoint_starts_fresh(self, tmp_path):
        trainer = self._trainer(checkpoint_dir=str(tmp_path / "empty"), resume=True)
        result = trainer.train([BENCHMARKS[0]], episodes=2)
        assert len(result.episode_rewards) == 2

    def test_missing_checkpoint_loads_none(self, tmp_path):
        assert load_learner_checkpoint(str(tmp_path / "nope")) is None

    def test_version_mismatch_rejected(self, tmp_path):
        import pickle

        checkpoint_dir = str(tmp_path)
        with open(checkpoint_path(checkpoint_dir), "wb") as f:
            pickle.dump({"version": 999}, f)
        with pytest.raises(ValueError, match="checkpoint version"):
            load_learner_checkpoint(checkpoint_dir)

    def test_agent_mismatch_rejected(self, tmp_path):
        checkpoint_dir = str(tmp_path / "ckpt")
        first = self._trainer(checkpoint_dir=checkpoint_dir)
        first.train([BENCHMARKS[0]], episodes=2)
        with pytest.raises(ValueError, match="was written by agent"):
            _distributed_trainer(
                "impala", {"seed": 3}, num_actors=1,
                checkpoint_dir=checkpoint_dir, resume=True,
            )
