"""Tests for the GGNN cost model (Fig. 8) and the Table II baseline drivers."""

import numpy as np
import pytest

from repro.baselines import AutophaseStyleEnvironment, OpenTunerStyleEnvironment
from repro.cost_model import CostModelTrainer, GatedGraphNeuralNetwork, relative_error
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.datasets.generators import generate_module


def _dataset(count=24):
    graphs, targets = [], []
    for seed in range(count):
        module = generate_module(seed, size_scale=2 + (seed % 8) * 3)
        graphs.append(programl_graph(module))
        targets.append(module.instruction_count)
    return graphs, targets


class TestGgnn:
    def test_encoding_shape_and_determinism(self):
        module = generate_module(0, size_scale=3)
        graph = programl_graph(module)
        encoder = GatedGraphNeuralNetwork(hidden_dim=32, seed=0)
        a = encoder.encode(graph)
        b = encoder.encode(graph)
        assert a.shape == (encoder.output_dim,)
        assert np.array_equal(a, b)

    def test_different_graphs_have_different_encodings(self):
        encoder = GatedGraphNeuralNetwork(hidden_dim=32, seed=0)
        a = encoder.encode(programl_graph(generate_module(0, size_scale=3)))
        b = encoder.encode(programl_graph(generate_module(1, size_scale=6)))
        assert not np.array_equal(a, b)

    def test_relative_error_metric(self):
        assert relative_error([10.0], [10.0]) == 0.0
        assert relative_error([20.0], [10.0]) == pytest.approx(1.0)


class TestCostModelTraining:
    def test_learns_better_than_naive_mean(self):
        graphs, targets = _dataset()
        split = 18
        trainer = CostModelTrainer(GatedGraphNeuralNetwork(hidden_dim=32, seed=0), seed=0)
        curve = trainer.fit(graphs[:split], targets[:split], graphs[split:], targets[split:], epochs=15)
        assert curve.validation_relative_error[-1] < curve.naive_relative_error
        assert curve.validation_relative_error[-1] < 0.2

    def test_learning_curve_is_monitored_per_epoch(self):
        graphs, targets = _dataset(12)
        trainer = CostModelTrainer(GatedGraphNeuralNetwork(hidden_dim=16, seed=0), seed=0)
        curve = trainer.fit(graphs[:9], targets[:9], graphs[9:], targets[9:], epochs=5)
        assert curve.epochs == [1, 2, 3, 4, 5]
        assert len(curve.validation_relative_error) == 5

    def test_predict_requires_fit(self):
        trainer = CostModelTrainer(GatedGraphNeuralNetwork(hidden_dim=16, seed=0))
        with pytest.raises(RuntimeError):
            trainer.predict([programl_graph(generate_module(0, size_scale=2))])


class TestBaselineDrivers:
    def test_autophase_style_recompiles_from_scratch(self):
        env = AutophaseStyleEnvironment(benchmark="benchmark://cbench-v1/crc32")
        try:
            observation = env.reset()
            assert observation.shape == (56,)
            index = env.action_names.index("mem2reg")
            _, reward, done, _ = env.step(index)
            assert reward >= 0
            assert not done
            assert env.actions == [index]
        finally:
            env.close()

    def test_autophase_style_matches_compilergym_result(self):
        import repro

        baseline = AutophaseStyleEnvironment(benchmark="benchmark://cbench-v1/crc32")
        env = repro.make("llvm-v0", benchmark="cbench-v1/crc32", reward_space="IrInstructionCount")
        try:
            baseline.reset()
            env.reset()
            for name in ("mem2reg", "instcombine", "dce"):
                baseline.step(baseline.action_names.index(name))
                env.step(env.action_space[name])
            assert baseline._prev_instruction_count == env.observation["IrInstructionCount"]
        finally:
            baseline.close()
            env.close()

    def test_opentuner_style_creates_results_database(self, tmp_path):
        env = OpenTunerStyleEnvironment(
            benchmark="benchmark://cbench-v1/crc32", working_dir=str(tmp_path)
        )
        try:
            env.reset()
            env.step(0)
            assert (tmp_path / "opentuner.db").exists()
        finally:
            env.close()

    def test_step_cost_grows_with_episode_for_baseline(self):
        # The defining property measured in Table II: the recompile-from-
        # scratch baseline re-applies the whole action sequence every step.
        env = AutophaseStyleEnvironment(benchmark="benchmark://cbench-v1/qsort")
        try:
            env.reset()
            env.actions = [env.action_names.index("gvn")] * 30
            import time

            start = time.perf_counter()
            env.step(env.action_names.index("dce"))
            long_episode = time.perf_counter() - start
            env.actions = []
            start = time.perf_counter()
            env.step(env.action_names.index("dce"))
            short_episode = time.perf_counter() - start
            assert long_episode > short_episode
        finally:
            env.close()
