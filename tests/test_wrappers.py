"""Tests for the environment wrapper suite."""

import numpy as np
import pytest

import repro
from repro.core.wrappers import (
    CommandlineWithTerminalAction,
    CompilerEnvWrapper,
    ConcatActionsHistogram,
    ConstrainedCommandline,
    CounterWrapper,
    CycleOverBenchmarks,
    CycleOverBenchmarksIterator,
    ForkOnStep,
    IterateOverBenchmarks,
    ObservationWrapper,
    RandomOrderBenchmarks,
    RewardWrapper,
    TimeLimit,
)


@pytest.fixture()
def env():
    env = repro.make(
        "llvm-v0",
        benchmark="cbench-v1/crc32",
        observation_space="Autophase",
        reward_space="IrInstructionCount",
    )
    yield env
    env.close()


class TestBaseWrapper:
    def test_attribute_forwarding(self, env):
        wrapped = CompilerEnvWrapper(env)
        wrapped.reset()
        assert wrapped.observation["IrInstructionCount"] > 0
        assert wrapped.action_space.n == 124
        assert wrapped.unwrapped is env

    def test_step_forwarding(self, env):
        wrapped = CompilerEnvWrapper(env)
        wrapped.reset()
        observation, reward, done, info = wrapped.step(0)
        assert observation is not None
        assert not done

    def test_benchmark_passthrough(self, env):
        wrapped = CompilerEnvWrapper(env)
        wrapped.benchmark = "benchmark://cbench-v1/sha"
        assert str(wrapped.benchmark.uri) == "benchmark://cbench-v1/sha"


class TestObservationRewardWrappers:
    def test_observation_wrapper(self, env):
        class Doubler(ObservationWrapper):
            def convert_observation(self, observation):
                return observation * 2 if observation is not None else None

        wrapped = Doubler(env)
        base = env.reset()
        wrapped_observation = wrapped.reset()
        assert (np.asarray(wrapped_observation) == 2 * np.asarray(base)).all()

    def test_reward_wrapper(self, env):
        class Negate(RewardWrapper):
            def convert_reward(self, reward):
                return -reward if reward is not None else reward

        wrapped = Negate(env)
        wrapped.reset()
        _, reward, _, _ = wrapped.step(wrapped.action_space["dce"])
        _, raw_reward, _, _ = env.step(env.action_space["dce"])
        assert reward <= 0 or raw_reward == 0


class TestTimeLimit:
    def test_episode_ends_at_limit(self, env):
        wrapped = TimeLimit(env, max_episode_steps=3)
        wrapped.reset()
        done_flags = [wrapped.step(0)[2] for _ in range(3)]
        assert done_flags == [False, False, True]

    def test_truncated_flag(self, env):
        wrapped = TimeLimit(env, max_episode_steps=1)
        wrapped.reset()
        _, _, done, info = wrapped.step(0)
        assert done
        assert info["TimeLimit.truncated"]

    def test_reset_restarts_counter(self, env):
        wrapped = TimeLimit(env, max_episode_steps=2)
        wrapped.reset()
        wrapped.step(0)
        wrapped.reset()
        _, _, done, _ = wrapped.step(0)
        assert not done

    def test_invalid_limit(self, env):
        with pytest.raises(ValueError):
            TimeLimit(env, max_episode_steps=0)


class TestBenchmarkIterators:
    def test_iterate_over_benchmarks(self, env):
        benchmarks = ["benchmark://cbench-v1/crc32", "benchmark://cbench-v1/qsort"]
        wrapped = IterateOverBenchmarks(env, benchmarks)
        wrapped.reset()
        assert str(wrapped.benchmark.uri) == benchmarks[0]
        wrapped.reset()
        assert str(wrapped.benchmark.uri) == benchmarks[1]
        with pytest.raises(StopIteration):
            wrapped.reset()

    def test_cycle_over_benchmarks(self, env):
        benchmarks = ["benchmark://cbench-v1/crc32", "benchmark://cbench-v1/qsort"]
        wrapped = CycleOverBenchmarks(env, benchmarks)
        seen = []
        for _ in range(4):
            wrapped.reset()
            seen.append(str(wrapped.benchmark.uri))
        assert seen == benchmarks * 2

    def test_cycle_over_benchmarks_iterator(self, env):
        wrapped = CycleOverBenchmarksIterator(
            env, lambda: iter(["benchmark://cbench-v1/crc32", "benchmark://cbench-v1/sha"])
        )
        seen = []
        for _ in range(3):  # One more reset than the iterator length: it must recycle.
            wrapped.reset()
            seen.append(str(wrapped.benchmark.uri))
        assert seen[0] == seen[2] == "benchmark://cbench-v1/crc32"

    def test_random_order_benchmarks(self, env):
        benchmarks = [f"benchmark://cbench-v1/{name}" for name in ("crc32", "qsort", "sha")]
        wrapped = RandomOrderBenchmarks(env, benchmarks, rng=np.random.default_rng(0))
        for _ in range(3):
            wrapped.reset()
            assert str(wrapped.benchmark.uri) in benchmarks


class TestCommandlineWrappers:
    def test_constrained_commandline_maps_actions(self, env):
        wrapped = ConstrainedCommandline(env, flags=["-mem2reg", "-dce", "-simplifycfg"])
        assert wrapped.action_space.n == 3
        wrapped.reset()
        wrapped.step(0)  # -mem2reg in the constrained space.
        assert env.actions == [env.action_space["mem2reg"]]

    def test_constrained_commandline_unknown_flag(self, env):
        with pytest.raises(LookupError):
            ConstrainedCommandline(env, flags=["-not-a-pass"])

    def test_terminal_action_ends_episode(self, env):
        wrapped = CommandlineWithTerminalAction(env)
        wrapped.reset()
        assert wrapped.action_space.n == 125
        _, _, done, _ = wrapped.step(wrapped.action_space.n - 1)
        assert done

    def test_non_terminal_actions_still_work(self, env):
        wrapped = CommandlineWithTerminalAction(env)
        wrapped.reset()
        _, _, done, _ = wrapped.step(0)
        assert not done


class TestObservationAugmentation:
    def test_concat_actions_histogram_shape(self, env):
        wrapped = ConcatActionsHistogram(env)
        observation = wrapped.reset()
        assert observation.shape == (56 + 124,)
        assert wrapped.observation_space.shape == (56 + 124,)

    def test_histogram_counts_actions(self, env):
        wrapped = ConcatActionsHistogram(env)
        wrapped.reset()
        observation, _, _, _ = wrapped.step(3)
        observation, _, _, _ = wrapped.step(3)
        assert observation[56 + 3] == 2

    def test_histogram_normalization(self, env):
        wrapped = ConcatActionsHistogram(env, norm_to_episode_len=10)
        wrapped.reset()
        observation, _, _, _ = wrapped.step(5)
        assert observation[56 + 5] == pytest.approx(0.1)

    def test_counter_wrapper(self, env):
        wrapped = CounterWrapper(env)
        wrapped.reset()
        wrapped.step(0)
        wrapped.multistep([1, 2])
        assert wrapped.counters == {"reset": 1, "step": 2, "actions": 3}


class TestForkOnStep:
    def test_undo_restores_previous_state(self, env):
        wrapped = ForkOnStep(env)
        wrapped.reset()
        before = wrapped.observation["IrSha1"]
        wrapped.step(wrapped.action_space["mem2reg"])
        wrapped.undo()
        assert wrapped.observation["IrSha1"] == before

    def test_undo_with_empty_stack_raises(self, env):
        wrapped = ForkOnStep(env)
        wrapped.reset()
        with pytest.raises(IndexError, match="empty ForkOnStep stack"):
            wrapped.undo()
        # The environment is still usable after the failed undo.
        assert wrapped.observation["IrInstructionCount"] > 0


class TestComposition:
    def test_paper_listing2_composition(self, env):
        """The wrapper composition from Listing 2: TimeLimit + CycleOverBenchmarks."""
        wrapped = TimeLimit(env, max_episode_steps=45)
        dataset = env.datasets["benchmark://npb-v0"]
        import itertools

        wrapped = CycleOverBenchmarks(wrapped, itertools.islice(dataset.benchmarks(), 2))
        wrapped.reset()
        assert "npb" in str(wrapped.benchmark.uri)

    def test_rl_composition(self, env):
        from repro.rl.trainer import make_rl_environment

        wrapped = make_rl_environment(env)
        observation = wrapped.reset()
        assert observation.shape == (56 + 42,)
        _, _, done, _ = wrapped.step(0)
        assert not done
