"""Tests for the RL agents and training harness."""

import numpy as np
import pytest

import repro
from repro.rl import A2CAgent, ApexDQNAgent, ImpalaAgent, PPOAgent, PrioritizedReplayBuffer
from repro.rl.policies import FeatureScaler, LinearPolicy, LinearValueFunction, softmax
from repro.rl.trainer import (
    AUTOPHASE_ACTION_SUBSET,
    evaluate_codesize_reduction,
    final_codesize_reduction,
    make_rl_environment,
    observation_dim,
    run_episode,
    train_agent,
)

OBS_DIM = observation_dim("Autophase", True, 42)
AGENTS = [
    lambda: PPOAgent(OBS_DIM, 42, seed=0),
    lambda: A2CAgent(OBS_DIM, 42, seed=0),
    lambda: ApexDQNAgent(OBS_DIM, 42, seed=0, batch_size=8),
    lambda: ImpalaAgent(OBS_DIM, 42, seed=0),
]


@pytest.fixture(scope="module")
def rl_env():
    env = repro.make("llvm-v0", benchmark="cbench-v1/crc32", reward_space="IrInstructionCountNorm")
    wrapped = make_rl_environment(env, episode_length=15)
    yield wrapped
    wrapped.close()


class TestPolicies:
    def test_softmax_sums_to_one(self):
        probs = softmax(np.array([1.0, 2.0, 3.0]))
        assert probs.sum() == pytest.approx(1.0)
        assert probs.argmax() == 2

    def test_linear_policy_probabilities(self):
        policy = LinearPolicy(obs_dim=4, num_actions=3, seed=0)
        probs = policy.probabilities(np.ones(4))
        assert probs.shape == (3,)
        assert probs.sum() == pytest.approx(1.0)

    def test_policy_gradient_moves_probability(self):
        policy = LinearPolicy(obs_dim=4, num_actions=3, learning_rate=0.5, seed=0)
        observation = np.ones(4)
        before = policy.probabilities(observation)[1]
        policy.policy_gradient_step(observation, action=1, scale=1.0)
        assert policy.probabilities(observation)[1] > before

    def test_value_function_update_reduces_error(self):
        value = LinearValueFunction(obs_dim=4, learning_rate=0.1, seed=0)
        observation = np.ones(4)
        for _ in range(200):
            value.update(observation, 5.0)
        assert value.value(observation) == pytest.approx(5.0, abs=0.5)

    def test_feature_scaler_compresses_counts(self):
        scaler = FeatureScaler(dim=3)
        scaled = scaler(np.array([0, 100, 10_000]))
        assert np.all(np.abs(scaled) <= 5.0)

    def test_entropy_gradient_step_increases_entropy(self):
        policy = LinearPolicy(obs_dim=4, num_actions=3, learning_rate=0.5, seed=0)
        observation = np.ones(4)
        # Peak the policy on action 0, then apply entropy ascent steps.
        for _ in range(40):
            policy.policy_gradient_step(observation, action=0, scale=1.0)
        before = policy.entropy(observation)
        for _ in range(40):
            policy.entropy_gradient_step(observation, scale=1.0)
        assert policy.entropy(observation) > before

    def test_entropy_gradient_is_zero_at_uniform(self):
        policy = LinearPolicy(obs_dim=4, num_actions=3, learning_rate=0.5, seed=0)
        policy.weights[:] = 0.0
        policy.bias[:] = 0.0
        observation = np.ones(4)
        policy.entropy_gradient_step(observation, scale=1.0)
        # The uniform distribution is the entropy maximum: no movement.
        np.testing.assert_allclose(policy.probabilities(observation), np.full(3, 1 / 3))


class TestReplayBuffer:
    def test_capacity_wraparound(self):
        buffer = PrioritizedReplayBuffer(capacity=4)
        for i in range(10):
            buffer.add((i,), priority=1.0)
        assert len(buffer) == 4

    def test_prioritized_sampling_prefers_high_priority(self):
        buffer = PrioritizedReplayBuffer(capacity=10, alpha=1.0, seed=0)
        buffer.add(("low",), priority=0.001)
        buffer.add(("high",), priority=10.0)
        transitions, _, _ = buffer.sample(64)
        high_fraction = sum(1 for t in transitions if t[0] == "high") / len(transitions)
        assert high_fraction > 0.9

    def test_importance_weights_bounded(self):
        buffer = PrioritizedReplayBuffer(capacity=10, seed=0)
        for i in range(10):
            buffer.add((i,), priority=float(i + 1))
        _, _, weights = buffer.sample(5)
        assert np.all(weights <= 1.0) and np.all(weights > 0)

    def test_update_priorities(self):
        buffer = PrioritizedReplayBuffer(capacity=4, seed=0)
        buffer.add((0,), priority=1.0)
        _, indices, _ = buffer.sample(1)
        buffer.update_priorities(indices, np.array([9.0]))
        assert buffer.priorities[indices[0]] == 9.0

    def test_running_max_priority(self):
        """Regression: the max priority for new transitions was recomputed
        with an O(n) scan per add (and the scan included the slot about to
        be overwritten). The buffer tracks a running maximum instead."""
        buffer = PrioritizedReplayBuffer(capacity=4, seed=0)
        assert buffer.max_priority == 1.0
        buffer.add((0,), priority=5.0)
        assert buffer.max_priority == 5.0
        # update_priorities feeds the running max too (TD errors from
        # learning, the Ape-X priority source).
        buffer.update_priorities(np.array([0]), np.array([9.0]))
        assert buffer.max_priority == 9.0
        # Wrapping around and overwriting the high-priority slot does not
        # lower the running max.
        for i in range(8):
            buffer.add((i,), priority=0.5)
        assert buffer.max_priority == 9.0


class TestAgents:
    @pytest.mark.parametrize("make_agent", AGENTS, ids=["ppo", "a2c", "apex", "impala"])
    def test_agent_completes_training_episodes(self, rl_env, make_agent):
        agent = make_agent()
        rewards = [
            run_episode(rl_env, agent, benchmark="generator://csmith-v0/1", train=True)
            for _ in range(3)
        ]
        assert len(rewards) == 3
        assert all(np.isfinite(r) for r in rewards)

    def test_greedy_rollout_is_deterministic(self, rl_env):
        agent = PPOAgent(OBS_DIM, 42, seed=0)
        a = run_episode(rl_env, agent, benchmark="benchmark://cbench-v1/crc32", train=False)
        b = run_episode(rl_env, agent, benchmark="benchmark://cbench-v1/crc32", train=False)
        assert a == pytest.approx(b)

    def test_training_improves_ppo_on_single_benchmark(self, rl_env):
        agent = PPOAgent(OBS_DIM, 42, seed=0, learning_rate=0.05)
        benchmark = "generator://csmith-v0/3"
        before = evaluate_codesize_reduction(agent, rl_env, [benchmark]).geomean_reduction
        train_agent(agent, rl_env, [benchmark], episodes=30)
        after = evaluate_codesize_reduction(agent, rl_env, [benchmark]).geomean_reduction
        assert after >= before * 0.9  # Training must not collapse; usually it improves.

    def test_impala_entropy_bonus_does_not_bias_toward_taken_actions(self):
        """Regression: entropy_coef used to be added as a flat constant to
        every advantage, so zero-reward experience still pushed probability
        onto whatever action happened to be taken. The entropy-gradient
        bonus must instead keep a (near-)uniform policy near uniform."""
        agent = ImpalaAgent(
            obs_dim=6, num_actions=4, learning_rate=0.5, entropy_coef=1.0, seed=0
        )
        observation = np.ones(6)
        for episode in range(10):
            for t in range(5):
                agent.act(observation)
                # Pin the recorded transition to action 0, reward 0.
                features = agent._last[0]
                agent._last = (features, 0, agent.behaviour.log_prob(features, 0))
                agent.observe(observation, 0, reward=0.0, done=t == 4)
        features = agent.scaler(observation, update=False)
        probabilities = agent.policy.probabilities(features)
        # The flat-constant bug drives P(action 0) towards 1 here; the
        # entropy-gradient bonus keeps the policy close to uniform.
        assert probabilities[0] < 0.5
        assert agent.policy.entropy(features) > 0.9 * np.log(4)

    def test_impala_batch_rollouts_match_protocol(self):
        """act_batch/observe_batch accumulate per-slot trajectories and skip
        masked (None) slots, like A2C/PPO."""
        agent = ImpalaAgent(obs_dim=4, num_actions=3, seed=0)
        observation = np.ones(4)
        actions = agent.act_batch([observation, None, observation])
        assert actions[1] is None
        assert actions[0] is not None and actions[2] is not None
        agent.observe_batch([0.5, None, 0.25], [False, True, True])
        # Slot 2 finished: its trajectory was learned from and cleared.
        assert 2 not in agent._slot_trajectories or not agent._slot_trajectories[2]
        assert len(agent._slot_trajectories[0]) == 1
        agent.end_episode_batch()
        assert not agent._slot_trajectories

    def test_apex_batch_rollouts_feed_shared_replay(self):
        agent = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=4)
        observation = np.ones(4)
        next_observation = np.full(4, 2.0)
        for _ in range(3):
            actions = agent.act_batch([observation, observation])
            assert all(action is not None for action in actions)
            agent.observe_batch(
                [0.1, 0.2], [False, False], [next_observation, next_observation]
            )
        assert len(agent.replay) == 6
        assert agent.total_steps == 6

    def test_apex_new_transitions_stored_at_max_priority(self):
        agent = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0, batch_size=1000)
        observation = np.ones(4)
        agent.act(observation)
        agent.observe(observation, 0, 1.0, False)
        # Simulate a learning pass raising one transition's priority.
        agent.replay.update_priorities(np.array([0]), np.array([7.0]))
        agent.act(observation)
        agent.observe(observation, 0, 1.0, False)
        assert agent.replay.priorities[1] == 7.0  # Replayed-at-least-once guarantee.

    def test_apex_observe_batch_requires_bootstrap_observations(self):
        """Regression: omitting the post-step observations must fail fast,
        not silently bootstrap TD targets from the pre-step state."""
        agent = ApexDQNAgent(obs_dim=4, num_actions=3, seed=0)
        agent.act_batch([np.ones(4)])
        with pytest.raises(ValueError, match="post-step observation"):
            agent.observe_batch([0.1], [False])

    def test_train_agent_records_learning_curve(self, rl_env):
        agent = A2CAgent(OBS_DIM, 42, seed=0)
        result = train_agent(
            agent,
            rl_env,
            ["generator://csmith-v0/5"],
            episodes=4,
            validation_benchmarks=["benchmark://cbench-v1/crc32"],
            validation_interval=2,
        )
        assert len(result.episode_rewards) == 4
        assert len(result.validation_scores) == 2


class _StubEnv:
    """Minimal env double for harness-level unit tests (no compiler service)."""

    def __init__(self, final_size=10, oz_size=10):
        self.observation = {
            "IrInstructionCount": final_size,
            "IrInstructionCountOz": oz_size,
        }

    def reset(self, benchmark=None):
        return np.zeros(4)

    def step(self, action):
        return np.zeros(4), 0.0, True, {}


class _StubAgent:
    name = "stub"

    def act(self, observation, greedy=False):
        return 0

    def observe(self, observation, action, reward, done):
        pass

    def end_episode(self):
        pass


class TestHarness:
    def test_evaluation_clamps_degenerate_codesize(self, caplog):
        """Regression: a benchmark collapsing to a non-positive final size
        contributed a 0.0 reduction, zeroing the whole geometric mean."""
        import logging

        env = _StubEnv(final_size=0, oz_size=10)
        with caplog.at_level(logging.WARNING, logger="repro.rl.trainer"):
            result = evaluate_codesize_reduction(
                _StubAgent(), env, ["benchmark://broken-v0/1", "benchmark://broken-v0/2"]
            )
        assert result.geomean_reduction > 0
        assert result.per_benchmark == [1e-6, 1e-6]
        assert "broken-v0/1" in caplog.text

    def test_train_agent_allocates_one_rng(self, monkeypatch):
        """Regression: train_agent re-seeded (and discarded) a fresh
        random.Random every episode; one seeded RNG suffices."""
        import random

        created = []
        real_random = random.Random

        class CountingRandom(real_random):
            def __init__(self, *args):
                created.append(args)
                super().__init__(*args)

        monkeypatch.setattr(random, "Random", CountingRandom)
        result = train_agent(_StubAgent(), _StubEnv(), ["benchmark://b/1"], episodes=5, seed=7)
        assert len(result.episode_rewards) == 5
        assert created == [(7,)]

    def test_action_subset_has_42_passes(self):
        assert len(AUTOPHASE_ACTION_SUBSET) == 42

    def test_observation_dim(self):
        assert observation_dim("Autophase", True, 42) == 98
        assert observation_dim("InstCount", False, 42) == 70

    def test_final_codesize_reduction_metric(self, rl_env):
        rl_env.reset()
        reduction = final_codesize_reduction(rl_env)
        assert 0 < reduction <= 1.0  # Unoptimized program is never smaller than -Oz.

    def test_evaluation_result_structure(self, rl_env):
        agent = PPOAgent(OBS_DIM, 42, seed=0)
        result = evaluate_codesize_reduction(
            agent, rl_env, ["benchmark://cbench-v1/crc32"], dataset_name="cbench"
        )
        assert result.dataset == "cbench"
        assert len(result.per_benchmark) == 1
        assert result.geomean_reduction > 0
