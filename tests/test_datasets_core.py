"""Unit tests for benchmark URI parsing and dataset management."""

import numpy as np
import pytest

from repro.core.datasets import Benchmark, BenchmarkUri, Dataset, Datasets
from repro.core.datasets.dataset import InMemoryDataset
from repro.errors import ValidationError


class TestBenchmarkUri:
    def test_parse_full_uri(self):
        uri = BenchmarkUri.from_string("benchmark://cbench-v1/qsort")
        assert uri.scheme == "benchmark"
        assert uri.dataset == "cbench-v1"
        assert uri.path == "qsort"

    def test_default_scheme(self):
        uri = BenchmarkUri.from_string("cbench-v1/qsort")
        assert uri.scheme == "benchmark"
        assert str(uri) == "benchmark://cbench-v1/qsort"

    def test_generator_scheme(self):
        uri = BenchmarkUri.from_string("generator://csmith-v0/42")
        assert uri.scheme == "generator"
        assert uri.path == "42"

    def test_dataset_uri(self):
        uri = BenchmarkUri.from_string("benchmark://npb-v0/50")
        assert uri.dataset_uri == "benchmark://npb-v0"

    def test_params_and_fragment(self):
        uri = BenchmarkUri.from_string("benchmark://x-v0/a/b?k=1&k=2#frag")
        assert uri.params["k"] == ["1", "2"]
        assert uri.fragment == "frag"
        assert "k=1" in str(uri)

    def test_empty_uri_raises(self):
        with pytest.raises(ValueError):
            BenchmarkUri.from_string("")

    def test_canonicalize(self):
        assert BenchmarkUri.canonicalize("cbench-v1/crc32") == "benchmark://cbench-v1/crc32"


class TestBenchmark:
    def test_equality_by_uri(self):
        a = Benchmark("benchmark://x-v0/1")
        b = Benchmark("benchmark://x-v0/1")
        assert a == b
        assert a == "benchmark://x-v0/1"
        assert a != Benchmark("benchmark://x-v0/2")

    def test_from_file_contents(self):
        benchmark = Benchmark.from_file_contents("benchmark://user-v0/a", b"hello")
        assert benchmark.sources[0].contents == b"hello"

    def test_validation_callbacks(self):
        benchmark = Benchmark("benchmark://x-v0/1")
        assert not benchmark.is_validatable()
        benchmark.add_validation_callback(lambda env: [ValidationError("boom")])
        assert benchmark.is_validatable()
        errors = benchmark.validate(env=None)
        assert errors == [ValidationError("boom")]


class _CountingDataset(Dataset):
    """A tiny dataset of three named benchmarks."""

    def __init__(self, name="benchmark://tiny-v0", deprecated=None, sort_order=0):
        super().__init__(
            name=name, description="test", benchmark_count=3, deprecated=deprecated,
            sort_order=sort_order,
        )

    def benchmark_uris(self):
        for i in range(3):
            yield f"{self.name}/{i}"

    def benchmark_from_parsed_uri(self, uri):
        if uri.path not in {"0", "1", "2"}:
            raise LookupError(str(uri))
        return Benchmark(str(uri), program=int(uri.path))


class TestDataset:
    def test_name_and_version(self):
        dataset = _CountingDataset()
        assert dataset.name == "benchmark://tiny-v0"
        assert dataset.version == 0
        assert _CountingDataset("benchmark://tiny-v3").version == 3

    def test_size_and_len(self):
        dataset = _CountingDataset()
        assert dataset.size == 3
        assert len(dataset) == 3

    def test_benchmarks_iteration(self):
        dataset = _CountingDataset()
        uris = [str(b.uri) for b in dataset.benchmarks()]
        assert uris == [f"benchmark://tiny-v0/{i}" for i in range(3)]

    def test_benchmark_lookup(self):
        dataset = _CountingDataset()
        assert dataset.benchmark("benchmark://tiny-v0/1").program == 1
        with pytest.raises(LookupError):
            dataset.benchmark("benchmark://tiny-v0/9")

    def test_benchmark_wrong_dataset_raises(self):
        with pytest.raises(LookupError):
            _CountingDataset().benchmark("benchmark://other-v0/1")

    def test_random_benchmark_is_member(self):
        dataset = _CountingDataset()
        benchmark = dataset.random_benchmark(np.random.default_rng(0))
        assert str(benchmark.uri).startswith("benchmark://tiny-v0/")

    def test_deprecated_flag(self):
        assert not _CountingDataset().deprecated
        assert _CountingDataset(deprecated="use tiny-v1").deprecated


class TestInMemoryDataset:
    def test_lookup(self):
        dataset = InMemoryDataset(
            "benchmark://mem-v0", [Benchmark("benchmark://mem-v0/a"), Benchmark("benchmark://mem-v0/b")]
        )
        assert dataset.size == 2
        assert str(dataset.benchmark("benchmark://mem-v0/a").uri) == "benchmark://mem-v0/a"
        with pytest.raises(LookupError):
            dataset.benchmark("benchmark://mem-v0/missing")


class TestDatasets:
    def _collection(self):
        datasets = Datasets()
        datasets.add(_CountingDataset("benchmark://aaa-v0"))
        datasets.add(_CountingDataset("benchmark://bbb-v0"))
        return datasets

    def test_lookup_and_contains(self):
        datasets = self._collection()
        assert "benchmark://aaa-v0" in datasets
        assert "benchmark://zzz-v0" not in datasets
        assert datasets["benchmark://bbb-v0"].name == "benchmark://bbb-v0"

    def test_iteration_order(self):
        names = [d.name for d in self._collection()]
        assert names == ["benchmark://aaa-v0", "benchmark://bbb-v0"]

    def test_sort_order_priority(self):
        datasets = self._collection()
        datasets.add(_CountingDataset("benchmark://zzz-v0", sort_order=-1))
        assert [d.name for d in datasets][0] == "benchmark://zzz-v0"

    def test_benchmark_lookup_across_datasets(self):
        datasets = self._collection()
        assert datasets.benchmark("benchmark://bbb-v0/2").program == 2

    def test_benchmark_uris_spans_datasets(self):
        datasets = self._collection()
        assert len(list(datasets.benchmark_uris())) == 6

    def test_deprecated_hidden_from_iteration(self):
        datasets = self._collection()
        datasets.add(_CountingDataset("benchmark://old-v0", deprecated="gone"))
        assert "benchmark://old-v0" not in [d.name for d in datasets]
        assert "benchmark://old-v0" in [d.name for d in datasets.datasets(with_deprecated=True)]
        # Still accessible by direct lookup.
        assert datasets["benchmark://old-v0"].deprecated

    def test_remove(self):
        datasets = self._collection()
        datasets.remove("benchmark://aaa-v0")
        assert "benchmark://aaa-v0" not in datasets
        assert len(datasets) == 1

    def test_random_benchmark(self):
        datasets = self._collection()
        benchmark = datasets.random_benchmark(np.random.default_rng(1))
        assert str(benchmark.uri).split("/")[-1] in {"0", "1", "2"}

    def test_random_benchmark_weighted(self):
        datasets = self._collection()
        benchmark = datasets.random_benchmark(np.random.default_rng(2), weighted=True)
        assert benchmark is not None

    def test_missing_dataset_raises(self):
        with pytest.raises(LookupError):
            self._collection().dataset("benchmark://nope-v0")
