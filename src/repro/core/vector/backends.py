"""Execution backends for :class:`VecCompilerEnv`.

A backend decides *how* the per-worker service calls of one batched operation
are executed: :class:`SerialBackend` runs them one after another in the
calling thread (deterministic ordering, easiest to debug), while
:class:`ThreadPoolBackend` dispatches them on a ``concurrent.futures`` thread
pool so that the service round-trips of independent sessions overlap — the
client-side analogue of the paper's environments-as-a-service throughput
scaling (Fig. 6).
"""

from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Union

from repro.core.service.connection import AsyncResult


class ExecutionBackend:
    """Strategy interface for executing a batch of independent thunks."""

    name = "backend"

    @property
    def executor(self) -> Optional[Executor]:
        """The executor used for async service dispatch, if any."""
        return None

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        The first exception raised by any call propagates to the caller.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release any resources held by the backend."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Executes the batch sequentially in the calling thread.

    Useful for debugging and as the reference implementation that the
    fork/thread equivalence tests compare against.
    """

    name = "serial"

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Executes the batch on a shared ``ThreadPoolExecutor``.

    Worker sessions are independent, so their service calls can be issued
    concurrently; with a non-zero transport latency (``ConnectionOpts.
    rpc_latency``) the round-trips overlap and batched step throughput scales
    with the worker count.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None):
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix="vec-env-worker"
        )
        self._closed = False

    @property
    def executor(self) -> Optional[Executor]:
        return None if self._closed else self._executor

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError("Cannot run a batch on a closed ThreadPoolBackend")
        results = [
            AsyncResult(future=self._executor.submit(fn, item)) for item in items
        ]
        return [result.result() for result in results]

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)


def resolve_backend(
    backend: Union[str, ExecutionBackend, None], num_workers: int
) -> ExecutionBackend:
    """Coerce a backend specifier (``"serial"``, ``"thread"``, an instance, or
    ``None`` for the serial default) to an :class:`ExecutionBackend`."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadPoolBackend(max_workers=max(1, num_workers))
    raise ValueError(f"Unknown execution backend: {backend!r}")
