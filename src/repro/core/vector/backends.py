"""Execution backends for :class:`VecCompilerEnv`.

A backend decides *how* the per-worker service calls of one batched operation
are executed, and *how* the worker pool is populated:

* :class:`SerialBackend` runs batches one after another in the calling thread
  (deterministic ordering, easiest to debug).
* :class:`ThreadPoolBackend` dispatches batches on a ``concurrent.futures``
  thread pool so that the service round-trips of independent sessions overlap
  — the client-side analogue of the paper's environments-as-a-service
  throughput scaling (Fig. 6).
* :class:`~repro.core.vector.process.ProcessPoolBackend` (``"process"``) runs
  every worker in its own subprocess, sidestepping the GIL for compute-bound
  sessions.

Serial and thread backends populate the pool by ``fork()``-ing the root
environment in-process; the process backend ships a picklable per-worker
closure to each subprocess instead.
"""

from concurrent.futures import Executor, ThreadPoolExecutor
from typing import Any, Callable, Iterable, List, Optional, Union

from repro.core.service.connection import AsyncResult


def close_quietly(closable) -> None:
    """Best-effort ``close()`` for cleanup paths that must not mask the
    original error (or raise during teardown of the remaining resources)."""
    try:
        closable.close()
    except Exception:  # noqa: BLE001 - cleanup must not raise
        pass


def grow_thread_pool(
    executor: ThreadPoolExecutor, num_workers: int, prefix: str
) -> ThreadPoolExecutor:
    """Swap a thread pool for a larger one, retiring the old executor."""
    replacement = ThreadPoolExecutor(max_workers=num_workers, thread_name_prefix=prefix)
    executor.shutdown(wait=True)
    return replacement


class ExecutionBackend:
    """Strategy interface for executing a batch of independent thunks."""

    name = "backend"

    @property
    def executor(self) -> Optional[Executor]:
        """The executor used for async service dispatch, if any."""
        return None

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        """Apply ``fn`` to every item, returning results in input order.

        The first exception raised by any call propagates to the caller.
        """
        raise NotImplementedError

    def populate(self, env, n: int, worker_wrapper: Optional[Callable[[Any], Any]]) -> List[Any]:
        """Build the pool's ``n`` workers from the root environment.

        The default (in-process) strategy forks the root ``n - 1`` times and
        applies ``worker_wrapper`` to every worker, root included. On failure
        every fork created so far — wrapped or not — is closed before the
        error propagates; the root itself is left open for the caller.
        """
        workers: List[Any] = [env]
        wrapped: List[Any] = []
        try:
            for _ in range(n - 1):
                workers.append(env.fork())
            if worker_wrapper is not None:
                for worker in workers:
                    wrapped.append(worker_wrapper(worker))
                workers = wrapped
            return workers
        except Exception:
            # Construction failed partway. Close every fork through its
            # wrapper when one was applied (a wrapper may hold resources of
            # its own); the raw fork otherwise. The root (index 0) stays
            # open: the caller still owns it.
            for index in range(1, len(workers)):
                close_quietly(wrapped[index] if index < len(wrapped) else workers[index])
            raise

    def resize(self, num_workers: int) -> None:
        """Adapt backend capacity to a resized pool. No-op by default."""

    def close(self) -> None:
        """Release any resources held by the backend."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class SerialBackend(ExecutionBackend):
    """Executes the batch sequentially in the calling thread.

    Useful for debugging and as the reference implementation that the
    fork/thread/process equivalence tests compare against.
    """

    name = "serial"

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        return [fn(item) for item in items]


class ThreadPoolBackend(ExecutionBackend):
    """Executes the batch on a shared ``ThreadPoolExecutor``.

    Worker sessions are independent, so their service calls can be issued
    concurrently; with a non-zero transport latency (``ConnectionOpts.
    rpc_latency``) the round-trips overlap and batched step throughput scales
    with the worker count.
    """

    name = "thread"
    _thread_name_prefix = "vec-env-worker"

    def __init__(self, max_workers: Optional[int] = None):
        self._max_workers = max_workers
        self._executor = ThreadPoolExecutor(
            max_workers=max_workers, thread_name_prefix=self._thread_name_prefix
        )
        self._closed = False

    @property
    def executor(self) -> Optional[Executor]:
        return None if self._closed else self._executor

    # Fork-populated workers of a daemon-attached root share the root's
    # socket. That is now what we want: the socket transport multiplexes
    # concurrent RPCs by request id, so this backend's batches overlap on
    # the one connection (and batched stepping collapses them into a single
    # round trip) — no per-fork connection re-homing needed.

    def run(self, fn: Callable[[Any], Any], items: Iterable[Any]) -> List[Any]:
        if self._closed:
            raise RuntimeError(
                f"Cannot run a batch on a closed {type(self).__name__}"
            )
        results = [
            AsyncResult(future=self._executor.submit(fn, item)) for item in items
        ]
        return [result.result() for result in results]

    def resize(self, num_workers: int) -> None:
        """Grow the thread pool so a resized VecCompilerEnv keeps full overlap."""
        if self._closed or self._max_workers is None or num_workers <= self._max_workers:
            return
        self._max_workers = num_workers
        self._executor = grow_thread_pool(
            self._executor, num_workers, self._thread_name_prefix
        )

    def close(self) -> None:
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)


def resolve_backend(
    backend: Union[str, ExecutionBackend, None], num_workers: int
) -> ExecutionBackend:
    """Coerce a backend specifier (``"serial"``, ``"thread"``, ``"process"``,
    an instance, or ``None`` for the serial default) to an
    :class:`ExecutionBackend`."""
    if backend is None:
        return SerialBackend()
    if isinstance(backend, ExecutionBackend):
        return backend
    if backend == "serial":
        return SerialBackend()
    if backend == "thread":
        return ThreadPoolBackend(max_workers=max(1, num_workers))
    if backend == "process":
        from repro.core.vector.process import ProcessPoolBackend

        return ProcessPoolBackend(max_workers=max(1, num_workers))
    raise ValueError(f"Unknown execution backend: {backend!r}")
