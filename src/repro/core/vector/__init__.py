"""Vectorized environment pools.

This subpackage provides :class:`VecCompilerEnv`, a fixed-size pool of
compilation sessions driven through a batched ``reset``/``step``/
``multistep`` interface. Pools are populated with ``fork()`` so per-pool
initialization cost is paid once, and batches execute through a pluggable
backend (serial or thread pool).
"""

from repro.core.vector.backends import (
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.core.vector.vec_env import SKIPPED_STEP, VecCompilerEnv, make_vec_env

__all__ = [
    "ExecutionBackend",
    "SKIPPED_STEP",
    "SerialBackend",
    "ThreadPoolBackend",
    "VecCompilerEnv",
    "make_vec_env",
    "resolve_backend",
]
