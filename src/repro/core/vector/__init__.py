"""Vectorized environment pools.

This subpackage provides :class:`VecCompilerEnv`, a pool of compilation
sessions driven through a batched ``reset``/``step``/``multistep`` interface
with optional auto-reset rollout semantics and dynamic ``resize()``. Pools
execute through a pluggable backend: ``"serial"`` and ``"thread"`` populate
via ``fork()`` and run in-process, while ``"process"`` gives every worker its
own subprocess (rebuilt from a picklable :class:`WorkerSpec`) to sidestep the
GIL for compute-bound sessions.
"""

from repro.core.vector.autoscale import (
    AutoscalePolicy,
    FleetAutoscalePolicy,
    autoscale_policy,
)
from repro.core.vector.backends import (
    ExecutionBackend,
    SerialBackend,
    ThreadPoolBackend,
    resolve_backend,
)
from repro.core.vector.process import ProcessPoolBackend, RemoteWorker, WorkerSpec
from repro.core.vector.vec_env import SKIPPED_STEP, VecCompilerEnv, make_vec_env

__all__ = [
    "AutoscalePolicy",
    "FleetAutoscalePolicy",
    "ExecutionBackend",
    "ProcessPoolBackend",
    "RemoteWorker",
    "SKIPPED_STEP",
    "SerialBackend",
    "ThreadPoolBackend",
    "VecCompilerEnv",
    "WorkerSpec",
    "autoscale_policy",
    "make_vec_env",
    "resolve_backend",
]
