"""A vectorized pool of compiler environments.

:class:`VecCompilerEnv` drives N compilation sessions through a single
batched ``reset``/``step``/``multistep`` interface, the standard substrate
for parallel policy rollout and parallel autotuning in gym-style systems.

How the pool is populated depends on the execution backend. The in-process
backends (``"serial"``, ``"thread"``) *fork* the root environment N−1 times,
so service startup, benchmark initialization, and the service's benchmark
cache are paid once and shared by every worker — the cheap session cloning
that the source paper's environments-as-a-service architecture is built
around. The ``"process"`` backend instead rebuilds each worker inside its own
subprocess from a picklable spec, trading shared caches for GIL-free
parallelism on compute-bound sessions.
"""

import logging
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.datasets import Benchmark
from repro.core.service.connection import merge_stats_summaries
from repro.core.vector.backends import ExecutionBackend, close_quietly, resolve_backend
from repro.errors import CompilerGymError, ServiceError, ServiceIsDown, SessionNotFound

logger = logging.getLogger(__name__)

# Placeholder result returned for workers whose slot in a batched step was
# ``None`` (i.e. masked out, typically because their episode already ended).
SKIPPED_STEP = (None, None, True, {"skipped": True})


def _fetch_observations(worker, names: Sequence[str]) -> List[Any]:
    """Fetch several observation spaces from one worker.

    Workers that expose a batched ``observations()`` method (the subprocess
    proxies) get all names in a single round trip; plain environments fall
    back to per-space ``observation[...]`` lookups.
    """
    batched = getattr(type(worker), "observations", None)
    if batched is not None:
        return batched(worker, list(names))
    return [worker.observation[name] for name in names]


class VecCompilerEnv:
    """A pool of environments with a batched Gym-style interface.

    Args:
        env: The root environment. The pool takes ownership: with an
            in-process backend it becomes worker 0 and is forked to populate
            the rest of the pool; with the process backend it provides the
            worker construction spec and is closed once the subprocess
            workers are up. Closing the pool closes every worker.
        n: The number of workers (must be >= 1).
        backend: Execution backend: ``"serial"`` (default), ``"thread"``,
            ``"process"``, or an :class:`ExecutionBackend` instance. A
            string-constructed backend is owned (and closed) by the pool; an
            instance is not.
        worker_wrapper: Optional callable applied to every worker (including
            the root) after forking, e.g. to impose a ``TimeLimit``. The
            wrapper must preserve the ``CompilerEnv`` interface, and must be
            picklable for the process backend.
        auto_reset: When True, a worker whose episode ends is reset *within
            the same batched step*: its slot returns the new episode's
            initial observation, ``done=True``, and the final observation of
            the finished episode under ``info["terminal_observation"]`` —
            the standard VecEnv contract for continuous rollout collection.
        use_batched_step: When True (the default), a pool whose workers
            share one daemon connection collapses each batched step into a
            single ``step_sessions`` RPC executed concurrently on the
            daemon, instead of one RPC per worker. Pools that do not qualify
            (in-process workers, wrapped workers, mixed connections) fall
            back to per-worker dispatch automatically; set False to force
            the per-worker path (the benchmark harness does, to measure the
            batching win).
    """

    def __init__(
        self,
        env,
        n: int,
        backend: Union[str, ExecutionBackend, None] = None,
        worker_wrapper: Optional[Callable[[Any], Any]] = None,
        auto_reset: bool = False,
        use_batched_step: bool = True,
    ):
        if n < 1:
            raise ValueError(f"VecCompilerEnv requires n >= 1, got {n}")
        self._backend = resolve_backend(backend, n)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.auto_reset = auto_reset
        self.use_batched_step = use_batched_step
        self.closed = False
        self._worker_wrapper = worker_wrapper
        # Cache of each worker's default observation-space id (static
        # metadata), so auto-reset re-fetches can recognize "the requested
        # space IS the default" without a per-reset metadata round trip.
        # Invalidated on resize and on any reset that changes the space.
        self._default_space_ids: Dict[int, Optional[str]] = {}
        self.workers: List[Any] = []
        try:
            # The backend owns the population strategy: in-process backends
            # fork the root (cleaning up partially-built — including
            # partially-wrapped — workers on failure), the process backend
            # spawns subprocess workers from a picklable spec.
            self.workers = self._backend.populate(env, n, worker_wrapper)
        except Exception:
            if self._owns_backend:
                self._backend.close()
            raise

    # -- pool introspection -------------------------------------------------

    @property
    def num_envs(self) -> int:
        return len(self.workers)

    def __len__(self) -> int:
        return len(self.workers)

    def __getitem__(self, index: int):
        return self.workers[index]

    def __iter__(self):
        return iter(self.workers)

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def action_space(self):
        """The action space shared by all workers (delegates to worker 0)."""
        return self.workers[0].action_space

    @property
    def observation_space(self):
        return self.workers[0].observation_space

    @property
    def reward_space(self):
        return self.workers[0].reward_space

    @property
    def benchmark(self):
        return self.workers[0].benchmark

    @property
    def episode_rewards(self) -> List[Optional[float]]:
        """The cumulative episode reward of each worker."""
        return [getattr(worker, "episode_reward", None) for worker in self.workers]

    def connection_stats(self) -> Dict[str, Dict[str, float]]:
        """Aggregate service-call accounting across all pool workers.

        In-process workers share one connection (counted once); subprocess
        workers each report their own connection's summary.
        """
        summaries = []
        seen_services = set()
        for worker in self.workers:
            if getattr(type(worker), "is_remote", False):
                summaries.append(worker.stats_summary())
                continue
            service = getattr(worker, "service", None)
            if service is None or id(service) in seen_services:
                continue
            seen_services.add(id(service))
            summaries.append(service.stats_summary())
        return merge_stats_summaries(summaries)

    # -- batched Gym API ----------------------------------------------------

    def _check_open(self, operation: str) -> None:
        if self.closed:
            raise SessionNotFound(
                f"Cannot call {operation}() on a closed VecCompilerEnv"
            )

    def _check_batch(self, name: str, batch: Sequence[Any]) -> None:
        if len(batch) != self.num_envs:
            raise ValueError(
                f"{name} must have one entry per worker: "
                f"got {len(batch)}, expected {self.num_envs}"
            )

    def reset(
        self,
        benchmarks: Union[None, str, Sequence[Any]] = None,
        **kwargs,
    ) -> List[Any]:
        """Reset every worker, returning the batch of initial observations.

        ``benchmarks`` may be a single benchmark (applied to all workers) or
        a per-worker sequence; ``None`` keeps each worker's current benchmark.
        Extra keyword arguments are forwarded to every worker's ``reset()``.
        """
        self._check_open("reset")
        if "observation_space" in kwargs:
            self._default_space_ids.clear()
        if benchmarks is None or isinstance(benchmarks, (str, Benchmark)):
            per_worker = [benchmarks] * self.num_envs
        else:
            per_worker = list(benchmarks)
            self._check_batch("benchmarks", per_worker)

        def reset_one(pair):
            worker, benchmark = pair
            if benchmark is None:
                return worker.reset(**kwargs)
            return worker.reset(benchmark=benchmark, **kwargs)

        return self._backend.run(reset_one, list(zip(self.workers, per_worker)))

    def reset_worker(self, index: int, benchmark=None, **kwargs) -> Any:
        """Reset a single worker, returning its initial observation.

        Routed through the execution backend like every batched operation,
        so the call stays inside the pool's dispatch protocol (and its
        accounting) instead of blocking the caller on a direct worker
        round-trip — which matters under the process backend, where a direct
        ``workers[i].reset()`` is a synchronous pipe exchange that bypasses
        the dispatcher. Used by rollout collectors to re-assign one worker's
        benchmark mid-run without touching the rest of the pool.
        """
        self._check_open("reset_worker")
        worker = self.workers[index]
        if "observation_space" in kwargs:
            self._default_space_ids.pop(id(worker), None)

        def reset_one(target):
            if benchmark is None:
                return target.reset(**kwargs)
            return target.reset(benchmark=benchmark, **kwargs)

        return self._backend.run(reset_one, [worker])[0]

    def step(
        self,
        actions: Sequence[Any],
        observation_spaces: Optional[List[Any]] = None,
        reward_spaces: Optional[List[Any]] = None,
    ) -> Tuple[List[Any], List[Any], List[bool], List[dict]]:
        """Apply one action per worker. See :meth:`multistep`."""
        self._check_open("step")
        self._check_batch("actions", actions)
        return self.multistep(
            [None if action is None else [action] for action in actions],
            observation_spaces=observation_spaces,
            reward_spaces=reward_spaces,
        )

    def multistep(
        self,
        action_lists: Sequence[Optional[Iterable[Any]]],
        observation_spaces: Optional[List[Any]] = None,
        reward_spaces: Optional[List[Any]] = None,
    ) -> Tuple[List[Any], List[Any], List[bool], List[dict]]:
        """Apply a list of actions to each worker in one batched operation.

        Returns ``(observations, rewards, dones, infos)``, each a list with
        one entry per worker. A ``None`` entry in ``action_lists`` masks the
        corresponding worker out of the batch (its slot receives the
        :data:`SKIPPED_STEP` placeholder with ``done=True``), which is how
        rollout collectors handle workers whose episodes ended early when
        ``auto_reset`` is off. With ``auto_reset`` on, a worker that reports
        ``done`` is reset inside the same batched call: its observation slot
        holds the new episode's initial observation and the terminal
        observation is preserved in ``info["terminal_observation"]``.

        When every stepped worker shares one daemon connection that supports
        the batched-step RPC (and :attr:`use_batched_step` is on), the whole
        pool step travels as a single ``step_sessions`` round trip and the
        daemon executes the per-session steps concurrently; otherwise each
        worker's step is dispatched through the execution backend as its own
        service call.
        """
        self._check_open("multistep")
        self._check_batch("action_lists", action_lists)
        action_lists = list(action_lists)

        results = None
        if self.use_batched_step:
            results = self._batched_multistep(
                action_lists, observation_spaces, reward_spaces
            )
        if results is None:
            results = self._fanout_multistep(
                action_lists, observation_spaces, reward_spaces
            )
        observations = [result[0] for result in results]
        rewards = [result[1] for result in results]
        dones = [result[2] for result in results]
        infos = [result[3] for result in results]
        return observations, rewards, dones, infos

    def _fanout_multistep(
        self,
        action_lists: Sequence[Optional[Iterable[Any]]],
        observation_spaces: Optional[List[Any]],
        reward_spaces: Optional[List[Any]],
    ) -> List[Tuple[Any, Any, bool, dict]]:
        """One service call per worker, dispatched through the backend."""
        auto_reset = self.auto_reset

        def step_one(pair):
            worker, actions = pair
            if actions is None:
                return SKIPPED_STEP
            result = worker.multistep(
                list(actions),
                observation_spaces=observation_spaces,
                reward_spaces=reward_spaces,
            )
            if result[2] and auto_reset:
                result = self._auto_reset_worker(worker, result, observation_spaces)
            return result

        return self._backend.run(step_one, list(zip(self.workers, action_lists)))

    def _batched_multistep(
        self,
        action_lists: Sequence[Optional[Iterable[Any]]],
        observation_spaces: Optional[List[Any]],
        reward_spaces: Optional[List[Any]],
    ) -> Optional[List[Tuple[Any, Any, bool, dict]]]:
        """The whole pool step as one ``step_sessions`` RPC.

        Returns ``None`` when the pool does not qualify — fewer than two
        actionable workers, a worker whose ``multistep`` is wrapped or
        overridden, workers on different (or batching-unaware) connections,
        or a worker outside an episode (the per-worker path owns that error)
        — in which case the caller falls back to :meth:`_fanout_multistep`.
        """
        from repro.core.env import CompilerEnv

        actionable = [
            (index, worker, actions)
            for index, (worker, actions) in enumerate(zip(self.workers, action_lists))
            if actions is not None
        ]
        if len(actionable) < 2:
            return None
        connection = None
        for _, worker, _ in actionable:
            # An exact-method check: any wrapper/override (TimeLimit, remote
            # proxies, test doubles) opts the pool out of batching, because
            # only the unmodified CompilerEnv.multistep splits into the
            # prepare/finish phases the batch path re-composes.
            if getattr(type(worker), "multistep", None) is not CompilerEnv.multistep:
                return None
            if not worker.in_episode:
                return None
            service = getattr(worker, "service", None)
            if connection is None:
                connection = service
            elif service is not connection:
                return None
        if connection is None or not getattr(connection, "supports_step_sessions", False):
            return None

        prepared = []
        requests = []
        for index, worker, actions in actionable:
            request, context = worker._prepare_multistep(
                list(actions), observation_spaces, reward_spaces
            )
            prepared.append((index, worker, context))
            requests.append(request)

        results: List[Tuple[Any, Any, bool, dict]] = [SKIPPED_STEP] * self.num_envs
        try:
            outcomes = connection.step_sessions(requests)
        except (ServiceError, SessionNotFound) as error:
            # The batch RPC itself failed (transport loss, daemon death).
            # Mirror the per-worker fault-tolerance contract: every stepped
            # worker ends its episode with the error defaults.
            for index, worker, context in prepared:
                results[index] = worker._finish_multistep_error(error, context)
        else:
            for (index, worker, context), outcome in zip(prepared, outcomes):
                if outcome.error is None:
                    results[index] = worker._finish_multistep(outcome.reply, context)
                    continue
                error = outcome.error
                if isinstance(error, (ServiceError, SessionNotFound)):
                    result = worker._finish_multistep_error(error, context)
                    if isinstance(error, ServiceIsDown):
                        # Graceful degradation: the gateway reported this
                        # session's fleet member down while siblings kept
                        # stepping. Mark the slot so collectors can tell a
                        # partial outage from an ordinary compile failure.
                        result[3]["service_is_down"] = True
                    results[index] = result
                elif isinstance(error, (CompilerGymError, LookupError)):
                    # The per-worker path would raise these through; so does
                    # the batch (after every other worker's result above was
                    # applied — siblings keep their state consistent).
                    raise error
                else:
                    # A generic daemon-side exception: wrap it non-retryable,
                    # exactly as the transport does for unbatched calls.
                    results[index] = worker._finish_multistep_error(
                        ServiceError(
                            f"Compiler service error in step(): "
                            f"{type(error).__name__}: {error}"
                        ),
                        context,
                    )

        if self.auto_reset:
            reset_indices = [index for index, _, _ in prepared if results[index][2]]
            if reset_indices:
                def reset_one(index):
                    return self._auto_reset_worker(
                        self.workers[index], results[index], observation_spaces
                    )

                for index, result in zip(
                    reset_indices, self._backend.run(reset_one, reset_indices)
                ):
                    results[index] = result
        return results

    def _default_space_id(self, worker) -> Optional[str]:
        """The worker's default observation-space id, cached (it is static
        metadata — for subprocess proxies the lookup is a round trip)."""
        key = id(worker)
        if key not in self._default_space_ids:
            spec = getattr(worker, "observation_space_spec", None)
            self._default_space_ids[key] = getattr(spec, "id", None)
        return self._default_space_ids[key]

    def _auto_reset_worker(
        self, worker, result: Tuple[Any, Any, bool, dict], observation_spaces
    ) -> Tuple[Any, Any, bool, dict]:
        """Reset a finished worker in-place per the auto-reset contract."""
        observation, reward, done, info = result
        info = dict(info)
        info["terminal_observation"] = observation
        observation = worker.reset()
        if observation_spaces is not None:
            # The caller asked for explicit spaces; the new episode's initial
            # observation must be expressed in those, not the worker's
            # default space. When the request is exactly the default space,
            # reset() already produced it — skip the re-fetch round trip.
            requested = [getattr(space, "id", space) for space in observation_spaces]
            if requested == [self._default_space_id(worker)]:
                observation = [observation]
            else:
                observation = _fetch_observations(worker, requested)
        return observation, reward, done, info

    def observations(self, spaces: Union[str, Sequence[str]]) -> List[Any]:
        """Batched observation fetch across all workers.

        With a single space name, returns one observation per worker. With a
        sequence of names, returns a list per worker, one entry per requested
        space. Observations are computed concurrently under the thread and
        process pool backends, which matters for the expensive spaces (e.g.
        Programl).
        """
        self._check_open("observations")
        single = isinstance(spaces, str)
        names = [spaces] if single else list(spaces)

        def observe_one(worker):
            values = _fetch_observations(worker, names)
            return values[0] if single else values

        return self._backend.run(observe_one, self.workers)

    # -- dynamic pool sizing ------------------------------------------------

    def resize(self, n: int) -> int:
        """Grow or shrink the pool to ``n`` workers, returning the new size.

        Growing forks worker 0 (an in-process fork, or a subprocess clone
        that replays worker 0's session under the process backend), so new
        workers start from worker 0's current benchmark and session state —
        resize at an episode boundary, or reset the pool afterwards, for a
        clean slate. Shrinking retires (closes) workers from the end of the
        pool. The owned backend's capacity is adjusted to match.
        """
        self._check_open("resize")
        if n < 1:
            raise ValueError(f"VecCompilerEnv requires n >= 1, got {n}")
        # Pool membership is changing; drop the per-worker metadata cache
        # (id()s of retired workers may be recycled by new ones).
        self._default_space_ids.clear()
        errors: List[Exception] = []
        while len(self.workers) > n:
            worker = self.workers.pop()
            try:
                worker.close()
            except Exception as error:  # noqa: BLE001 - retire the rest first
                errors.append(error)
        if len(self.workers) < n:
            template = self.workers[0]
            expected_chain = self._wrapper_chain(template)
            while len(self.workers) < n:
                worker = template.fork()
                if (
                    self._worker_wrapper is not None
                    and self._wrapper_chain(worker) != expected_chain
                ):
                    # Some wrapper in the template's chain lacks a fork()
                    # override (the base CompilerEnvWrapper returns its
                    # inner fork), so the chain did not survive. Discard the
                    # partial fork and rebuild from the unwrapped session,
                    # re-applying the pool's wrapper (its state starts
                    # fresh).
                    close_quietly(worker)
                    base = getattr(template, "unwrapped", template)
                    worker = self._worker_wrapper(base.fork())
                # Daemon-attached forks stay on the template's shared
                # connection: the multiplexed socket overlaps their RPCs and
                # qualifies the grown pool for batched stepping.
                self.workers.append(worker)
        if self._owns_backend:
            self._backend.resize(n)
        if errors:
            raise self._aggregate_errors("resize", errors)
        return self.num_envs

    @staticmethod
    def _wrapper_chain(worker) -> List[type]:
        """The types of the worker's wrapper chain, outermost first.

        Walks instance ``env`` attributes directly (never ``__getattr__``
        delegation), so subprocess proxies and raw environments yield a
        single-element chain.
        """
        chain: List[type] = []
        seen = set()
        while worker is not None and id(worker) not in seen:
            seen.add(id(worker))
            chain.append(type(worker))
            worker = getattr(worker, "__dict__", {}).get("env")
        return chain

    # -- lifecycle ----------------------------------------------------------

    @staticmethod
    def _aggregate_errors(operation: str, errors: List[Exception]) -> Exception:
        """Combine multiple worker errors: raise the first, carry the rest.

        The suppressed errors are logged and attached to the primary
        exception as ``suppressed_errors`` so multi-worker teardown failures
        stay diagnosable.
        """
        primary = errors[0]
        if len(errors) > 1:
            logger.warning(
                "VecCompilerEnv.%s(): %d additional worker error(s) suppressed "
                "behind %r: %s",
                operation,
                len(errors) - 1,
                primary,
                "; ".join(repr(error) for error in errors[1:]),
            )
        try:
            primary.suppressed_errors = tuple(errors[1:])
        except Exception:  # noqa: BLE001 - exotic exceptions may refuse attributes
            pass
        return primary

    def close(self) -> None:
        """Close every worker and the owned backend. Idempotent.

        Every worker is closed even if some fail; the first failure is
        re-raised afterwards with the remaining ones logged and attached as
        ``suppressed_errors``.
        """
        if self.closed:
            return
        self.closed = True
        errors: List[Exception] = []
        for worker in self.workers:
            try:
                worker.close()
            except Exception as error:  # noqa: BLE001 - close all before raising
                errors.append(error)
        if self._owns_backend:
            self._backend.close()
        if errors:
            raise self._aggregate_errors("close", errors)

    def __enter__(self) -> "VecCompilerEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass

    def __repr__(self) -> str:
        return (
            f"VecCompilerEnv(n={self.num_envs}, backend={self._backend.name}, "
            f"worker={self.workers[0]!r})"
        )


def make_vec_env(
    env_id: Optional[str] = None,
    n: int = 1,
    backend: Union[str, ExecutionBackend, None] = None,
    env=None,
    worker_wrapper: Optional[Callable[[Any], Any]] = None,
    auto_reset: bool = False,
    use_batched_step: bool = True,
    **make_kwargs,
) -> VecCompilerEnv:
    """Construct a :class:`VecCompilerEnv` from an environment ID or instance.

    >>> vec = make_vec_env("llvm-v0", n=4, backend="thread",
    ...                    benchmark="cbench-v1/qsort",
    ...                    reward_space="IrInstructionCount")
    """
    if (env_id is None) == (env is None):
        raise ValueError("Provide exactly one of env_id or env")
    owns_root = env is None
    if owns_root:
        from repro.core.registration import make

        env = make(env_id, **make_kwargs)
    elif make_kwargs:
        raise ValueError("make_kwargs are only valid with env_id")
    try:
        return VecCompilerEnv(
            env,
            n=n,
            backend=backend,
            worker_wrapper=worker_wrapper,
            auto_reset=auto_reset,
            use_batched_step=use_batched_step,
        )
    except Exception:
        # Pool construction failed. A caller-provided env remains the
        # caller's to close, but an env we constructed from env_id here
        # would leak its service if we didn't release it before re-raising.
        if owns_root:
            close_quietly(env)
        raise
