"""A vectorized pool of compiler environments.

:class:`VecCompilerEnv` drives N compilation sessions through a single
batched ``reset``/``step``/``multistep`` interface, the standard substrate
for parallel policy rollout and parallel autotuning in gym-style systems.

The pool is populated by *forking*: one root environment is ``fork()``-ed
N−1 times, so service startup, benchmark initialization, and the service's
benchmark cache are paid once and shared by every worker — the cheap session
cloning that the source paper's environments-as-a-service architecture is
built around. Batches are executed by a pluggable
:class:`~repro.core.vector.backends.ExecutionBackend`.
"""

from typing import Any, Callable, Iterable, List, Optional, Sequence, Tuple, Union

from repro.core.datasets import Benchmark
from repro.core.vector.backends import ExecutionBackend, resolve_backend
from repro.errors import SessionNotFound

# Placeholder result returned for workers whose slot in a batched step was
# ``None`` (i.e. masked out, typically because their episode already ended).
SKIPPED_STEP = (None, None, True, {"skipped": True})


class VecCompilerEnv:
    """A fixed-size pool of environments with a batched Gym-style interface.

    Args:
        env: The root environment. It becomes worker 0 and is forked to
            populate the rest of the pool. The pool takes ownership: closing
            the pool closes the root too.
        n: The number of workers (must be >= 1).
        backend: Execution backend: ``"serial"`` (default), ``"thread"``, or
            an :class:`ExecutionBackend` instance. A string-constructed
            backend is owned (and closed) by the pool; an instance is not.
        worker_wrapper: Optional callable applied to every worker (including
            the root) after forking, e.g. to impose a ``TimeLimit``. The
            wrapper must preserve the ``CompilerEnv`` interface.
    """

    def __init__(
        self,
        env,
        n: int,
        backend: Union[str, ExecutionBackend, None] = None,
        worker_wrapper: Optional[Callable[[Any], Any]] = None,
    ):
        if n < 1:
            raise ValueError(f"VecCompilerEnv requires n >= 1, got {n}")
        self._backend = resolve_backend(backend, n)
        self._owns_backend = not isinstance(backend, ExecutionBackend)
        self.closed = False
        self.workers: List[Any] = []

        workers = [env]
        try:
            for _ in range(n - 1):
                workers.append(env.fork())
            if worker_wrapper is not None:
                workers = [worker_wrapper(worker) for worker in workers]
        except Exception:
            # Construction failed partway: release the forked sessions (the
            # caller still owns the root env) and any backend we created.
            for worker in workers[1:]:
                try:
                    worker.close()
                except Exception:  # noqa: BLE001 - best-effort cleanup
                    pass
            if self._owns_backend:
                self._backend.close()
            raise
        self.workers = workers

    # -- pool introspection -------------------------------------------------

    @property
    def num_envs(self) -> int:
        return len(self.workers)

    def __len__(self) -> int:
        return len(self.workers)

    def __getitem__(self, index: int):
        return self.workers[index]

    def __iter__(self):
        return iter(self.workers)

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    @property
    def action_space(self):
        """The action space shared by all workers (delegates to worker 0)."""
        return self.workers[0].action_space

    @property
    def observation_space(self):
        return self.workers[0].observation_space

    @property
    def reward_space(self):
        return self.workers[0].reward_space

    @property
    def benchmark(self):
        return self.workers[0].benchmark

    @property
    def episode_rewards(self) -> List[Optional[float]]:
        """The cumulative episode reward of each worker."""
        return [getattr(worker, "episode_reward", None) for worker in self.workers]

    # -- batched Gym API ----------------------------------------------------

    def _check_open(self, operation: str) -> None:
        if self.closed:
            raise SessionNotFound(
                f"Cannot call {operation}() on a closed VecCompilerEnv"
            )

    def _check_batch(self, name: str, batch: Sequence[Any]) -> None:
        if len(batch) != self.num_envs:
            raise ValueError(
                f"{name} must have one entry per worker: "
                f"got {len(batch)}, expected {self.num_envs}"
            )

    def reset(
        self,
        benchmarks: Union[None, str, Sequence[Any]] = None,
        **kwargs,
    ) -> List[Any]:
        """Reset every worker, returning the batch of initial observations.

        ``benchmarks`` may be a single benchmark (applied to all workers) or
        a per-worker sequence; ``None`` keeps each worker's current benchmark.
        Extra keyword arguments are forwarded to every worker's ``reset()``.
        """
        self._check_open("reset")
        if benchmarks is None or isinstance(benchmarks, (str, Benchmark)):
            per_worker = [benchmarks] * self.num_envs
        else:
            per_worker = list(benchmarks)
            self._check_batch("benchmarks", per_worker)

        def reset_one(pair):
            worker, benchmark = pair
            if benchmark is None:
                return worker.reset(**kwargs)
            return worker.reset(benchmark=benchmark, **kwargs)

        return self._backend.run(reset_one, list(zip(self.workers, per_worker)))

    def step(
        self,
        actions: Sequence[Any],
        observation_spaces: Optional[List[Any]] = None,
        reward_spaces: Optional[List[Any]] = None,
    ) -> Tuple[List[Any], List[Any], List[bool], List[dict]]:
        """Apply one action per worker. See :meth:`multistep`."""
        self._check_open("step")
        self._check_batch("actions", actions)
        return self.multistep(
            [None if action is None else [action] for action in actions],
            observation_spaces=observation_spaces,
            reward_spaces=reward_spaces,
        )

    def multistep(
        self,
        action_lists: Sequence[Optional[Iterable[Any]]],
        observation_spaces: Optional[List[Any]] = None,
        reward_spaces: Optional[List[Any]] = None,
    ) -> Tuple[List[Any], List[Any], List[bool], List[dict]]:
        """Apply a list of actions to each worker in one batched operation.

        Returns ``(observations, rewards, dones, infos)``, each a list with
        one entry per worker. A ``None`` entry in ``action_lists`` masks the
        corresponding worker out of the batch (its slot receives the
        :data:`SKIPPED_STEP` placeholder with ``done=True``), which is how
        rollout collectors handle workers whose episodes ended early.
        """
        self._check_open("multistep")
        self._check_batch("action_lists", action_lists)

        def step_one(pair):
            worker, actions = pair
            if actions is None:
                return SKIPPED_STEP
            return worker.multistep(
                list(actions),
                observation_spaces=observation_spaces,
                reward_spaces=reward_spaces,
            )

        results = self._backend.run(step_one, list(zip(self.workers, action_lists)))
        observations = [result[0] for result in results]
        rewards = [result[1] for result in results]
        dones = [result[2] for result in results]
        infos = [result[3] for result in results]
        return observations, rewards, dones, infos

    def observations(self, spaces: Union[str, Sequence[str]]) -> List[Any]:
        """Batched observation fetch across all workers.

        With a single space name, returns one observation per worker. With a
        sequence of names, returns a list per worker, one entry per requested
        space. Observations are computed concurrently under the thread pool
        backend, which matters for the expensive spaces (e.g. Programl).
        """
        self._check_open("observations")
        single = isinstance(spaces, str)
        names = [spaces] if single else list(spaces)

        def observe_one(worker):
            values = [worker.observation[name] for name in names]
            return values[0] if single else values

        return self._backend.run(observe_one, self.workers)

    # -- lifecycle ----------------------------------------------------------

    def close(self) -> None:
        """Close every worker and the owned backend. Idempotent."""
        if self.closed:
            return
        self.closed = True
        errors: List[Exception] = []
        for worker in self.workers:
            try:
                worker.close()
            except Exception as error:  # noqa: BLE001 - close all before raising
                errors.append(error)
        if self._owns_backend:
            self._backend.close()
        if errors:
            raise errors[0]

    def __enter__(self) -> "VecCompilerEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass

    def __repr__(self) -> str:
        return (
            f"VecCompilerEnv(n={self.num_envs}, backend={self._backend.name}, "
            f"worker={self.workers[0]!r})"
        )


def make_vec_env(
    env_id: Optional[str] = None,
    n: int = 1,
    backend: Union[str, ExecutionBackend, None] = None,
    env=None,
    worker_wrapper: Optional[Callable[[Any], Any]] = None,
    **make_kwargs,
) -> VecCompilerEnv:
    """Construct a :class:`VecCompilerEnv` from an environment ID or instance.

    >>> vec = make_vec_env("llvm-v0", n=4, backend="thread",
    ...                    benchmark="cbench-v1/qsort",
    ...                    reward_space="IrInstructionCount")
    """
    if (env_id is None) == (env is None):
        raise ValueError("Provide exactly one of env_id or env")
    if env is None:
        from repro.core.registration import make

        env = make(env_id, **make_kwargs)
    elif make_kwargs:
        raise ValueError("make_kwargs are only valid with env_id")
    return VecCompilerEnv(env, n=n, backend=backend, worker_wrapper=worker_wrapper)
