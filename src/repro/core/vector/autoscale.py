"""Autoscaling policies for :class:`~repro.core.vector.VecCompilerEnv`.

A policy turns the pool's aggregated service-call accounting
(:meth:`VecCompilerEnv.connection_stats`) into resize decisions: scale the
worker count up while the service tier has headroom, back off when calls
slow down or start failing. Policies are plain callables —
``policy(stats, current_workers) -> Optional[int]`` — returning the target
pool size, or ``None`` to leave the pool alone; the rollout collector
(:func:`repro.rl.trainer.run_vec_rollouts`) applies the returned target with
:meth:`VecCompilerEnv.resize`.

The shipped :class:`AutoscalePolicy` reasons about *interval* statistics: it
keeps the previous ``connection_stats()`` snapshot and diffs against it, so
each decision reflects recent behaviour rather than the whole run's average.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

# Methods whose latency reflects steady-state per-step service load (rather
# than one-off session setup).
_STEP_METHODS = ("step", "multistep")


def interval_delta(
    previous: Dict[str, Dict[str, float]], current: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-method difference between two ``connection_stats()`` snapshots.

    Counters are monotonic while a pool's membership is stable, but a resize
    *retires* workers (and their accounting). A negative delta on any of a
    method's keys means the interval straddled such a membership change, so
    the *whole method* restarts its interval from the current snapshot —
    clamping keys independently could pair interval call counts with
    cumulative wall time and fabricate absurd mean latencies.
    """
    delta: Dict[str, Dict[str, float]] = {}
    for method, stats in current.items():
        before = previous.get(method, {})
        diffs = {key: value - before.get(key, 0) for key, value in stats.items()}
        delta[method] = dict(stats) if any(d < 0 for d in diffs.values()) else diffs
    return delta


@dataclass
class AutoscalePolicy:
    """Latency/error-driven pool sizing over ``connection_stats()`` snapshots.

    Decision rules, evaluated over the statistics accumulated since the
    previous call:

    1. No step-like calls in the interval: no decision (``None``).
    2. Error rate (errors / calls, across all methods) above
       ``max_error_rate``: shrink by ``step_size`` — the service tier is
       failing, adding load would amplify it.
    3. Mean step latency above ``scale_down_latency_s``: shrink by
       ``step_size`` — the service is saturated and per-call time is
       suffering.
    4. Mean step latency below ``scale_up_latency_s``: grow by
       ``step_size`` — calls are fast, there is headroom for more
       concurrent sessions.

    Targets are clamped to ``[min_workers, max_workers]``; a target equal to
    the current size is reported as ``None`` (no change).
    """

    min_workers: int = 1
    max_workers: int = 8
    scale_up_latency_s: float = 0.05
    scale_down_latency_s: float = 0.5
    max_error_rate: float = 0.1
    step_size: int = 1
    _previous: Dict[str, Dict[str, float]] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"AutoscalePolicy requires 1 <= min_workers <= max_workers, got "
                f"[{self.min_workers}, {self.max_workers}]"
            )
        if self.scale_up_latency_s > self.scale_down_latency_s:
            raise ValueError(
                "AutoscalePolicy requires scale_up_latency_s <= scale_down_latency_s "
                f"(got {self.scale_up_latency_s} > {self.scale_down_latency_s})"
            )

    def __call__(
        self, stats: Dict[str, Dict[str, float]], current_workers: int
    ) -> Optional[int]:
        interval = interval_delta(self._previous, stats)
        self._previous = stats

        step_calls = sum(interval.get(m, {}).get("calls", 0) for m in _STEP_METHODS)
        step_wall = sum(interval.get(m, {}).get("wall_time_s", 0.0) for m in _STEP_METHODS)
        # CallStats only records `calls` for successes, so a failed RPC shows
        # up in `errors` alone: attempts = calls + errors. The error check
        # runs before the step-activity gate — an interval where every step
        # FAILED has step_calls == 0 and is precisely when backing off
        # matters most.
        total_calls = sum(entry.get("calls", 0) for entry in interval.values())
        total_errors = sum(entry.get("errors", 0) for entry in interval.values())
        total_attempts = total_calls + total_errors
        if total_attempts <= 0:
            return None

        target = current_workers
        if total_errors / total_attempts > self.max_error_rate:
            target = current_workers - self.step_size
        elif step_calls <= 0:
            return None
        else:
            mean_step_latency = step_wall / step_calls
            if mean_step_latency > self.scale_down_latency_s:
                target = current_workers - self.step_size
            elif mean_step_latency < self.scale_up_latency_s:
                target = current_workers + self.step_size
        target = max(self.min_workers, min(self.max_workers, target))
        return None if target == current_workers else target


def autoscale_policy(
    stats: Dict[str, Dict[str, float]],
    current_workers: int,
    *,
    min_workers: int = 1,
    max_workers: int = 8,
    scale_up_latency_s: float = 0.05,
    scale_down_latency_s: float = 0.5,
    max_error_rate: float = 0.1,
) -> Optional[int]:
    """One-shot functional form of :class:`AutoscalePolicy`.

    Stateless: ``stats`` is interpreted as the interval itself (useful when
    the caller already diffs snapshots, or at the first decision of a run).
    Returns the target worker count, or ``None`` for no change.
    """
    policy = AutoscalePolicy(
        min_workers=min_workers,
        max_workers=max_workers,
        scale_up_latency_s=scale_up_latency_s,
        scale_down_latency_s=scale_down_latency_s,
        max_error_rate=max_error_rate,
    )
    return policy(stats, current_workers)
