"""Autoscaling policies for :class:`~repro.core.vector.VecCompilerEnv`.

A policy turns the pool's aggregated service-call accounting
(:meth:`VecCompilerEnv.connection_stats`) into resize decisions: scale the
worker count up while the service tier has headroom, back off when calls
slow down or start failing. Policies are plain callables —
``policy(stats, current_workers) -> Optional[int]`` — returning the target
pool size, or ``None`` to leave the pool alone; the rollout collector
(:func:`repro.rl.trainer.run_vec_rollouts`) applies the returned target with
:meth:`VecCompilerEnv.resize`.

The shipped :class:`AutoscalePolicy` reasons about *interval* statistics: it
keeps the previous ``connection_stats()`` snapshot and diffs against it, so
each decision reflects recent behaviour rather than the whole run's average.
"""

from dataclasses import dataclass, field
from typing import Dict, Optional

# Methods whose latency reflects steady-state per-step service load (rather
# than one-off session setup).
_STEP_METHODS = ("step", "multistep")


def interval_delta(
    previous: Dict[str, Dict[str, float]], current: Dict[str, Dict[str, float]]
) -> Dict[str, Dict[str, float]]:
    """Per-method difference between two ``connection_stats()`` snapshots.

    Counters are monotonic while a pool's membership is stable, but a resize
    *retires* workers (and their accounting). A negative delta on any of a
    method's keys means the interval straddled such a membership change, so
    the *whole method* restarts its interval from the current snapshot —
    clamping keys independently could pair interval call counts with
    cumulative wall time and fabricate absurd mean latencies.
    """
    delta: Dict[str, Dict[str, float]] = {}
    for method, stats in current.items():
        before = previous.get(method, {})
        diffs = {key: value - before.get(key, 0) for key, value in stats.items()}
        delta[method] = dict(stats) if any(d < 0 for d in diffs.values()) else diffs
    return delta


@dataclass
class AutoscalePolicy:
    """Latency/error-driven pool sizing over ``connection_stats()`` snapshots.

    Decision rules, evaluated over the statistics accumulated since the
    previous call:

    1. No step-like calls in the interval: no decision (``None``).
    2. Error rate (errors / calls, across all methods) above
       ``max_error_rate``: shrink by ``step_size`` — the service tier is
       failing, adding load would amplify it.
    3. Mean step latency above ``scale_down_latency_s``: shrink by
       ``step_size`` — the service is saturated and per-call time is
       suffering.
    4. Mean step latency below ``scale_up_latency_s``: grow by
       ``step_size`` — calls are fast, there is headroom for more
       concurrent sessions.

    Targets are clamped to ``[min_workers, max_workers]``; a target equal to
    the current size is reported as ``None`` (no change).
    """

    min_workers: int = 1
    max_workers: int = 8
    scale_up_latency_s: float = 0.05
    scale_down_latency_s: float = 0.5
    max_error_rate: float = 0.1
    step_size: int = 1
    _previous: Dict[str, Dict[str, float]] = field(default_factory=dict, repr=False)

    def __post_init__(self):
        if not 1 <= self.min_workers <= self.max_workers:
            raise ValueError(
                f"AutoscalePolicy requires 1 <= min_workers <= max_workers, got "
                f"[{self.min_workers}, {self.max_workers}]"
            )
        if self.scale_up_latency_s > self.scale_down_latency_s:
            raise ValueError(
                "AutoscalePolicy requires scale_up_latency_s <= scale_down_latency_s "
                f"(got {self.scale_up_latency_s} > {self.scale_down_latency_s})"
            )

    def __call__(
        self, stats: Dict[str, Dict[str, float]], current_workers: int
    ) -> Optional[int]:
        interval = interval_delta(self._previous, stats)
        self._previous = stats

        step_calls = sum(interval.get(m, {}).get("calls", 0) for m in _STEP_METHODS)
        step_wall = sum(interval.get(m, {}).get("wall_time_s", 0.0) for m in _STEP_METHODS)
        # CallStats only records `calls` for successes, so a failed RPC shows
        # up in `errors` alone: attempts = calls + errors. The error check
        # runs before the step-activity gate — an interval where every step
        # FAILED has step_calls == 0 and is precisely when backing off
        # matters most.
        total_calls = sum(entry.get("calls", 0) for entry in interval.values())
        total_errors = sum(entry.get("errors", 0) for entry in interval.values())
        total_attempts = total_calls + total_errors
        if total_attempts <= 0:
            return None

        target = current_workers
        if total_errors / total_attempts > self.max_error_rate:
            target = current_workers - self.step_size
        elif step_calls <= 0:
            return None
        else:
            mean_step_latency = step_wall / step_calls
            if mean_step_latency > self.scale_down_latency_s:
                target = current_workers - self.step_size
            elif mean_step_latency < self.scale_up_latency_s:
                target = current_workers + self.step_size
        target = max(self.min_workers, min(self.max_workers, target))
        return None if target == current_workers else target


@dataclass
class FleetAutoscalePolicy:
    """Daemon-count sizing for a :class:`~repro.core.service.gateway.
    ServiceGateway` over aggregated per-daemon call accounting.

    Where :class:`AutoscalePolicy` resizes one pool of workers against one
    service, this sizes the *fleet itself*: the gateway feeds it a
    ``{daemon_url: stats_summary()}`` mapping (one entry per live daemon) and
    the current daemon count, and it returns the target count — applied by
    :meth:`ServiceGateway.scale_to` as spawn/drain operations — or ``None``
    for no change.

    Interval accounting is kept *per daemon* before aggregation: when a
    daemon dies and is replaced, its successor's counters restart from zero,
    and diffing fleet-wide totals would see a regression and discard the
    whole interval. Per-daemon diffs localize the reset to the one member
    that actually changed (handled by :func:`interval_delta`'s restart rule);
    daemons that vanished from the snapshot simply drop out. The aggregated
    interval is then judged by the same latency/error rules as
    :class:`AutoscalePolicy`, via :func:`autoscale_policy`.
    """

    min_daemons: int = 1
    max_daemons: int = 8
    scale_up_latency_s: float = 0.05
    scale_down_latency_s: float = 0.5
    max_error_rate: float = 0.1
    step_size: int = 1
    _previous: Dict[str, Dict[str, Dict[str, float]]] = field(
        default_factory=dict, repr=False
    )

    def __post_init__(self):
        if not 1 <= self.min_daemons <= self.max_daemons:
            raise ValueError(
                f"FleetAutoscalePolicy requires 1 <= min_daemons <= max_daemons, "
                f"got [{self.min_daemons}, {self.max_daemons}]"
            )
        if self.scale_up_latency_s > self.scale_down_latency_s:
            raise ValueError(
                "FleetAutoscalePolicy requires scale_up_latency_s <= "
                f"scale_down_latency_s (got {self.scale_up_latency_s} > "
                f"{self.scale_down_latency_s})"
            )

    def __call__(
        self,
        per_daemon_stats: Dict[str, Dict[str, Dict[str, float]]],
        current_daemons: int,
    ) -> Optional[int]:
        aggregated: Dict[str, Dict[str, float]] = {}
        for key, stats in per_daemon_stats.items():
            interval = interval_delta(self._previous.get(key, {}), stats)
            for method, entry in interval.items():
                into = aggregated.setdefault(method, {})
                for stat, value in entry.items():
                    into[stat] = into.get(stat, 0) + value
        self._previous = {
            key: {method: dict(entry) for method, entry in stats.items()}
            for key, stats in per_daemon_stats.items()
        }
        return autoscale_policy(
            aggregated,
            current_daemons,
            min_workers=self.min_daemons,
            max_workers=self.max_daemons,
            scale_up_latency_s=self.scale_up_latency_s,
            scale_down_latency_s=self.scale_down_latency_s,
            max_error_rate=self.max_error_rate,
            step_size=self.step_size,
        )


def autoscale_policy(
    stats: Dict[str, Dict[str, float]],
    current_workers: int,
    *,
    min_workers: int = 1,
    max_workers: int = 8,
    scale_up_latency_s: float = 0.05,
    scale_down_latency_s: float = 0.5,
    max_error_rate: float = 0.1,
    step_size: int = 1,
) -> Optional[int]:
    """One-shot functional form of :class:`AutoscalePolicy`.

    Stateless: ``stats`` is interpreted as the interval itself (useful when
    the caller already diffs snapshots, or at the first decision of a run).
    Returns the target worker count, or ``None`` for no change.
    """
    policy = AutoscalePolicy(
        min_workers=min_workers,
        max_workers=max_workers,
        scale_up_latency_s=scale_up_latency_s,
        scale_down_latency_s=scale_down_latency_s,
        max_error_rate=max_error_rate,
        step_size=step_size,
    )
    return policy(stats, current_workers)
