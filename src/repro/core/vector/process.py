"""Process-pool execution backend for :class:`VecCompilerEnv`.

The serial and thread backends drive in-process sessions, which the GIL caps
for compute-bound workloads: no matter how many threads issue service calls,
at most one can be *computing* (compiling, analysing IR) at a time. The
:class:`ProcessPoolBackend` sidesteps the GIL by giving every pool worker its
own subprocess that owns a complete environment — compiler service runtime
included — so batched steps execute truly concurrently.

Because an environment (locks, live service runtime, lazy caches) cannot be
shipped across a process boundary, workers are *rebuilt* inside each
subprocess from a :class:`WorkerSpec`: a small picklable closure capturing
the environment's construction recipe (``repro.make`` ID and kwargs, from
``env.spec``), its current benchmark/observation/reward spaces, any action
history to replay, and an optional picklable ``worker_wrapper``. The parent
keeps one :class:`RemoteWorker` proxy per subprocess; proxies speak a small
pickled command protocol over a pipe and quack like a ``CompilerEnv``, so the
rest of the vector stack (and the trajectory-equivalence test suite) treats
local and remote workers identically.
"""

import multiprocessing
import pickle
import threading
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Optional

from repro.core.datasets import Benchmark
from repro.core.service.wire import REPLY_ERROR, REPLY_OK, send_reply
from repro.core.vector.backends import ThreadPoolBackend, close_quietly
from repro.errors import ServiceError, SessionNotFound


@dataclass(frozen=True)
class WorkerSpec:
    """A picklable recipe for rebuilding one pool worker in a subprocess."""

    env_id: str
    make_kwargs: Dict[str, Any] = field(default_factory=dict)
    benchmark: Optional[str] = None
    observation_space: Optional[str] = None
    reward_space: Optional[str] = None
    actions: Optional[List[Any]] = None
    worker_wrapper: Optional[Callable[[Any], Any]] = None

    @classmethod
    def from_env(cls, env, worker_wrapper: Optional[Callable[[Any], Any]] = None) -> "WorkerSpec":
        """Derive a spec from a live root environment.

        The environment must have been constructed by :func:`repro.make` (so
        it carries a ``spec`` construction record) and must be unwrapped —
        wrappers are applied per worker via ``worker_wrapper`` instead, which
        (like the spec itself) must be picklable.
        """
        from repro.core.wrappers.core import CompilerEnvWrapper

        if isinstance(env, CompilerEnvWrapper):
            raise ValueError(
                "The process backend needs the raw root environment; apply "
                "wrappers through worker_wrapper (a picklable callable) instead"
            )
        env_spec = getattr(env, "spec", None)
        if env_spec is None:
            raise ValueError(
                "The process backend can only rebuild environments created by "
                "repro.make() (or make_vec_env(env_id=...)): the root "
                "environment has no .spec construction record"
            )
        spec = cls(
            env_id=env_spec.id,
            make_kwargs=dict(env_spec.kwargs),
            benchmark=str(env.benchmark.uri) if env.benchmark is not None else None,
            observation_space=(
                env.observation_space_spec.id if env.observation_space_spec else None
            ),
            reward_space=env.reward_space.name if env.reward_space else None,
            actions=list(env.actions) if env.in_episode else None,
            worker_wrapper=worker_wrapper,
        )
        if not spec.make_kwargs.get("service_url"):
            # Only subprocess workers ship the spec across a process
            # boundary; daemon-attached workers (service_url) are built
            # in-process, so e.g. a lambda worker_wrapper is fine there.
            try:
                pickle.dumps(spec)
            except Exception as error:
                raise ValueError(
                    f"The process backend requires a picklable worker spec "
                    f"(environment kwargs and worker_wrapper): {error}"
                ) from error
        return spec

    def build(self, service_connection=None):
        """Construct the worker environment described by this spec.

        Runs inside the subprocess. The compiler session state is recreated
        by replaying the recorded action history on the unwrapped
        environment, after which the wrapper (if any) is applied fresh — the
        same semantics as the in-process backends, whose ``fork()``-based
        population also applies wrappers on top of cloned sessions.

        ``service_connection`` (daemon-attached, in-process builds only)
        hands the new worker an existing connection to share instead of
        opening its own — the multiplexed transport carries all sharers'
        RPCs concurrently. The caller owns the refcounting.
        """
        import repro  # noqa: F401 - ensure the environment registry is populated
        from repro.core.registration import make

        kwargs = dict(self.make_kwargs)
        if service_connection is not None:
            kwargs["service_connection"] = service_connection
        env = make(self.env_id, **kwargs)
        try:
            if self.benchmark is not None:
                env.benchmark = self.benchmark
            if self.observation_space is not None:
                env.observation_space = self.observation_space
            if self.reward_space is not None:
                env.reward_space = self.reward_space
            if self.actions is not None:
                env.reset()
                if self.actions:
                    env.multistep(self.actions)
            return env if self.worker_wrapper is None else self.worker_wrapper(env)
        except Exception:
            env.close()
            raise


def _dispatch(worker, command: str, payload):
    if command == "reset":
        return worker.reset(**payload)
    if command == "multistep":
        actions, observation_spaces, reward_spaces = payload
        return tuple(
            worker.multistep(
                actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
            )
        )
    if command == "observation":
        return [worker.observation[name] for name in payload]
    if command == "getattr":
        value = getattr(worker, payload)
        if callable(value):
            raise TypeError(
                f"{payload} is a method; use the explicit RemoteWorker protocol"
            )
        if isinstance(value, Benchmark):
            # Benchmarks may carry unpicklable payloads (validation
            # callbacks, backend programs); the parent only needs identity.
            return Benchmark(uri=str(value.uri), dynamic_config=value.dynamic_config)
        return value
    if command == "call":
        name, args, kwargs = payload
        return getattr(worker, name)(*args, **kwargs)
    if command == "state":
        unwrapped = getattr(worker, "unwrapped", worker)
        benchmark = getattr(worker, "benchmark", None)
        return {
            "benchmark": str(benchmark.uri) if benchmark is not None else None,
            "actions": list(unwrapped.actions),
            "in_episode": bool(unwrapped.in_episode),
        }
    if command == "stats":
        service = getattr(worker, "service", None)
        return service.stats_summary() if service is not None else {}
    raise ValueError(f"Unknown worker command: {command!r}")


def _worker_main(conn, spec: WorkerSpec) -> None:
    """Subprocess entry point: build the env, then serve commands until close.

    The command loop speaks the shared ``(status, payload)`` reply convention
    of :mod:`repro.core.service.wire` (:func:`send_reply` degrades
    unpicklable payloads to a :class:`ServiceError` instead of wedging the
    pipe); only the request vocabulary — environment commands rather than
    service RPCs — is specific to pool workers.
    """
    try:
        worker = spec.build()
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        send_reply(conn, REPLY_ERROR, error)
        conn.close()
        return
    send_reply(conn, REPLY_OK, None)
    try:
        while True:
            try:
                command, payload = conn.recv()
            except (EOFError, OSError):
                # Parent went away: release the session and exit.
                break
            if command == "close":
                try:
                    service = getattr(worker, "service", None)
                    stats = service.stats_summary() if service is not None else {}
                    worker.close()
                    send_reply(conn, REPLY_OK, stats)
                except BaseException as error:  # noqa: BLE001
                    send_reply(conn, REPLY_ERROR, error)
                break
            try:
                result = _dispatch(worker, command, payload)
            except BaseException as error:  # noqa: BLE001 - translated parent-side
                send_reply(conn, REPLY_ERROR, error)
            else:
                send_reply(conn, REPLY_OK, result)
    finally:
        try:
            worker.close()
        except Exception:  # noqa: BLE001 - already shutting down
            pass
        conn.close()


class _RemoteObservationView:
    """Minimal stand-in for ``env.observation``: batched ``view[space]`` fetches."""

    def __init__(self, worker: "RemoteWorker"):
        self._worker = worker

    def __getitem__(self, name: str):
        return self._worker._request("observation", [name])[0]


class RemoteWorker:
    """Parent-side proxy for an environment living in a subprocess.

    Implements the slice of the ``CompilerEnv`` interface that
    :class:`VecCompilerEnv` and the rollout/autotuning collectors drive:
    ``reset``/``step``/``multistep``/``fork``/``close``, ``observation[...]``
    lookups, and read access to simple attributes (``episode_reward``,
    ``actions``, ``action_space``, ...) via a ``getattr`` round-trip.
    """

    is_remote = True

    def __init__(self, ctx, spec: WorkerSpec, wait_ready: bool = True):
        self._ctx = ctx
        self._spec = spec
        self._lock = threading.Lock()
        self.closed = False
        self._ready = False
        self.final_stats: Dict[str, Dict[str, float]] = {}
        parent_conn, child_conn = ctx.Pipe()
        self._process = ctx.Process(
            target=_worker_main, args=(child_conn, spec), daemon=True
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        if wait_ready:
            self.wait_ready()

    # -- protocol plumbing -------------------------------------------------

    def wait_ready(self) -> "RemoteWorker":
        """Block until the subprocess has finished building its environment.

        Deferring this (``wait_ready=False`` at construction) lets a pool
        start all its subprocesses first and overlap their environment
        builds. On a build failure the subprocess is torn down and the error
        re-raised.
        """
        with self._lock:
            self._ensure_ready()
        return self

    def _ensure_ready(self) -> None:
        """Consume the build ack. The caller must hold ``self._lock``."""
        if self._ready:
            return
        try:
            self._receive()
        except BaseException:
            self._abandon()
            raise
        self._ready = True

    def _receive(self):
        try:
            status, result = self._conn.recv()
        except (EOFError, OSError) as error:
            raise ServiceError(
                f"Subprocess worker (pid={self._process.pid}) died: {error}"
            ) from error
        if status == REPLY_ERROR:
            raise result
        return result

    def _request(self, command: str, payload=None):
        with self._lock:
            if self.closed:
                raise SessionNotFound(
                    f"Cannot call {command} on a closed subprocess worker"
                )
            self._ensure_ready()
            try:
                self._conn.send((command, payload))
            except (OSError, BrokenPipeError) as error:
                raise ServiceError(
                    f"Subprocess worker (pid={self._process.pid}) is gone: {error}"
                ) from error
            return self._receive()

    def _abandon(self) -> None:
        """Tear down the subprocess without the close handshake."""
        self.closed = True
        try:
            self._conn.close()
        except Exception:  # noqa: BLE001
            pass
        if self._process.is_alive():
            self._process.terminate()
        self._process.join(timeout=5)

    # -- CompilerEnv-facing API -------------------------------------------

    def reset(self, benchmark=None, **kwargs):
        payload = dict(kwargs)
        if benchmark is not None:
            payload["benchmark"] = benchmark
        return self._request("reset", payload)

    def step(self, action, observation_spaces=None, reward_spaces=None):
        return self.multistep(
            [action], observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        return self._request(
            "multistep", (list(actions), observation_spaces, reward_spaces)
        )

    @property
    def observation(self) -> _RemoteObservationView:
        return _RemoteObservationView(self)

    def observations(self, names) -> List[Any]:
        """Fetch several observation spaces in one subprocess round trip."""
        return self._request("observation", list(names))

    def call(self, name: str, *args, **kwargs):
        """Invoke an arbitrary method on the subprocess environment."""
        return self._request("call", (name, args, kwargs))

    def stats_summary(self) -> Dict[str, Dict[str, float]]:
        """The subprocess connection's call accounting (final after close)."""
        if self.closed:
            return self.final_stats
        return self._request("stats")

    def fork(self) -> "RemoteWorker":
        """Clone this worker into a new subprocess.

        The new worker rebuilds the compiler session by replaying this
        worker's benchmark and action history; wrapper state (e.g. a
        ``TimeLimit`` budget) starts fresh, so forking mid-episode is best
        done at episode boundaries — which is where ``resize()`` under
        auto-reset rollouts lands anyway.
        """
        state = self._request("state")
        spec = replace(
            self._spec,
            benchmark=state["benchmark"] or self._spec.benchmark,
            actions=list(state["actions"]) if state["in_episode"] else None,
        )
        return RemoteWorker(self._ctx, spec)

    def close(self) -> None:
        if self.closed:
            return
        error: Optional[BaseException] = None
        try:
            with self._lock:
                if self.closed:  # An _ensure_ready failure may have abandoned us.
                    return
                try:
                    self._ensure_ready()
                except BaseException:
                    return  # The build failed; the subprocess is already gone.
                self.closed = True
                self._conn.send(("close", None))
                status, result = self._conn.recv()
            if status == REPLY_OK:
                self.final_stats = result or {}
            else:
                error = result
        except (EOFError, OSError, BrokenPipeError):
            pass  # The subprocess is already gone; nothing left to release.
        finally:
            self.closed = True
            try:
                self._conn.close()
            except Exception:  # noqa: BLE001
                pass
            self._process.join(timeout=10)
            if self._process.is_alive():
                self._process.terminate()
                self._process.join(timeout=5)
        if error is not None:
            raise error

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        return self._request("getattr", name)

    def __repr__(self) -> str:
        return (
            f"RemoteWorker(pid={self._process.pid}, env_id={self._spec.env_id!r}, "
            f"closed={self.closed})"
        )

    def __del__(self):
        try:
            if not self.closed:
                self._abandon()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass


class ProcessPoolBackend(ThreadPoolBackend):
    """Runs every pool worker in its own subprocess.

    Population ships a picklable :class:`WorkerSpec` to each subprocess
    instead of forking in-process. Batch execution reuses the
    :class:`ThreadPoolBackend` machinery, but here the pool is a *dispatcher*:
    its threads merely wait on pipe replies (releasing the GIL) while the
    actual environment compute runs concurrently in the worker processes.
    """

    name = "process"
    _thread_name_prefix = "vec-env-dispatch"

    def __init__(self, max_workers: Optional[int] = None, start_method: Optional[str] = None):
        # None keeps the executor's CPU-based default sizing (like
        # ThreadPoolBackend) so a directly-constructed instance can still
        # drive a whole pool of subprocesses concurrently.
        super().__init__(max_workers=max_workers)
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)

    def populate(self, env, n: int, worker_wrapper: Optional[Callable[[Any], Any]]) -> List[Any]:
        """Spawn ``n`` subprocess workers rebuilt from the root env's spec.

        On success the root environment is closed: its construction recipe
        and session state live on inside the subprocesses. On failure the
        root is left open for the caller and any subprocesses spawned so far
        are torn down.

        When the root environment is attached to a compiler service daemon
        (constructed with a ``service_url``), no subprocesses are spawned at
        all: the daemon *is* the out-of-process compute, so each worker is
        built in-process as another client of the daemon — one socket
        connection and one server-side session per worker. Pools created
        against the same daemon therefore reuse one long-lived service
        process, amortizing service startup across ``resize()`` calls, across
        pools, and across whole training runs.
        """
        spec = WorkerSpec.from_env(env, worker_wrapper)
        if spec.make_kwargs.get("service_url"):
            return self._populate_from_daemon(env, spec, n)
        workers: List[RemoteWorker] = []
        try:
            # Start every subprocess first, then wait for the build acks, so
            # the n environment builds overlap instead of running serially.
            for _ in range(n):
                workers.append(RemoteWorker(self._ctx, spec, wait_ready=False))
            for worker in workers:
                worker.wait_ready()
        except Exception:
            for worker in workers:
                close_quietly(worker)
            raise
        env.close()
        return workers

    def _populate_from_daemon(self, env, spec: WorkerSpec, n: int) -> List[Any]:
        """Build ``n`` daemon-attached client workers (sessions, not processes).

        All workers share one multiplexed socket connection: the first build
        opens it, the rest attach to it (refcounted, like ``fork()``), so
        concurrent RPCs overlap on the shared socket and the pool qualifies
        for batched ``step_sessions`` stepping — one round trip per pool
        step instead of one per worker. The daemon's per-session locking
        keeps the sessions isolated server-side. Builds after the first run
        on the dispatcher pool — each is several RPCs (session setup,
        action-history replay), so they overlap instead of running serially.
        """

        def build_shared(connection):
            if connection is None:
                return spec.build()
            connection.acquire()
            try:
                worker = spec.build(service_connection=connection)
            except BaseException:
                connection.release()
                raise
            # The worker must release its share of the connection on close,
            # exactly like a fork() of the first worker would.
            base = getattr(worker, "unwrapped", worker)
            base._owns_service = True
            return worker

        # The first worker is built synchronously: it establishes the shared
        # connection (a failure here leaves the root env open, per the
        # populate() contract).
        workers: List[Any] = [spec.build()]
        errors: List[BaseException] = []
        connection = getattr(
            getattr(workers[0], "unwrapped", workers[0]), "service", None
        )
        futures = [
            self._executor.submit(build_shared, connection) for _ in range(n - 1)
        ]
        for future in futures:
            try:
                workers.append(future.result())
            except Exception as error:  # noqa: BLE001 - collected below
                errors.append(error)
        if errors:
            for worker in workers:
                close_quietly(worker)
            raise errors[0]
        env.close()
        return workers
