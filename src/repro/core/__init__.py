"""Core CompilerGym-style environment framework.

This subpackage contains everything that is compiler-agnostic: the space
hierarchy, the :class:`CompilerEnv` Gym environment, benchmark/dataset
management, wrappers, the client/service runtime, state serialization, and
validation utilities.
"""

from repro.core.env import CompilerEnv
from repro.core.compiler_env_state import CompilerEnvState
from repro.core.registration import make, register, registered_env_ids
from repro.core.vector import VecCompilerEnv, make_vec_env

__all__ = [
    "CompilerEnv",
    "CompilerEnvState",
    "VecCompilerEnv",
    "make",
    "make_vec_env",
    "register",
    "registered_env_ids",
]
