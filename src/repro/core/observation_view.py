"""Lazy, per-space access to environment observations."""

from typing import Any, Callable, Dict, List, Optional

from repro.core.spaces.observation import ObservationSpaceSpec


class ObservationView:
    """Provides named access to an environment's observation spaces.

    Observations are computed lazily: ``env.observation["Autophase"]`` asks
    the backend for exactly that observation of the current state, rather than
    computing every space at every step. This is the mechanism behind the
    paper's "lazy and batched operations" API extension.
    """

    def __init__(
        self,
        raw_observation: Callable[[List[str]], List[Any]],
        spaces: List[ObservationSpaceSpec],
    ):
        self._raw_observation = raw_observation
        self.spaces: Dict[str, ObservationSpaceSpec] = {spec.id: spec for spec in spaces}

    def __getitem__(self, space: str) -> Any:
        """Compute and return an observation from the named space."""
        spec = self.spaces[space]
        # Derived spaces are computed client-side from a base backend space.
        base_id = getattr(spec, "base_id", spec.id)
        values = self._raw_observation([base_id])
        return spec.translate(values[0])

    def __getattr__(self, name: str) -> Any:
        # Allow attribute-style access, e.g. env.observation.Autophase().
        if name.startswith("_") or name in ("spaces",):
            raise AttributeError(name)
        if name in self.spaces:
            return lambda: self[name]
        raise AttributeError(name)

    def add_derived_space(
        self,
        id: str,  # noqa: A002 - match upstream API
        base_id: str,
        space,
        translate: Callable[[Any], Any],
        deterministic: Optional[bool] = None,
        platform_dependent: Optional[bool] = None,
    ) -> ObservationSpaceSpec:
        """Register a new observation space derived from an existing one.

        This supports the wrapper use-case of defining custom compiler
        analyses over an existing observation (e.g. a reduced feature vector
        computed from the IR text).
        """
        base = self.spaces[base_id]
        spec = ObservationSpaceSpec(
            id=id,
            index=len(self.spaces),
            space=space,
            translate=lambda value, _base=base, _translate=translate: _translate(
                _base.translate(value)
            ),
            deterministic=base.deterministic if deterministic is None else deterministic,
            platform_dependent=(
                base.platform_dependent if platform_dependent is None else platform_dependent
            ),
        )
        # The derived space is computed from the base space's raw observation.
        spec.base_id = base_id
        self.spaces[id] = spec
        return spec

    def raw_space_id(self, space: str) -> str:
        """Return the backend space that must be computed for ``space``."""
        spec = self.spaces[space]
        return getattr(spec, "base_id", spec.id)

    def __repr__(self) -> str:
        return f"ObservationView[{', '.join(sorted(self.spaces))}]"
