"""Space hierarchy used by observation, reward, and action spaces.

These spaces follow the semantics of ``gym.spaces`` (``sample()``,
``contains()``, ``seed()``) with the compiler-specific additions described in
the paper: named discrete spaces whose members are compiler flags/passes,
commandline spaces, scalar ranges, and sequence spaces for variable-length
observations such as IR text or graphs.
"""

from repro.core.spaces.space import Space
from repro.core.spaces.scalar import Scalar
from repro.core.spaces.discrete import Discrete
from repro.core.spaces.named_discrete import NamedDiscrete
from repro.core.spaces.box import Box
from repro.core.spaces.sequence import SequenceSpace
from repro.core.spaces.containers import DictSpace, TupleSpace
from repro.core.spaces.commandline import Commandline, CommandlineFlag
from repro.core.spaces.permutation import Permutation
from repro.core.spaces.reward import Reward, DefaultRewardFromObservation
from repro.core.spaces.observation import ObservationSpaceSpec

__all__ = [
    "Box",
    "Commandline",
    "CommandlineFlag",
    "DefaultRewardFromObservation",
    "DictSpace",
    "Discrete",
    "NamedDiscrete",
    "ObservationSpaceSpec",
    "Permutation",
    "Reward",
    "Scalar",
    "SequenceSpace",
    "Space",
    "TupleSpace",
]
