"""Discrete space whose members have names (e.g. compiler pass names)."""

from typing import Iterable, List, Optional, Union

from repro.core.spaces.discrete import Discrete


class NamedDiscrete(Discrete):
    """A :class:`Discrete` space in which every member has a string name.

    Used for compiler action spaces: members are optimization pass names for
    LLVM, flag settings for GCC, and cursor operations for loop_tool.
    """

    def __init__(self, items: Iterable[str], name: Optional[str] = None):
        self.names: List[str] = [str(item) for item in items]
        if not self.names:
            raise ValueError("NamedDiscrete requires at least one item")
        super().__init__(n=len(self.names), name=name)
        self._index = {item: i for i, item in enumerate(self.names)}

    def __getitem__(self, name: str) -> int:
        """Return the integer index of a named member."""
        return self._index[name]

    def to_string(self, values: Union[int, Iterable[int]]) -> str:
        """Render one action or a sequence of actions as a space-separated string."""
        if isinstance(values, (int,)):
            return self.names[values]
        return " ".join(self.names[v] for v in values)

    def from_string(self, string: str) -> List[int]:
        """Parse a space-separated string of member names into action indices."""
        return [self._index[token] for token in string.split() if token]

    def __eq__(self, other) -> bool:
        if not isinstance(other, NamedDiscrete):
            return NotImplemented
        return self.names == other.names

    def __hash__(self) -> int:
        return hash(tuple(self.names))

    def __repr__(self) -> str:
        return f"NamedDiscrete(name={self.name!r}, n={self.n})"
