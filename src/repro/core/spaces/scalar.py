"""A scalar range space."""

from typing import Optional

from repro.core.spaces.space import Space


class Scalar(Space):
    """A single numeric value bounded to ``[min, max]``.

    Either bound may be ``None`` meaning unbounded in that direction. The
    ``dtype`` determines whether sampling produces integers or floats.
    """

    def __init__(
        self,
        min: Optional[float] = None,  # noqa: A002 - match upstream API
        max: Optional[float] = None,  # noqa: A002
        dtype=float,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.min = min
        self.max = max
        self.dtype = dtype

    def sample(self):
        lo = self.min if self.min is not None else -1e9
        hi = self.max if self.max is not None else 1e9
        if self.dtype in (int, "int", "int64", "int32"):
            return self.rng.randint(int(lo), int(hi))
        return self.rng.uniform(lo, hi)

    def contains(self, value) -> bool:
        if isinstance(value, bool):
            return False
        if not isinstance(value, (int, float)):
            return False
        if self.dtype in (int, "int", "int64", "int32") and not float(value).is_integer():
            return False
        if self.min is not None and value < self.min:
            return False
        if self.max is not None and value > self.max:
            return False
        return True

    def __eq__(self, other) -> bool:
        if not isinstance(other, Scalar):
            return NotImplemented
        return (
            self.min == other.min
            and self.max == other.max
            and self.dtype == other.dtype
        )

    def __hash__(self) -> int:
        return hash((self.min, self.max, str(self.dtype)))

    def __repr__(self) -> str:
        return f"Scalar(name={self.name!r}, min={self.min}, max={self.max}, dtype={getattr(self.dtype, '__name__', self.dtype)})"
