"""Commandline action space: named flags that render to a command line."""

from typing import Iterable, List, NamedTuple, Optional

from repro.core.spaces.named_discrete import NamedDiscrete


class CommandlineFlag(NamedTuple):
    """A single commandline flag in a :class:`Commandline` space."""

    name: str
    flag: str
    description: str = ""


class Commandline(NamedDiscrete):
    """A :class:`NamedDiscrete` space whose members are commandline flags.

    The LLVM phase-ordering action space is a Commandline space: every member
    is an ``opt`` pass flag such as ``-mem2reg``. The space can render an
    action sequence to the equivalent command line for reproduction outside
    the environment.
    """

    def __init__(self, items: Iterable[CommandlineFlag], name: Optional[str] = None):
        self.flags: List[CommandlineFlag] = list(items)
        super().__init__([f.name for f in self.flags], name=name)

    def flag(self, index: int) -> str:
        """Return the commandline flag string of a member."""
        return self.flags[index].flag

    def description(self, index: int) -> str:
        """Return the human-readable description of a member."""
        return self.flags[index].description

    def to_commandline(self, values: Iterable[int]) -> str:
        """Render a sequence of actions as a command line fragment."""
        return " ".join(self.flags[v].flag for v in values)

    def from_commandline(self, commandline: str) -> List[int]:
        """Parse a command line fragment back into a sequence of actions."""
        index = {f.flag: i for i, f in enumerate(self.flags)}
        actions = []
        for token in commandline.split():
            if token not in index:
                raise LookupError(f"Unknown commandline flag: {token!r}")
            actions.append(index[token])
        return actions

    def __repr__(self) -> str:
        return f"Commandline(name={self.name!r}, n={self.n})"
