"""Composite spaces: dictionaries and tuples of member spaces."""

from typing import Dict, List, Optional, Sequence

from repro.core.spaces.space import Space


class DictSpace(Space):
    """A dictionary of named member spaces."""

    def __init__(self, spaces: Dict[str, Space], name: Optional[str] = None):
        super().__init__(name=name)
        self.spaces = dict(spaces)

    def seed(self, seed: Optional[int] = None) -> None:
        super().seed(seed)
        for i, space in enumerate(self.spaces.values()):
            space.seed(None if seed is None else seed + i + 1)

    def sample(self) -> dict:
        return {key: space.sample() for key, space in self.spaces.items()}

    def contains(self, value) -> bool:
        if not isinstance(value, dict):
            return False
        if set(value.keys()) != set(self.spaces.keys()):
            return False
        return all(self.spaces[key].contains(val) for key, val in value.items())

    def __getitem__(self, key: str) -> Space:
        return self.spaces[key]

    def __repr__(self) -> str:
        return f"DictSpace(name={self.name!r}, keys={sorted(self.spaces)})"


class TupleSpace(Space):
    """A fixed-length tuple of member spaces."""

    def __init__(self, spaces: Sequence[Space], name: Optional[str] = None):
        super().__init__(name=name)
        self.spaces: List[Space] = list(spaces)

    def seed(self, seed: Optional[int] = None) -> None:
        super().seed(seed)
        for i, space in enumerate(self.spaces):
            space.seed(None if seed is None else seed + i + 1)

    def sample(self) -> tuple:
        return tuple(space.sample() for space in self.spaces)

    def contains(self, value) -> bool:
        if not isinstance(value, (tuple, list)):
            return False
        if len(value) != len(self.spaces):
            return False
        return all(space.contains(val) for space, val in zip(self.spaces, value))

    def __getitem__(self, index: int) -> Space:
        return self.spaces[index]

    def __len__(self) -> int:
        return len(self.spaces)

    def __repr__(self) -> str:
        return f"TupleSpace(name={self.name!r}, n={len(self.spaces)})"
