"""Base class for all spaces."""

import random
from typing import Any, Optional


class Space:
    """Abstract base class for observation, action, and reward spaces.

    Mirrors the ``gym.Space`` API: a space knows how to :meth:`sample` a
    random member, test :meth:`contains` membership, and be seeded for
    reproducible sampling. Every space has a ``name`` so that environments can
    expose several spaces and let the user select between them by name.
    """

    def __init__(self, name: Optional[str] = None):
        self.name = name
        self.rng = random.Random()

    def seed(self, seed: Optional[int] = None) -> None:
        """Seed the space's random number generator."""
        self.rng.seed(seed)

    def sample(self) -> Any:
        """Return a uniformly random member of the space."""
        raise NotImplementedError

    def contains(self, value: Any) -> bool:
        """Return whether ``value`` is a member of the space."""
        raise NotImplementedError

    def __contains__(self, value: Any) -> bool:
        return self.contains(value)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"
