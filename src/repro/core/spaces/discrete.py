"""Discrete integer action/observation space."""

from typing import Optional

from repro.core.spaces.space import Space


class Discrete(Space):
    """The integers ``{0, 1, ..., n-1}``."""

    def __init__(self, n: int, name: Optional[str] = None):
        super().__init__(name=name)
        if n < 1:
            raise ValueError(f"Discrete space size must be positive: {n}")
        self.n = int(n)

    def sample(self) -> int:
        return self.rng.randrange(self.n)

    def contains(self, value) -> bool:
        if isinstance(value, bool):
            return False
        if isinstance(value, float) and not value.is_integer():
            return False
        try:
            value = int(value)
        except (TypeError, ValueError):
            return False
        return 0 <= value < self.n

    def __eq__(self, other) -> bool:
        if not isinstance(other, Discrete):
            return NotImplemented
        return self.n == other.n

    def __hash__(self) -> int:
        return hash(self.n)

    def __len__(self) -> int:
        return self.n

    def __repr__(self) -> str:
        return f"Discrete(name={self.name!r}, n={self.n})"
