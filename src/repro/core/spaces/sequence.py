"""Variable-length sequence space (strings, byte arrays, lists of vectors)."""

from typing import Optional, Tuple

from repro.core.spaces.scalar import Scalar
from repro.core.spaces.space import Space


class SequenceSpace(Space):
    """A variable-length sequence of elements drawn from a scalar range.

    Used for the string/bytes observation spaces (LLVM-IR text, assembly,
    object code) and for list-of-vector observations such as inst2vec.

    Args:
        size_range: ``(min_len, max_len)`` where ``max_len`` may be ``None``.
        dtype: The element type — ``str``, ``bytes``, ``int`` or ``float``.
        scalar_range: Optional per-element value range.
    """

    def __init__(
        self,
        size_range: Tuple[int, Optional[int]] = (0, None),
        dtype=bytes,
        scalar_range: Optional[Scalar] = None,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.size_range = size_range
        self.dtype = dtype
        self.scalar_range = scalar_range

    def sample(self):
        lo = self.size_range[0]
        hi = self.size_range[1] if self.size_range[1] is not None else lo + 64
        length = self.rng.randint(lo, hi)
        if self.dtype is str:
            return "".join(chr(self.rng.randint(32, 126)) for _ in range(length))
        if self.dtype is bytes:
            return bytes(self.rng.randint(0, 255) for _ in range(length))
        if self.dtype is int:
            return [self.rng.randint(0, 100) for _ in range(length)]
        return [self.rng.random() for _ in range(length)]

    def contains(self, value) -> bool:
        if self.dtype is str and not isinstance(value, str):
            return False
        if self.dtype is bytes and not isinstance(value, (bytes, bytearray)):
            return False
        if self.dtype in (int, float) and not hasattr(value, "__len__"):
            return False
        length = len(value)
        if length < self.size_range[0]:
            return False
        if self.size_range[1] is not None and length > self.size_range[1]:
            return False
        if self.scalar_range is not None and self.dtype in (int, float):
            return all(self.scalar_range.contains(v) for v in value)
        return True

    def __eq__(self, other) -> bool:
        if not isinstance(other, SequenceSpace):
            return NotImplemented
        return (
            self.size_range == other.size_range
            and self.dtype == other.dtype
            and self.scalar_range == other.scalar_range
        )

    def __hash__(self) -> int:
        return hash((self.size_range, str(self.dtype)))

    def __repr__(self) -> str:
        return (
            f"SequenceSpace(name={self.name!r}, size_range={self.size_range}, "
            f"dtype={getattr(self.dtype, '__name__', self.dtype)})"
        )
