"""An n-dimensional box space backed by numpy arrays."""

from typing import Optional, Tuple, Union

import numpy as np

from repro.core.spaces.space import Space


class Box(Space):
    """An n-dimensional continuous or integer box ``[low, high]^shape``.

    Used for the fixed-length numeric feature-vector observation spaces such
    as InstCount (70-D int64) and Autophase (56-D int64).
    """

    def __init__(
        self,
        low: Union[float, np.ndarray],
        high: Union[float, np.ndarray],
        shape: Optional[Tuple[int, ...]] = None,
        dtype=np.float64,
        name: Optional[str] = None,
    ):
        super().__init__(name=name)
        self.dtype = np.dtype(dtype)
        if shape is None:
            shape = np.broadcast(np.asarray(low), np.asarray(high)).shape
        self.shape = tuple(int(s) for s in shape)
        self.low = np.full(self.shape, low, dtype=self.dtype) if np.isscalar(low) else np.asarray(low, dtype=self.dtype)
        self.high = np.full(self.shape, high, dtype=self.dtype) if np.isscalar(high) else np.asarray(high, dtype=self.dtype)
        if self.low.shape != self.shape or self.high.shape != self.shape:
            raise ValueError("low/high shapes do not match the box shape")

    def sample(self) -> np.ndarray:
        low = np.where(np.isfinite(self.low), self.low, -1e6)
        high = np.where(np.isfinite(self.high), self.high, 1e6)
        values = np.array(
            [self.rng.uniform(float(lo), float(hi)) for lo, hi in zip(low.ravel(), high.ravel())]
        ).reshape(self.shape)
        if np.issubdtype(self.dtype, np.integer):
            values = np.floor(values)
        return values.astype(self.dtype)

    def contains(self, value) -> bool:
        try:
            arr = np.asarray(value, dtype=self.dtype)
        except (TypeError, ValueError):
            return False
        if arr.shape != self.shape:
            return False
        return bool(np.all(arr >= self.low) and np.all(arr <= self.high))

    def __eq__(self, other) -> bool:
        if not isinstance(other, Box):
            return NotImplemented
        return (
            self.shape == other.shape
            and self.dtype == other.dtype
            and np.array_equal(self.low, other.low)
            and np.array_equal(self.high, other.high)
        )

    def __hash__(self) -> int:
        return hash((self.shape, str(self.dtype)))

    def __repr__(self) -> str:
        return f"Box(name={self.name!r}, shape={self.shape}, dtype={self.dtype})"
