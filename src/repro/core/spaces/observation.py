"""Observation space specifications.

An :class:`ObservationSpaceSpec` describes one of the observation spaces an
environment exposes: its name, value space, determinism/platform properties,
default value on error, and a translation function from the raw service
observation message to the user-facing value.
"""

from typing import Any, Callable, Optional

from repro.core.spaces.space import Space


class ObservationSpaceSpec:
    """Specification of a single named observation space."""

    def __init__(
        self,
        id: str,  # noqa: A002 - match upstream API
        index: int,
        space: Space,
        translate: Optional[Callable[[Any], Any]] = None,
        to_string: Optional[Callable[[Any], str]] = None,
        deterministic: bool = True,
        platform_dependent: bool = False,
        default_value: Any = None,
    ):
        self.id = id
        self.index = index
        self.space = space
        self.deterministic = deterministic
        self.platform_dependent = platform_dependent
        self.default_value = default_value
        self._translate = translate or (lambda value: value)
        self._to_string = to_string or str

    def translate(self, value: Any) -> Any:
        """Convert a raw service observation into the user-facing value."""
        return self._translate(value)

    def to_string(self, value: Any) -> str:
        """Render an observation value for display."""
        return self._to_string(value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ObservationSpaceSpec):
            return NotImplemented
        return self.id == other.id and self.space == other.space

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"ObservationSpaceSpec({self.id})"
