"""Observation space specifications.

An :class:`ObservationSpaceSpec` describes one of the observation spaces an
environment exposes: its name, value space, determinism/platform properties,
default value on error, and a translation function from the raw service
observation message to the user-facing value.
"""

import pickle
from typing import Any, Callable, Optional

from repro.core.spaces.space import Space


def _identity(value: Any) -> Any:
    """Default translation: the raw service value is the user-facing value.

    A module-level function (not a lambda) so that specs pickle: the socket
    and pipe service transports ship ``GetSpacesReply`` messages — spec
    objects included — across process boundaries.
    """
    return value


class ObservationSpaceSpec:
    """Specification of a single named observation space."""

    def __init__(
        self,
        id: str,  # noqa: A002 - match upstream API
        index: int,
        space: Space,
        translate: Optional[Callable[[Any], Any]] = None,
        to_string: Optional[Callable[[Any], str]] = None,
        deterministic: bool = True,
        platform_dependent: bool = False,
        default_value: Any = None,
    ):
        self.id = id
        self.index = index
        self.space = space
        self.deterministic = deterministic
        self.platform_dependent = platform_dependent
        self.default_value = default_value
        self._translate = translate or _identity
        self._to_string = to_string or str

    def __getstate__(self) -> dict:
        """Pickle support for the remote service transports.

        Custom ``translate``/``to_string`` callables that cannot cross a
        process boundary (lambdas, closures) degrade to the defaults on the
        far side; the environments shipped with this package only install
        such callables on *derived* spaces, which are constructed client-side
        and never serialized.
        """
        state = dict(self.__dict__)
        for attr, default in (("_translate", _identity), ("_to_string", str)):
            try:
                pickle.dumps(state[attr])
            except Exception:  # noqa: BLE001 - unpicklable callable
                state[attr] = default
        return state

    def translate(self, value: Any) -> Any:
        """Convert a raw service observation into the user-facing value."""
        return self._translate(value)

    def to_string(self, value: Any) -> str:
        """Render an observation value for display."""
        return self._to_string(value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, ObservationSpaceSpec):
            return NotImplemented
        return self.id == other.id and self.space == other.space

    def __hash__(self) -> int:
        return hash(self.id)

    def __repr__(self) -> str:
        return f"ObservationSpaceSpec({self.id})"
