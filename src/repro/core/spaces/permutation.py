"""Permutation space: orderings of a fixed set of elements."""

from typing import List, Optional

from repro.core.spaces.space import Space


class Permutation(Space):
    """The space of permutations of ``{0, ..., n-1}``.

    Useful for formulating phase ordering as a one-shot permutation selection
    rather than a sequential MDP (an alternative formulation supported by the
    upstream project for search-based techniques).
    """

    def __init__(self, n: int, name: Optional[str] = None):
        super().__init__(name=name)
        if n < 1:
            raise ValueError(f"Permutation size must be positive: {n}")
        self.n = int(n)

    def sample(self) -> List[int]:
        values = list(range(self.n))
        self.rng.shuffle(values)
        return values

    def contains(self, value) -> bool:
        if not hasattr(value, "__len__"):
            return False
        if len(value) != self.n:
            return False
        try:
            return sorted(int(v) for v in value) == list(range(self.n))
        except (TypeError, ValueError):
            return False

    def __repr__(self) -> str:
        return f"Permutation(name={self.name!r}, n={self.n})"
