"""Reward spaces.

A :class:`Reward` is a scalar space plus the bookkeeping the environment needs
to convert raw compiler metrics into per-step reward signals: whether the
signal is deterministic, platform dependent, and how to update it after each
action.
"""

from typing import List, Optional

from repro.core.spaces.scalar import Scalar


class Reward(Scalar):
    """Base class for reward spaces.

    Subclasses override :meth:`reset` and :meth:`update`. ``update`` is called
    after every environment step with the actions applied and the observations
    that the reward depends on, and returns the reward value for the step.
    """

    def __init__(
        self,
        name: str,
        observation_spaces: Optional[List[str]] = None,
        default_value: float = 0,
        min: Optional[float] = None,  # noqa: A002
        max: Optional[float] = None,  # noqa: A002
        default_negates_returns: bool = False,
        success_threshold: Optional[float] = None,
        deterministic: bool = False,
        platform_dependent: bool = True,
    ):
        super().__init__(min=min, max=max, dtype=float, name=name)
        self.observation_spaces = list(observation_spaces or [])
        self.default_value = default_value
        self.default_negates_returns = default_negates_returns
        self.success_threshold = success_threshold
        self.deterministic = deterministic
        self.platform_dependent = platform_dependent

    @property
    def id(self) -> str:
        """The name by which this reward space is selected."""
        return self.name

    def reset(self, benchmark: str, observation_view) -> None:
        """Called on ``env.reset()`` so the reward can capture its baseline."""
        del benchmark, observation_view  # Unused by the base class.

    def update(self, actions, observations, observation_view) -> float:
        """Compute the reward resulting from the most recent step."""
        raise NotImplementedError

    def reward_on_error(self, episode_reward: float) -> float:
        """Reward to return when the service fails mid-episode."""
        if self.default_negates_returns:
            return self.default_value - episode_reward
        return self.default_value

    @property
    def range(self):
        return (
            self.min if self.min is not None else float("-inf"),
            self.max if self.max is not None else float("inf"),
        )

    def __repr__(self) -> str:
        return f"Reward({self.name})"


class DefaultRewardFromObservation(Reward):
    """A reward defined as the decrease in a scalar observation value.

    This is how the code-size and binary-size rewards work: the reward for a
    step is ``previous_value - new_value`` of the underlying observation, so
    positive rewards correspond to smaller programs.
    """

    def __init__(self, observation_name: str, **kwargs):
        kwargs.setdefault("observation_spaces", [observation_name])
        super().__init__(name=kwargs.pop("name", observation_name), **kwargs)
        self.observation_name = observation_name
        self.previous_value: Optional[float] = None

    def reset(self, benchmark: str, observation_view) -> None:
        del benchmark
        self.previous_value = None

    def update(self, actions, observations, observation_view) -> float:
        del actions, observation_view
        value = float(observations[0])
        if self.previous_value is None:
            self.previous_value = value
            return 0.0
        reward = self.previous_value - value
        self.previous_value = value
        return reward
