"""Dataset: a named collection of benchmarks."""

import random
from typing import Iterable, Iterator, Optional

import numpy as np

from repro.core.datasets.benchmark import Benchmark
from repro.core.datasets.uri import BenchmarkUri
from repro.errors import BenchmarkInitError


class Dataset:
    """A collection of benchmarks identified by a ``benchmark://name-vN`` URI.

    Subclasses implement :meth:`benchmark_from_parsed_uri` and
    :meth:`benchmark_uris`. Datasets may be *finite* (``size > 0``) or
    *unbounded program generators* (``size == 0``), such as csmith and
    llvm-stress whose benchmarks are addressed by 32-bit seed.
    """

    def __init__(
        self,
        name: str,
        description: str,
        license: str = "Unknown",  # noqa: A002
        site_data_base: Optional[str] = None,
        benchmark_count: int = 0,
        references: Optional[dict] = None,
        deprecated: Optional[str] = None,
        sort_order: int = 0,
        validatable: str = "No",
    ):
        self._uri = BenchmarkUri.from_string(name)
        if not self._uri.dataset:
            raise ValueError(f"Invalid dataset name: {name!r}")
        self.description = description
        self.license = license
        self.site_data_base = site_data_base
        self._benchmark_count = benchmark_count
        self.references = dict(references or {})
        self.deprecated_message = deprecated
        self.sort_order = sort_order
        self.validatable = validatable
        self.random = random.Random()

    @property
    def name(self) -> str:
        """The canonical dataset URI, e.g. ``benchmark://cbench-v1``."""
        return f"{self._uri.scheme}://{self._uri.dataset}"

    @property
    def protocol(self) -> str:
        return self._uri.scheme

    @property
    def version(self) -> int:
        """The version suffix of the dataset name (``-vN``), or 0."""
        tail = self._uri.dataset.rsplit("-v", 1)
        if len(tail) == 2 and tail[1].isdigit():
            return int(tail[1])
        return 0

    @property
    def deprecated(self) -> bool:
        return self.deprecated_message is not None

    @property
    def size(self) -> int:
        """Number of benchmarks, or 0 if the dataset is an unbounded generator."""
        return self._benchmark_count

    def __len__(self) -> int:
        return self.size

    def seed(self, seed: Optional[int] = None) -> None:
        self.random.seed(seed)

    def install(self) -> None:
        """Materialize any state required to use the dataset.

        All datasets in this reproduction are generated procedurally so there
        is nothing to download; the hook is kept for API compatibility.
        """

    def uninstall(self) -> None:
        """Remove any materialized dataset state."""

    @property
    def installed(self) -> bool:
        return True

    def benchmark_uris(self) -> Iterator[str]:
        """Iterate over the URIs of benchmarks in this dataset."""
        raise NotImplementedError

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        """Construct a benchmark from a parsed URI."""
        raise NotImplementedError

    def benchmark(self, uri: str) -> Benchmark:
        """Return the benchmark identified by ``uri``."""
        parsed = BenchmarkUri.from_string(uri)
        if f"{parsed.scheme}://{parsed.dataset}" != self.name:
            raise LookupError(f"Benchmark {uri!r} does not belong to dataset {self.name!r}")
        return self.benchmark_from_parsed_uri(parsed)

    def benchmarks(self) -> Iterator[Benchmark]:
        """Iterate over benchmarks in this dataset."""
        for uri in self.benchmark_uris():
            yield self.benchmark(uri)

    def random_benchmark(self, random_state: Optional[np.random.Generator] = None) -> Benchmark:
        """Return a uniformly random benchmark from this dataset."""
        rng = random_state or np.random.default_rng(self.random.getrandbits(32))
        return self._random_benchmark(rng)

    def _random_benchmark(self, random_state: np.random.Generator) -> Benchmark:
        uris = list(self.benchmark_uris())
        if not uris:
            raise BenchmarkInitError(f"Dataset {self.name} has no benchmarks")
        return self.benchmark(uris[int(random_state.integers(len(uris)))])

    def __eq__(self, other) -> bool:
        if isinstance(other, Dataset):
            return self.name == other.name
        if isinstance(other, str):
            return self.name == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(self.name)

    def __repr__(self) -> str:
        return self.name

    def __iter__(self) -> Iterator[Benchmark]:
        return self.benchmarks()


class InMemoryDataset(Dataset):
    """A dataset backed by an explicit list of pre-built benchmarks."""

    def __init__(self, name: str, benchmarks: Iterable[Benchmark], **kwargs):
        self._benchmarks = {str(b.uri): b for b in benchmarks}
        kwargs.setdefault("description", f"In-memory dataset {name}")
        kwargs["benchmark_count"] = len(self._benchmarks)
        super().__init__(name=name, **kwargs)

    def benchmark_uris(self) -> Iterator[str]:
        yield from sorted(self._benchmarks)

    def benchmark_from_parsed_uri(self, uri: BenchmarkUri) -> Benchmark:
        key = str(uri)
        if key not in self._benchmarks:
            raise LookupError(f"Benchmark not found: {key!r}")
        return self._benchmarks[key]
