"""Benchmark URI parsing.

Benchmark URIs have the form::

    scheme://dataset-name/path?params#fragment

e.g. ``benchmark://cbench-v1/qsort`` or ``generator://csmith-v0/42``.
"""

import re
from typing import Dict, List, NamedTuple
from urllib.parse import parse_qs, urlencode, urlparse

_URI_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9-+.]*://")


class BenchmarkUri(NamedTuple):
    """A parsed benchmark URI."""

    scheme: str
    dataset: str
    path: str
    params: Dict[str, List[str]]
    fragment: str

    @classmethod
    def canonicalize(cls, uri: str) -> str:
        """Return the canonical string form of a URI, adding a default scheme."""
        return str(cls.from_string(uri))

    @classmethod
    def from_string(cls, uri: str) -> "BenchmarkUri":
        """Parse a URI string. A missing scheme defaults to ``benchmark``."""
        if not uri:
            raise ValueError("Benchmark URI must not be empty")
        if not _URI_RE.match(uri):
            uri = f"benchmark://{uri}"
        parsed = urlparse(uri)
        return cls(
            scheme=parsed.scheme or "benchmark",
            dataset=parsed.netloc,
            path=parsed.path.lstrip("/"),
            params=parse_qs(parsed.query),
            fragment=parsed.fragment,
        )

    @property
    def dataset_uri(self) -> str:
        """The URI of the dataset that the benchmark belongs to."""
        return f"{self.scheme}://{self.dataset}"

    def __str__(self) -> str:
        out = f"{self.scheme}://{self.dataset}"
        if self.path:
            out += f"/{self.path}"
        if self.params:
            out += f"?{urlencode(self.params, doseq=True)}"
        if self.fragment:
            out += f"#{self.fragment}"
        return out
