"""The Datasets collection: aggregate access to every installed dataset."""

from typing import Dict, Iterator, Optional, Set, Union

import numpy as np

from repro.core.datasets.benchmark import Benchmark
from repro.core.datasets.dataset import Dataset
from repro.core.datasets.uri import BenchmarkUri


class Datasets:
    """A collection of :class:`Dataset` instances.

    Provides dictionary-style access by dataset name, iteration over datasets
    and benchmarks, and benchmark lookup by URI. Deprecated datasets are
    hidden from iteration but still accessible by name, matching the upstream
    behaviour.
    """

    def __init__(self, datasets: Optional[Dict[str, Dataset]] = None):
        self._datasets: Dict[str, Dataset] = dict(datasets or {})
        self._visible: Set[str] = {
            name for name, ds in self._datasets.items() if not ds.deprecated
        }

    def add(self, dataset: Dataset) -> Dataset:
        """Register a dataset, replacing any existing dataset of the same name."""
        self._datasets[dataset.name] = dataset
        if dataset.deprecated:
            self._visible.discard(dataset.name)
        else:
            self._visible.add(dataset.name)
        return dataset

    def remove(self, dataset: Union[str, Dataset]) -> None:
        name = dataset.name if isinstance(dataset, Dataset) else self._resolve_name(dataset)
        self._datasets.pop(name, None)
        self._visible.discard(name)

    def _resolve_name(self, name: str) -> str:
        parsed = BenchmarkUri.from_string(name)
        return f"{parsed.scheme}://{parsed.dataset}"

    def dataset(self, name: str) -> Dataset:
        """Look up a dataset by name."""
        key = self._resolve_name(name)
        if key not in self._datasets:
            raise LookupError(f"Dataset not found: {key!r}")
        return self._datasets[key]

    def __getitem__(self, name: str) -> Dataset:
        return self.dataset(name)

    def __contains__(self, name: Union[str, Dataset]) -> bool:
        try:
            self.dataset(name if isinstance(name, str) else name.name)
            return True
        except LookupError:
            return False

    def __iter__(self) -> Iterator[Dataset]:
        return self.datasets()

    def datasets(self, with_deprecated: bool = False) -> Iterator[Dataset]:
        """Iterate over datasets, sorted by their sort order then name."""
        names = set(self._datasets) if with_deprecated else set(self._visible)
        ordered = sorted(names, key=lambda n: (self._datasets[n].sort_order, n))
        for name in ordered:
            yield self._datasets[name]

    def __len__(self) -> int:
        return len(self._visible)

    def benchmark(self, uri: str) -> Benchmark:
        """Look up a benchmark by URI across all datasets."""
        parsed = BenchmarkUri.from_string(uri)
        dataset = self.dataset(parsed.dataset_uri)
        return dataset.benchmark_from_parsed_uri(parsed)

    def benchmarks(self, with_deprecated: bool = False) -> Iterator[Benchmark]:
        """Iterate over every benchmark in every dataset.

        With millions of benchmarks this is a lazy generator; callers are
        expected to islice or break out early.
        """
        for dataset in self.datasets(with_deprecated=with_deprecated):
            yield from dataset.benchmarks()

    def benchmark_uris(self, with_deprecated: bool = False) -> Iterator[str]:
        """Iterate over every benchmark URI in every dataset."""
        for dataset in self.datasets(with_deprecated=with_deprecated):
            yield from dataset.benchmark_uris()

    def random_benchmark(
        self,
        random_state: Optional[np.random.Generator] = None,
        weighted: bool = False,
    ) -> Benchmark:
        """Select a benchmark uniformly at random.

        With ``weighted=True`` the choice of dataset is weighted by dataset
        size so that larger datasets are proportionally more likely.
        """
        rng = random_state or np.random.default_rng()
        datasets = list(self.datasets())
        if not datasets:
            raise LookupError("No datasets registered")
        if weighted:
            sizes = np.array([max(ds.size, 1) for ds in datasets], dtype=float)
            probs = sizes / sizes.sum()
            dataset = datasets[int(rng.choice(len(datasets), p=probs))]
        else:
            dataset = datasets[int(rng.integers(len(datasets)))]
        return dataset.random_benchmark(rng)
