"""Benchmark and dataset management.

A *benchmark* is a single program to optimize, identified by a URI of the
form ``benchmark://<dataset>/<id>``. A *dataset* is a named collection of
benchmarks, possibly unbounded (program generators). The :class:`Datasets`
collection aggregates all datasets installed for an environment and supports
efficient iteration over millions of benchmark URIs without materializing
them.
"""

from repro.core.datasets.uri import BenchmarkUri
from repro.core.datasets.benchmark import Benchmark, BenchmarkSource
from repro.core.datasets.dataset import Dataset
from repro.core.datasets.datasets import Datasets

__all__ = [
    "Benchmark",
    "BenchmarkSource",
    "BenchmarkUri",
    "Dataset",
    "Datasets",
]
