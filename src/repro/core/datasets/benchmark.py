"""Benchmark: a single program to optimize."""

from typing import Any, Callable, Iterable, List, NamedTuple, Optional

from repro.core.datasets.uri import BenchmarkUri
from repro.errors import ValidationError


class BenchmarkSource(NamedTuple):
    """A file belonging to a benchmark (e.g. its source code)."""

    filename: str
    contents: bytes

    def __repr__(self) -> str:
        return f"BenchmarkSource(filename={self.filename!r}, {len(self.contents)} bytes)"


class Benchmark:
    """A program to optimize, identified by URI.

    The ``program`` payload is backend specific: for the LLVM environments it
    is an IR :class:`~repro.llvm.ir.module.Module`; for GCC it is a workload
    descriptor; for loop_tool a problem-size descriptor. Benchmarks may carry
    a list of validation callbacks used by ``env.validate()`` and a dynamic
    configuration describing how to execute the compiled program (for the
    runtime reward signal).
    """

    def __init__(
        self,
        uri: str,
        program: Any = None,
        sources: Optional[Iterable[BenchmarkSource]] = None,
        dynamic_config: Optional[dict] = None,
    ):
        self._uri = BenchmarkUri.from_string(str(uri))
        self.program = program
        self.sources: List[BenchmarkSource] = list(sources or [])
        self.dynamic_config = dict(dynamic_config or {})
        self._validation_callbacks: List[Callable] = []

    @property
    def uri(self) -> BenchmarkUri:
        return self._uri

    @classmethod
    def from_file_contents(cls, uri: str, data: bytes) -> "Benchmark":
        """Construct a benchmark from raw program bytes (user-supplied code)."""
        return cls(uri=uri, program=data, sources=[BenchmarkSource("input", bytes(data))])

    def is_validatable(self) -> bool:
        """Return whether the benchmark has any validation callbacks."""
        return bool(self._validation_callbacks)

    def validation_callbacks(self) -> List[Callable]:
        return list(self._validation_callbacks)

    def add_validation_callback(self, callback: Callable) -> None:
        """Register a callback invoked by ``env.validate()``.

        The callback receives the environment and returns an iterable of
        :class:`ValidationError`.
        """
        self._validation_callbacks.append(callback)

    def ivalidate(self, env) -> Iterable[ValidationError]:
        """Run the validation callbacks, yielding errors as they are found."""
        for callback in self._validation_callbacks:
            yield from callback(env)

    def validate(self, env) -> List[ValidationError]:
        """Run the validation callbacks and return all errors."""
        return list(self.ivalidate(env))

    def __eq__(self, other) -> bool:
        if isinstance(other, Benchmark):
            return str(self.uri) == str(other.uri)
        if isinstance(other, str):
            return str(self.uri) == other
        return NotImplemented

    def __hash__(self) -> int:
        return hash(str(self.uri))

    def __repr__(self) -> str:
        return str(self.uri)
