"""Base wrapper classes.

A wrapper mutates the MDP formulation of a wrapped environment while exposing
the same :class:`CompilerEnv` interface, so wrappers can be freely composed.
"""

from typing import Any, Iterable, List, Optional, Tuple, Union


class CompilerEnvWrapper:
    """Wraps a :class:`CompilerEnv` (or another wrapper) transparently.

    Attribute access that the wrapper does not intercept is forwarded to the
    wrapped environment, so user code and other wrappers see the full
    CompilerEnv API.
    """

    def __init__(self, env):
        self.env = env

    # -- the wrapped API ----------------------------------------------------

    def reset(self, *args, **kwargs):
        return self.env.reset(*args, **kwargs)

    def step(self, action, observation_spaces=None, reward_spaces=None):
        return self.multistep(
            [action], observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        return self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def fork(self):
        return type(self)(self.env.fork()) if type(self) is CompilerEnvWrapper else self.env.fork()

    def close(self):
        return self.env.close()

    def render(self, mode: str = "human"):
        return self.env.render(mode)

    # -- pass-through properties ---------------------------------------------

    @property
    def unwrapped(self):
        return getattr(self.env, "unwrapped", self.env)

    @property
    def observation_space(self):
        return self.env.observation_space

    @observation_space.setter
    def observation_space(self, space):
        self.env.observation_space = space

    @property
    def reward_space(self):
        return self.env.reward_space

    @reward_space.setter
    def reward_space(self, space):
        self.env.reward_space = space

    @property
    def action_space(self):
        return self.env.action_space

    @action_space.setter
    def action_space(self, space):
        self.env.action_space = space

    @property
    def benchmark(self):
        return self.env.benchmark

    @benchmark.setter
    def benchmark(self, benchmark):
        self.env.benchmark = benchmark

    def __getattr__(self, name: str) -> Any:
        if name == "env":
            raise AttributeError(name)
        return getattr(self.env, name)

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.env!r})"


class ObservationWrapper(CompilerEnvWrapper):
    """Transforms observations through :meth:`convert_observation`."""

    def convert_observation(self, observation):
        raise NotImplementedError

    def reset(self, *args, **kwargs):
        observation = self.env.reset(*args, **kwargs)
        return self.convert_observation(observation)

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        observation, reward, done, info = self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )
        return self.convert_observation(observation), reward, done, info


class RewardWrapper(CompilerEnvWrapper):
    """Transforms rewards through :meth:`convert_reward`."""

    def convert_reward(self, reward):
        raise NotImplementedError

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        observation, reward, done, info = self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )
        return observation, self.convert_reward(reward), done, info


class ActionWrapper(CompilerEnvWrapper):
    """Transforms actions through :meth:`action` before applying them."""

    def action(self, action):
        raise NotImplementedError

    def reverse_action(self, action):
        raise NotImplementedError

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        converted: List[Any] = []
        for action in actions:
            mapped = self.action(action)
            if isinstance(mapped, (list, tuple)):
                converted.extend(mapped)
            else:
                converted.append(mapped)
        return self.env.multistep(
            converted, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )
