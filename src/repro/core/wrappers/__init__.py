"""Environment wrappers for compiler research.

These mirror the wrapper suite shipped with the upstream project: generic
observation/reward/action wrappers plus compiler-specific wrappers for time
limits, iterating over benchmark suites, constraining commandline action
spaces, and concatenating action histograms onto observations (the
representation used by the Autophase RL experiments).
"""

from repro.core.wrappers.core import (
    ActionWrapper,
    CompilerEnvWrapper,
    ObservationWrapper,
    RewardWrapper,
)
from repro.core.wrappers.time_limit import TimeLimit
from repro.core.wrappers.datasets_iterators import (
    CycleOverBenchmarks,
    CycleOverBenchmarksIterator,
    IterateOverBenchmarks,
    RandomOrderBenchmarks,
)
from repro.core.wrappers.commandline import (
    CommandlineWithTerminalAction,
    ConstrainedCommandline,
)
from repro.core.wrappers.observation import ConcatActionsHistogram, CounterWrapper
from repro.core.wrappers.fork import ForkOnStep

__all__ = [
    "ActionWrapper",
    "CommandlineWithTerminalAction",
    "CompilerEnvWrapper",
    "ConcatActionsHistogram",
    "ConstrainedCommandline",
    "CounterWrapper",
    "CycleOverBenchmarks",
    "CycleOverBenchmarksIterator",
    "ForkOnStep",
    "IterateOverBenchmarks",
    "ObservationWrapper",
    "RandomOrderBenchmarks",
    "RewardWrapper",
    "TimeLimit",
]
