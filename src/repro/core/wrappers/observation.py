"""Observation-transforming wrappers."""

from typing import Optional

import numpy as np

from repro.core.spaces.box import Box
from repro.core.wrappers.core import CompilerEnvWrapper, ObservationWrapper


class ConcatActionsHistogram(ObservationWrapper):
    """Concatenates a histogram of the agent's previous actions onto the
    observation vector.

    This reproduces the observation representation used by Autophase and by
    the paper's RL experiments (Section VII-G and Fig. 9): the numeric feature
    vector is extended with one entry per action counting (optionally
    normalized) how many times that action has been taken this episode.
    """

    def __init__(self, env, norm_to_episode_len: int = 0):
        super().__init__(env)
        self.norm_to_episode_len = norm_to_episode_len
        self._histogram: Optional[np.ndarray] = None

    @property
    def observation_space(self):
        base = self.env.observation_space
        n_actions = self.env.action_space.n
        if base is None or not isinstance(base, Box):
            return base
        low = np.concatenate([base.low, np.zeros(n_actions, dtype=base.dtype)])
        high_fill = self.norm_to_episode_len if self.norm_to_episode_len else np.iinfo(np.int64).max
        high = np.concatenate(
            [base.high, np.full(n_actions, high_fill, dtype=base.dtype)]
        )
        return Box(
            low=low, high=high, shape=(base.shape[0] + n_actions,), dtype=base.dtype,
            name=f"{base.name}+ActionHistogram" if base.name else "ActionHistogram",
        )

    @observation_space.setter
    def observation_space(self, space):
        self.env.observation_space = space

    def reset(self, *args, **kwargs):
        self._histogram = np.zeros(self.env.action_space.n, dtype=np.float64)
        return super().reset(*args, **kwargs)

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        if self._histogram is None:
            self._histogram = np.zeros(self.env.action_space.n, dtype=np.float64)
        for action in actions:
            if isinstance(action, (int, np.integer)) and 0 <= int(action) < len(self._histogram):
                self._histogram[int(action)] += 1
        return super().multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def convert_observation(self, observation):
        if observation is None:
            return observation
        histogram = self._histogram
        if self.norm_to_episode_len:
            histogram = histogram / self.norm_to_episode_len
        observation = np.asarray(observation, dtype=np.float64)
        return np.concatenate([observation, histogram])

    def fork(self):
        forked = ConcatActionsHistogram(self.env.fork(), norm_to_episode_len=self.norm_to_episode_len)
        forked._histogram = None if self._histogram is None else self._histogram.copy()
        return forked


class CounterWrapper(CompilerEnvWrapper):
    """Counts environment operations: resets, steps, and total actions.

    Used by the computational-efficiency benchmarks and useful for debugging
    agent behaviour.
    """

    def __init__(self, env):
        super().__init__(env)
        self.counters = {"reset": 0, "step": 0, "actions": 0}

    def reset(self, *args, **kwargs):
        self.counters["reset"] += 1
        return self.env.reset(*args, **kwargs)

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        actions = list(actions)
        self.counters["step"] += 1
        self.counters["actions"] += len(actions)
        return self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def fork(self):
        forked = CounterWrapper(self.env.fork())
        forked.counters = dict(self.counters)
        return forked
