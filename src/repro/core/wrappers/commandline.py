"""Wrappers that modify Commandline action spaces."""

from typing import Iterable, List, Optional, Union

from repro.core.spaces.commandline import Commandline, CommandlineFlag
from repro.core.wrappers.core import ActionWrapper, CompilerEnvWrapper


class CommandlineWithTerminalAction(CompilerEnvWrapper):
    """Adds an explicit end-of-episode action to a Commandline action space.

    The LLVM phase-ordering episodes have no terminal state; this wrapper lets
    an agent learn *when to stop* by selecting the added terminal action.
    """

    def __init__(self, env, terminal=None):
        super().__init__(env)
        base = env.action_space
        if not isinstance(base, Commandline):
            raise TypeError(
                f"CommandlineWithTerminalAction requires a Commandline action space, got {type(base).__name__}"
            )
        terminal = terminal or CommandlineFlag(
            name="end-of-episode", flag="# end-of-episode", description="End the episode"
        )
        self._terminal_index = len(base.flags)
        self._wrapped_action_space = Commandline(
            list(base.flags) + [terminal], name=f"{base.name}+terminal"
        )

    @property
    def action_space(self):
        return self._wrapped_action_space

    @action_space.setter
    def action_space(self, space):
        self.env.action_space = space

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        actions = list(actions)
        terminal_selected = self._terminal_index in actions
        if terminal_selected:
            actions = actions[: actions.index(self._terminal_index)]
        if actions:
            observation, reward, done, info = self.env.multistep(
                actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
            )
        else:
            # No real action to apply: synthesise a null step result.
            observation, reward, done, info = (
                None,
                [] if reward_spaces is not None else 0.0,
                False,
                {"action_had_no_effect": True, "new_action_space": False},
            )
        if terminal_selected:
            done = True
        return observation, reward, done, info

    def fork(self):
        forked = CommandlineWithTerminalAction.__new__(CommandlineWithTerminalAction)
        CompilerEnvWrapper.__init__(forked, self.env.fork())
        forked._terminal_index = self._terminal_index
        forked._wrapped_action_space = self._wrapped_action_space
        return forked


class ConstrainedCommandline(ActionWrapper):
    """Constrains a Commandline action space to a subset of its flags.

    This is how the paper replicates Autophase's 42-pass action space from the
    full 124-pass LLVM space.
    """

    def __init__(self, env, flags: Iterable[str], name: Optional[str] = None):
        super().__init__(env)
        base = env.action_space
        if not isinstance(base, Commandline):
            raise TypeError(
                f"ConstrainedCommandline requires a Commandline action space, got {type(base).__name__}"
            )
        self._forward: List[int] = []
        selected_flags: List[CommandlineFlag] = []
        index = {f.flag: i for i, f in enumerate(base.flags)}
        by_name = {f.name: i for i, f in enumerate(base.flags)}
        for flag in flags:
            if flag in index:
                position = index[flag]
            elif flag in by_name:
                position = by_name[flag]
            else:
                raise LookupError(f"Flag not found in action space: {flag!r}")
            self._forward.append(position)
            selected_flags.append(base.flags[position])
        self._constrained_space = Commandline(
            selected_flags, name=name or f"{base.name}-constrained"
        )

    @property
    def action_space(self):
        return self._constrained_space

    @action_space.setter
    def action_space(self, space):
        self.env.action_space = space

    def action(self, action: int) -> int:
        return self._forward[action]

    def reverse_action(self, action: int) -> int:
        return self._forward.index(action)

    def fork(self):
        forked = ConstrainedCommandline.__new__(ConstrainedCommandline)
        CompilerEnvWrapper.__init__(forked, self.env.fork())
        forked._forward = list(self._forward)
        forked._constrained_space = self._constrained_space
        return forked
