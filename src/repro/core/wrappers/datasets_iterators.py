"""Wrappers that control which benchmark each episode uses."""

from itertools import cycle
from typing import Callable, Iterable, Optional

import numpy as np

from repro.core.wrappers.core import CompilerEnvWrapper


class IterateOverBenchmarks(CompilerEnvWrapper):
    """Each call to ``reset()`` advances to the next benchmark in an iterator.

    Once the iterator is exhausted, subsequent resets raise ``StopIteration``.
    """

    def __init__(self, env, benchmarks: Iterable, fork_shares_iterator: bool = False):
        super().__init__(env)
        self.benchmarks = iter(benchmarks)
        self.fork_shares_iterator = fork_shares_iterator

    def reset(self, *args, **kwargs):
        kwargs.pop("benchmark", None)
        benchmark = next(self.benchmarks)
        return self.env.reset(*args, benchmark=benchmark, **kwargs)

    def fork(self):
        if not self.fork_shares_iterator:
            raise TypeError(
                "IterateOverBenchmarks cannot be forked unless fork_shares_iterator=True"
            )
        forked = IterateOverBenchmarks.__new__(IterateOverBenchmarks)
        CompilerEnvWrapper.__init__(forked, self.env.fork())
        forked.benchmarks = self.benchmarks
        forked.fork_shares_iterator = True
        return forked


class CycleOverBenchmarks(IterateOverBenchmarks):
    """Cycles endlessly over a finite collection of benchmarks.

    This is the wrapper used in the paper's RLlib integration example to loop
    over the NPB suite during training.
    """

    def __init__(self, env, benchmarks: Iterable, fork_shares_iterator: bool = False):
        super().__init__(
            env, benchmarks=cycle(list(benchmarks)), fork_shares_iterator=fork_shares_iterator
        )


class CycleOverBenchmarksIterator(CompilerEnvWrapper):
    """Cycles over benchmarks produced by a callable returning fresh iterators.

    Useful for unbounded program generators: the callable is re-invoked each
    time the previous iterator is exhausted.
    """

    def __init__(self, env, make_benchmark_iterator: Callable[[], Iterable]):
        super().__init__(env)
        self.make_benchmark_iterator = make_benchmark_iterator
        self._iterator = iter(make_benchmark_iterator())

    def reset(self, *args, **kwargs):
        kwargs.pop("benchmark", None)
        try:
            benchmark = next(self._iterator)
        except StopIteration:
            self._iterator = iter(self.make_benchmark_iterator())
            benchmark = next(self._iterator)
        return self.env.reset(*args, benchmark=benchmark, **kwargs)


class RandomOrderBenchmarks(CompilerEnvWrapper):
    """Each reset selects a benchmark uniformly at random from a fixed list."""

    def __init__(self, env, benchmarks: Iterable, rng: Optional[np.random.Generator] = None):
        super().__init__(env)
        self.benchmark_list = list(benchmarks)
        if not self.benchmark_list:
            raise ValueError("RandomOrderBenchmarks requires at least one benchmark")
        self.rng = rng or np.random.default_rng()

    def reset(self, *args, **kwargs):
        kwargs.pop("benchmark", None)
        benchmark = self.benchmark_list[int(self.rng.integers(len(self.benchmark_list)))]
        return self.env.reset(*args, benchmark=benchmark, **kwargs)

    def fork(self):
        # Each fork gets an independent generator seeded from the parent's
        # stream: numpy Generators are not thread-safe, and forked workers may
        # reset() concurrently under a thread-pool execution backend.
        child_rng = np.random.default_rng(int(self.rng.integers(2**63)))
        return RandomOrderBenchmarks(
            self.env.fork(), benchmarks=self.benchmark_list, rng=child_rng
        )
