"""ForkOnStep wrapper: checkpoint the environment before every step."""

from repro.core.wrappers.core import CompilerEnvWrapper


class ForkOnStep(CompilerEnvWrapper):
    """Maintains a stack of environment forks, one per step, enabling undo.

    ``undo()`` pops the most recent fork and restores the environment to the
    state before the last step — functionality compilers lack natively
    (most optimization passes have no inverse), and which the CompilerGym
    Explorer web tool relies on for interactive search-tree navigation.
    """

    def __init__(self, env):
        super().__init__(env)
        self.stack = []

    def reset(self, *args, **kwargs):
        for fork in self.stack:
            fork.close()
        self.stack = []
        return self.env.reset(*args, **kwargs)

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        self.stack.append(self.env.fork())
        return self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def undo(self):
        """Restore the environment to the state before the most recent step.

        Raises:
            IndexError: If there is no step to undo.
        """
        if not self.stack:
            raise IndexError(
                "undo() called on an empty ForkOnStep stack: "
                "no steps have been taken since the last reset()"
            )
        self.env.close()
        self.env = self.stack.pop()
        return self.env

    def close(self):
        for fork in self.stack:
            fork.close()
        self.stack = []
        return self.env.close()
