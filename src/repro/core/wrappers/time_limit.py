"""Episode step limit wrapper."""

from typing import Optional

from repro.core.wrappers.core import CompilerEnvWrapper


class TimeLimit(CompilerEnvWrapper):
    """Ends the episode after a maximum number of steps.

    The LLVM phase-ordering environment has no natural terminal state, so RL
    experiments (and the paper's RLlib examples) impose a fixed episode length
    with this wrapper — e.g. 45 steps in the Autophase replication.
    """

    def __init__(self, env, max_episode_steps: Optional[int] = None):
        super().__init__(env)
        if max_episode_steps is not None and max_episode_steps < 1:
            raise ValueError(f"max_episode_steps must be positive: {max_episode_steps}")
        self.max_episode_steps = max_episode_steps
        self._elapsed_steps = 0

    def reset(self, *args, **kwargs):
        self._elapsed_steps = 0
        return self.env.reset(*args, **kwargs)

    def multistep(self, actions, observation_spaces=None, reward_spaces=None):
        observation, reward, done, info = self.env.multistep(
            actions, observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )
        self._elapsed_steps += len(list(actions))
        if self.max_episode_steps is not None and self._elapsed_steps >= self.max_episode_steps:
            info["TimeLimit.truncated"] = not done
            done = True
        return observation, reward, done, info

    def fork(self):
        forked = TimeLimit(self.env.fork(), max_episode_steps=self.max_episode_steps)
        forked._elapsed_steps = self._elapsed_steps
        return forked
