"""Environment registry: ``register()`` and ``make()``.

Mirrors ``gym.envs.registration`` but is self-contained. Environment IDs such
as ``llvm-v0``, ``llvm-autophase-ic-v0`` or ``gcc-v0`` map to an environment
class plus default constructor arguments.
"""

import importlib
from typing import Any, Callable, Dict, List, Union


class EnvSpec:
    """Registration record for a single environment ID."""

    def __init__(self, id: str, entry_point: Union[str, Callable], kwargs: Dict[str, Any]):  # noqa: A002
        self.id = id
        self.entry_point = entry_point
        self.kwargs = dict(kwargs)

    def make(self, **kwargs):
        entry_point = self.entry_point
        if isinstance(entry_point, str):
            module_name, _, attr = entry_point.partition(":")
            module = importlib.import_module(module_name)
            entry_point = getattr(module, attr)
        merged = dict(self.kwargs)
        merged.update(kwargs)
        env = entry_point(**merged)
        # Stamp the construction recipe onto the environment (mirroring
        # gym's env.spec) so it can be rebuilt elsewhere — e.g. inside the
        # subprocess workers of the vectorized process-pool backend. A live
        # service_connection is not a recipe (it cannot be rebuilt, or even
        # pickled); a rebuilt environment opens its own connection from the
        # rest of the kwargs (service_url) instead.
        recipe = {k: v for k, v in merged.items() if k != "service_connection"}
        try:
            env.spec = EnvSpec(id=self.id, entry_point=self.entry_point, kwargs=recipe)
        except Exception:  # noqa: BLE001 - entry points may return odd objects
            pass
        return env

    def __repr__(self) -> str:
        return f"EnvSpec({self.id})"


_REGISTRY: Dict[str, EnvSpec] = {}


def register(id: str, entry_point: Union[str, Callable], kwargs: Dict[str, Any] = None) -> None:  # noqa: A002
    """Register an environment constructor under an environment ID."""
    _REGISTRY[id] = EnvSpec(id=id, entry_point=entry_point, kwargs=kwargs or {})


def registered_env_ids() -> List[str]:
    """Return the sorted list of registered environment IDs."""
    return sorted(_REGISTRY)


def make(id: str, **kwargs):  # noqa: A002
    """Construct a registered environment.

    >>> env = make("llvm-v0", benchmark="cbench-v1/qsort")

    Pass ``service_url="tcp://host:port"`` (or ``unix:///path``) to attach
    the environment to a running compiler service daemon (started with
    ``repro-compilergym serve``) instead of hosting the service in-process:

    >>> env = make("llvm-v0", service_url="tcp://127.0.0.1:5499")

    The URL is stamped into ``env.spec`` with the rest of the construction
    recipe, so vectorized pools rebuilt from the spec attach their workers to
    the same daemon.
    """
    if id not in _REGISTRY:
        raise LookupError(
            f"Unknown environment: {id!r}. Registered environments: {registered_env_ids()}"
        )
    return _REGISTRY[id].make(**kwargs)
