"""Deterministic fault injection for the compiler service tier.

Every recovery path in the service stack — retry-with-jitter in
:class:`~repro.core.service.connection.ServiceConnection`, the bytes-flushed
send classifier and at-most-once reply handling in
:class:`~repro.core.service.transport.SocketTransport`, replay-based gateway
failover, the heartbeat-driven :class:`~repro.core.service.health.
HealthMonitor` — exists because daemons crash, sockets cut mid-frame, and
replies go missing. This module makes those events *reproducible*: a
:class:`FaultPlan` is a seeded, deterministic schedule of fault events, and a
:class:`ChaosTransport` wraps any :class:`~repro.core.service.transport.
ServiceTransport` and injects each scheduled fault at its exact call index.
The same seed always yields the same fault sequence, so a chaos run's final
action traces are byte-for-byte repeatable (the ``repro-compilergym
chaos-soak`` command and the CI chaos job assert exactly that).

Client-side fault kinds (``ChaosTransport``):

* ``refuse_connect`` — the call fails before anything is sent, as a refused
  TCP connect does. Retryable: the connection's restart/retry loop recovers.
* ``cut_send`` — the socket dies mid-``send()`` after flushing ``param``
  bytes, driving the transport's bytes-flushed classifier: 0 bytes flushed
  is retried on a fresh connection, a partial flush is non-retryable.
* ``cut_recv`` — the request is delivered and executes on the daemon, but
  its reply is abandoned and the connection torn down, exercising the
  at-most-once path (non-retryable; the episode ends, the step is never
  re-applied).
* ``delay`` — the reply is held for ``param`` seconds, overrunning the RPC
  deadline so the connection classifies a *slow success* (recorded, never
  retried).
* ``corrupt_frame`` — the request frame's payload bytes are corrupted in
  flight; the server drops the connection on the malformed frame and the
  client observes a non-retryable in-flight loss.
* ``kill_daemon`` — SIGKILL a backend process (resolved through the
  ``kill_targets`` hook), the whole-daemon crash that gateway failover and
  the health monitor exist to absorb.

Server-side hooks (:class:`ServerChaos`, consulted by
:class:`~repro.core.service.rpc_server.SocketRPCServer` before each reply)
cover the faults only the daemon can produce: dropping a reply *after* the
request executed, corrupting the reply frame, delaying it, or SIGKILLing the
whole process mid-request.
"""

import hashlib
import os
import random
import signal
import socket as socket_module
import threading
import time
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, Union

from repro.core.service.transport import ServiceTransport, SocketTransport
from repro.core.service.wire import FRAME_HEADER_BYTES
from repro.errors import ServiceTransportError

# The client-side fault vocabulary. ``FaultPlan.generate`` draws from these;
# explicit plans may also schedule ``kill_daemon`` (which needs a target).
FAULT_KINDS = (
    "refuse_connect",
    "cut_send",
    "cut_recv",
    "delay",
    "corrupt_frame",
    "kill_daemon",
)


class FlushLimitedSocket:
    """Fault injector: a socket whose ``send()`` path fails after flushing a
    fixed number of bytes (0 = fail before anything leaves the client).

    This is the canonical way to drive the transport's bytes-flushed send
    classifier from tests and from :class:`ChaosTransport`: wrap the live
    socket, let exactly ``flush_budget`` bytes through, then raise.
    """

    def __init__(self, sock, flush_budget: int):
        self._sock = sock
        self._budget = flush_budget

    def send(self, data):
        if self._budget <= 0:
            raise OSError("injected send failure")
        sent = self._sock.send(data[: self._budget])
        self._budget -= sent
        return sent

    def __getattr__(self, name):
        return getattr(self._sock, name)


class CorruptingSocket:
    """Fault injector: flips payload bytes of the next frame sent.

    The 9-byte frame header (version byte + length prefix) is preserved so
    the receiver reads a plausible frame of the right length and fails in its
    *decoder* — the malformed-frame guard — rather than on the length prefix.
    """

    def __init__(self, sock):
        self._sock = sock
        self._offset = 0

    def send(self, data):
        data = bytes(data)
        start = self._offset
        corrupted = bytearray(data)
        for i in range(len(corrupted)):
            if start + i >= FRAME_HEADER_BYTES:
                corrupted[i] ^= 0xA5
        sent = self._sock.send(bytes(corrupted))
        self._offset += sent
        return sent

    def __getattr__(self, name):
        return getattr(self._sock, name)


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault: *what* to inject at *which* call index.

    Args:
        call_index: 0-based index (per transport) of the ``call()`` — or,
            for ``refuse_connect``, of the call whose dispatch is refused —
            the fault fires on.
        kind: One of :data:`FAULT_KINDS`.
        method: Restrict the fault to calls of this RPC method; ``None``
            matches any method at the index.
        param: Fault parameter — flushed-byte budget for ``cut_send``, delay
            seconds for ``delay``, kill-target index for ``kill_daemon``.
    """

    call_index: int
    kind: str
    method: Optional[str] = None
    param: float = 0.0

    def __post_init__(self):
        if self.kind not in FAULT_KINDS:
            raise ValueError(
                f"Unknown fault kind {self.kind!r}; expected one of {FAULT_KINDS}"
            )


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic schedule of fault events.

    Immutable and reusable: consuming state (which events already fired)
    lives in each :class:`ChaosTransport`, so one plan can drive many
    transports — or the same soak twice — and inject identically each time.
    """

    events: Tuple[FaultEvent, ...] = ()
    seed: Optional[int] = None

    def __post_init__(self):
        object.__setattr__(self, "events", tuple(self.events))

    @classmethod
    def generate(
        cls,
        seed: int,
        calls: int,
        rate: float = 0.1,
        kinds: Sequence[str] = ("cut_send", "cut_recv", "refuse_connect"),
        max_delay: float = 0.0,
    ) -> "FaultPlan":
        """Draw a seeded random schedule over the first ``calls`` call indices.

        The same ``(seed, calls, rate, kinds, max_delay)`` always produces the
        same schedule — :mod:`random` is used through a private
        :class:`random.Random` instance, never the global RNG.
        """
        rng = random.Random(seed)
        events = []
        for index in range(calls):
            if rng.random() >= rate:
                continue
            kind = rng.choice(list(kinds))
            if kind == "cut_send":
                # Half the cuts fail pre-send (retryable), half mid-frame.
                param = 0.0 if rng.random() < 0.5 else float(rng.randint(1, 16))
            elif kind == "delay":
                param = rng.uniform(0.0, max_delay) if max_delay else 0.0
            else:
                param = 0.0
            events.append(FaultEvent(call_index=index, kind=kind, param=param))
        return cls(events=tuple(events), seed=seed)

    def signature(self) -> str:
        """A stable digest of the schedule (for determinism assertions)."""
        body = ";".join(
            f"{e.call_index}:{e.kind}:{e.method}:{e.param!r}" for e in self.events
        )
        return hashlib.sha256(body.encode()).hexdigest()[:16]

    def describe(self) -> str:
        return f"FaultPlan(seed={self.seed}, {len(self.events)} event(s), sig={self.signature()})"


class ChaosTransport(ServiceTransport):
    """A fault-injecting wrapper around any :class:`ServiceTransport`.

    Counts ``call()`` invocations and consults the :class:`FaultPlan` at each
    index. Socket faults are injected *at the socket layer* of a wrapped
    :class:`SocketTransport` (by swapping in :class:`FlushLimitedSocket` /
    :class:`CorruptingSocket`, or severing the read side), so the production
    classification paths — not simulations of them — are exercised. Against
    non-socket transports the faults degrade to raising the error the socket
    path would have classified.

    Args:
        inner: The transport to wrap.
        plan: The fault schedule.
        kill_targets: PIDs (or a callable ``index -> pid``) that
            ``kill_daemon`` events SIGKILL. Events with no resolvable target
            are recorded but inject nothing.
    """

    name = "chaos"

    def __init__(
        self,
        inner: ServiceTransport,
        plan: FaultPlan,
        kill_targets: Optional[Union[Sequence[int], Callable[[int], Optional[int]]]] = None,
    ):
        super().__init__()
        self.inner = inner
        self.plan = plan
        self.kill_targets = kill_targets
        self.calls = 0
        # (call_index, kind, method) log of every fault actually injected, in
        # order — the determinism witness chaos-soak digests.
        self.injected: List[Tuple[int, str, str]] = []
        self._chaos_lock = threading.Lock()
        self._pending: Dict[int, List[FaultEvent]] = {}
        for event in plan.events:
            self._pending.setdefault(event.call_index, []).append(event)

    # -- plan bookkeeping --------------------------------------------------

    def _next_fault(self, method: str) -> Optional[FaultEvent]:
        with self._chaos_lock:
            index = self.calls
            self.calls += 1
            events = self._pending.pop(index, None)
            if not events:
                return None
            fired = None
            deferred = []
            for event in events:
                if fired is None and (event.method is None or event.method == method):
                    fired = event
                else:
                    deferred.append(event)
            if deferred:
                # Method-restricted events that did not match slide to the
                # next call: they fire at the first matching call AT OR AFTER
                # their index (still deterministic — the call sequence is).
                self._pending.setdefault(index + 1, []).extend(deferred)
            if fired is not None:
                self.injected.append((index, fired.kind, method))
            return fired

    def _resolve_kill_target(self, event: FaultEvent) -> Optional[int]:
        index = int(event.param)
        if callable(self.kill_targets):
            return self.kill_targets(index)
        if self.kill_targets is not None and 0 <= index < len(self.kill_targets):
            return self.kill_targets[index]
        return None

    def _live_socket(self):
        """The wrapped SocketTransport's live mux connection, if any."""
        inner = self.inner
        if not isinstance(inner, SocketTransport):
            return None
        acquire = getattr(inner, "_acquire_connection", None)
        if acquire is None:
            return None
        try:
            return acquire()
        except Exception:  # noqa: BLE001 - inject at the simulated layer instead
            return None

    # -- fault application -------------------------------------------------

    def _inject(self, event: FaultEvent, method: str) -> None:
        """Apply ``event``'s *pre-call* effect. May raise, mutate the socket
        (so the inner call fails at the transport's own classifier), or
        SIGKILL a backend; ``delay`` is handled post-call by the caller."""
        if event.kind == "refuse_connect":
            raise ConnectionRefusedError(
                f"chaos: connection refused for {method}() at call {self.calls - 1}"
            )
        if event.kind == "kill_daemon":
            pid = self._resolve_kill_target(event)
            if pid is not None:
                os.kill(pid, signal.SIGKILL)
            return
        conn = self._live_socket()
        if event.kind == "cut_send":
            if conn is not None:
                conn.sock = FlushLimitedSocket(conn.sock, int(event.param))
                return
            if event.param <= 0:
                raise ConnectionError(
                    f"chaos: connection failed before any of {method}() was sent"
                )
            raise ServiceTransportError(
                f"chaos: connection failed after {int(event.param)} bytes of "
                f"{method}() were flushed: the call may already be applied "
                f"and will not be retried"
            )
        if event.kind == "corrupt_frame":
            if conn is not None:
                conn.sock = CorruptingSocket(conn.sock)
                return
            raise ServiceTransportError(
                f"chaos: corrupted frame for {method}(): in-flight calls may "
                f"already be applied and will not be retried"
            )

    def _lose_reply(self, method: str, args: tuple) -> None:
        """Deliver the request, abandon its reply, and kill the connection.

        A socket-level read cut races the connection's reader thread: the
        reply is either lost or routed first, depending on nothing but
        thread scheduling — which would make chaos runs non-reproducible.
        Losing the reply at the transport layer is race-free: the request
        frame is fully flushed (the daemon receives and executes it), its
        reply slot is discarded before the reply can possibly be routed, and
        the connection is retired exactly as the transport's own post-send
        failure path would retire it.
        """
        failure = ServiceTransportError(
            f"chaos: reply to {method}() was lost after execution: the call "
            f"may already be applied on the daemon and will not be retried"
        )
        conn = self._live_socket()
        if conn is not None:
            request_id, _pending = conn.register()
            try:
                conn.send_request(request_id, method, args)
            except Exception:  # noqa: BLE001 - the connection dies either way
                pass
            finally:
                conn.discard(request_id)
            inner = self.inner
            with inner._lock:
                if inner._conn is conn:
                    inner._conn = None
            conn.close(failure)
        raise failure

    def call(self, method: str, *args) -> Any:
        event = self._next_fault(method)
        if event is not None and event.kind == "cut_recv":
            self._lose_reply(method, args)
        if event is not None and event.kind != "delay":
            self._inject(event, method)
        result = self.inner.call(method, *args)
        if event is not None and event.kind == "delay":
            # Stall the reply on its way back up: the ServiceConnection's
            # deadline check sees a slow *success* and refuses to retry it.
            time.sleep(event.param)
        return result

    # -- transparent delegation --------------------------------------------

    def connect(self, max_attempts: int = 1) -> None:
        self.inner.connect(max_attempts=max_attempts)

    def restart(self) -> None:
        self.inner.restart()

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        self.inner.shutdown()

    def server_info(self) -> dict:
        return self.call("server_info")

    @property
    def runtime(self):
        return self.inner.runtime

    @property
    def supports_step_sessions(self) -> bool:
        return bool(getattr(self.inner, "supports_step_sessions", False))

    @property
    def spaces_cache_key(self):
        # Chaos runs must never share cached space metadata with (or poison
        # it for) well-behaved connections to the same URL.
        return None

    def __repr__(self) -> str:
        return (
            f"ChaosTransport({self.inner!r}, calls={self.calls}, "
            f"injected={len(self.injected)})"
        )


def resolve_chaos(chaos) -> Optional[FaultPlan]:
    """Coerce a ``make(..., chaos=...)`` argument to a :class:`FaultPlan`.

    Accepts a plan, an int (shorthand for ``FaultPlan.generate(seed=chaos,
    calls=256)``), or ``None``.
    """
    if chaos is None:
        return None
    if isinstance(chaos, FaultPlan):
        return chaos
    if isinstance(chaos, int) and not isinstance(chaos, bool):
        return FaultPlan.generate(seed=chaos, calls=256)
    raise TypeError(f"chaos must be a FaultPlan, an int seed, or None; got {chaos!r}")


@dataclass
class ServerChaos:
    """Daemon-side fault hooks, consulted by the RPC server per request.

    Attach to any :class:`~repro.core.service.rpc_server.SocketRPCServer`
    (``server.chaos = ServerChaos(...)``). Request indices count every
    dispatched RPC except the ``hello`` handshake, in arrival order on the
    serving side. Faults:

    * ``drop_reply_at`` — execute the request, write no reply (the client
      observes reply loss *after* execution: the at-most-once path).
    * ``corrupt_reply_at`` — execute, then answer with a corrupted frame.
    * ``delay_reply`` — ``{index: seconds}`` holds the reply past deadlines.
    * ``die_at`` — SIGKILL the whole server process mid-request.
    """

    drop_reply_at: frozenset = frozenset()
    corrupt_reply_at: frozenset = frozenset()
    delay_reply: Dict[int, float] = field(default_factory=dict)
    die_at: frozenset = frozenset()

    def __post_init__(self):
        self.drop_reply_at = frozenset(self.drop_reply_at)
        self.corrupt_reply_at = frozenset(self.corrupt_reply_at)
        self.die_at = frozenset(self.die_at)
        self._counter_lock = threading.Lock()
        self._served = 0

    def on_reply(self, method: str) -> Optional[Tuple[str, float]]:
        """Called after a request executed, before its reply is written.

        Returns ``None`` (reply normally) or ``(action, param)`` with action
        one of ``"drop"``, ``"corrupt"``, ``"delay"``. ``die_at`` never
        returns: the process is SIGKILLed here.
        """
        with self._counter_lock:
            index = self._served
            self._served += 1
        if index in self.die_at:
            os.kill(os.getpid(), signal.SIGKILL)
        if index in self.drop_reply_at:
            return ("drop", 0.0)
        if index in self.corrupt_reply_at:
            return ("corrupt", 0.0)
        if index in self.delay_reply:
            return ("delay", self.delay_reply[index])
        return None
