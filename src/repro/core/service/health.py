"""Proactive fleet health: circuit breakers and heartbeat monitoring.

Before this layer, every recovery path in the gateway was *reactive*: a dead
daemon was only discovered when a client call failed into it, paying the
failure's latency on a user-visible RPC. The :class:`HealthMonitor` runs a
background probe loop inside the gateway that calls the lightweight
``heartbeat`` RPC on every live daemon at a fixed interval and triggers the
existing re-home/failover path the moment a daemon stops answering — no
client call needs to be in flight for a corpse to be detected and its
sessions replayed onto survivors.

The :class:`CircuitBreaker` is the flap guard: a daemon that fails
consecutive probes (or client calls) transitions closed → open, and while
open it sheds load — new sessions are not placed on it and batched
``step_sessions`` fan-out short-circuits its sessions to ``ServiceIsDown``
instead of eating a timeout each. After ``reset_timeout`` seconds the
breaker admits a single half-open probe; one success closes it again.
"""

import threading
import time
from typing import Optional

from repro.errors import ServiceIsDown

# Breaker states.
CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """A per-daemon circuit breaker: closed → open → half-open → closed.

    Thread-safe. ``record_failure`` trips the breaker after
    ``failure_threshold`` *consecutive* failures; while open, ``allow()``
    returns False until ``reset_timeout`` seconds have passed, after which a
    single caller is admitted as the half-open probe. ``record_success``
    closes the breaker and zeroes the failure count.
    """

    def __init__(self, failure_threshold: int = 3, reset_timeout: float = 5.0):
        if failure_threshold < 1:
            raise ValueError("failure_threshold must be >= 1")
        self.failure_threshold = failure_threshold
        self.reset_timeout = reset_timeout
        self._lock = threading.Lock()
        self._state = CLOSED
        self._consecutive_failures = 0
        self._opened_at: Optional[float] = None
        self._half_open_inflight = False
        self.trips = 0  # lifetime closed->open transitions

    @property
    def state(self) -> str:
        with self._lock:
            # Surface the would-transition state so server_info readers see
            # "half-open" once the cooldown has elapsed, even if no probe
            # has asked allow() yet.
            if self._state == OPEN and self._cooldown_elapsed():
                return HALF_OPEN
            return self._state

    def _cooldown_elapsed(self) -> bool:
        return (
            self._opened_at is not None
            and time.monotonic() - self._opened_at >= self.reset_timeout
        )

    def allow(self) -> bool:
        """Is a call to the protected daemon currently admitted?

        In the half-open state only one caller is admitted at a time; its
        subsequent ``record_success``/``record_failure`` decides the breaker's
        fate.
        """
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._cooldown_elapsed():
                if self._half_open_inflight:
                    return False
                self._state = HALF_OPEN
                self._half_open_inflight = True
                return True
            # OPEN before cooldown, or HALF_OPEN with the probe in flight.
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = CLOSED
            self._consecutive_failures = 0
            self._opened_at = None
            self._half_open_inflight = False

    def record_failure(self) -> None:
        with self._lock:
            self._consecutive_failures += 1
            if self._state == HALF_OPEN:
                # The probe failed: reopen and restart the cooldown clock.
                self._state = OPEN
                self._opened_at = time.monotonic()
                self._half_open_inflight = False
                return
            if (
                self._state == CLOSED
                and self._consecutive_failures >= self.failure_threshold
            ):
                self._state = OPEN
                self._opened_at = time.monotonic()
                self.trips += 1

    def force_open(self) -> None:
        """Trip the breaker immediately (e.g. on a refused connection)."""
        with self._lock:
            if self._state != OPEN:
                self.trips += 1
            self._state = OPEN
            self._opened_at = time.monotonic()
            self._consecutive_failures = max(
                self._consecutive_failures, self.failure_threshold
            )
            self._half_open_inflight = False

    def __repr__(self) -> str:
        return f"CircuitBreaker(state={self.state!r}, trips={self.trips})"


class HealthMonitor(threading.Thread):
    """Background heartbeat prober that drives proactive failover.

    Every ``interval`` seconds, sends the ``heartbeat`` RPC to each live
    daemon of ``gateway``. A refused connection (nothing is listening — the
    process is gone) declares the daemon dead on the *first* probe; other
    errors must repeat ``failure_threshold`` consecutive times. Either way,
    death is handled by calling the gateway's existing
    ``_handle_daemon_failure`` path, which re-homes the daemon's sessions by
    replaying their action recipes onto survivors — so by the time the next
    client call arrives, the fleet has already routed around the corpse.

    Detection latency is therefore bounded by ~1 probe interval for a
    SIGKILLed daemon (first refused connect) and ``failure_threshold``
    intervals for a wedged-but-listening one.
    """

    daemon = True

    def __init__(self, gateway, interval: float = 1.0, failure_threshold: int = 2):
        super().__init__(name="gateway-health-monitor")
        self.gateway = gateway
        self.interval = interval
        self.failure_threshold = failure_threshold
        self.probes = 0
        self.deaths_detected = 0
        self._misses = {}  # daemon index -> consecutive failed probes
        self._stop_event = threading.Event()

    def stop(self, timeout: float = 5.0) -> None:
        self._stop_event.set()
        if self.is_alive():
            self.join(timeout=timeout)

    def run(self) -> None:
        while not self._stop_event.wait(self.interval):
            try:
                self.probe_once()
            except Exception:  # noqa: BLE001 - the monitor must never die
                pass

    def probe_once(self) -> None:
        """One probe sweep over the fleet (also callable from tests)."""
        for daemon in self.gateway.live_daemons():
            if self._stop_event.is_set():
                return
            self.probes += 1
            try:
                daemon.connection.transport.heartbeat()
            except ConnectionRefusedError:
                # Nothing is listening on the daemon's socket: the process
                # is gone. No point waiting for more evidence.
                self._declare_dead(daemon)
            except Exception:  # noqa: BLE001 - any other probe failure
                daemon.breaker.record_failure()
                misses = self._misses.get(daemon.index, 0) + 1
                self._misses[daemon.index] = misses
                if misses >= self.failure_threshold:
                    self._declare_dead(daemon)
            else:
                self._misses.pop(daemon.index, None)
                daemon.last_heartbeat = time.monotonic()
                daemon.breaker.record_success()

    def _declare_dead(self, daemon) -> None:
        self._misses.pop(daemon.index, None)
        daemon.breaker.force_open()
        self.deaths_detected += 1
        self.gateway._handle_daemon_failure(
            daemon,
            ServiceIsDown(
                f"Heartbeat probe found daemon {daemon.index} at {daemon.url} dead"
            ),
        )
