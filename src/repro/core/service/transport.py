"""Transports carrying service RPCs from the client to a compiler service.

The paper's headline design is a client/server split: compiler environments
talk to a long-lived compiler *service* over RPC, so one service can host
many sessions, survive client churn, and live on another machine. A
:class:`ServiceTransport` is the seam where that split happens: the
:class:`~repro.core.service.connection.ServiceConnection` owns the
fault-tolerance policy (timeouts, retries, restart, call accounting) and
delegates the actual dispatch of each ``(method, *args)`` RPC to a transport.

Three implementations are provided:

* :class:`InProcessTransport` — the runtime lives in the calling process and
  calls are plain method invocations. The default, and the fastest.
* :class:`PipeTransport` — the runtime lives in a subprocess and calls are
  pickled over a ``multiprocessing`` pipe. Gives crash isolation: a compiler
  bug that takes down the runtime process is observed as a transport error
  and recovered by the connection's restart loop.
* :class:`SocketTransport` — the runtime lives in a standalone daemon (see
  :mod:`repro.core.service.runtime.server`) reachable over a TCP or Unix
  socket, speaking length-prefixed pickled messages. This is the paper's
  deployment shape: the daemon multiplexes sessions from many clients,
  survives client restarts, and can run on a different machine.

The framing and encoding of every byte on the wire — the ``(status,
payload)`` reply convention, the version-prefixed frame layout, the codec
registry, service URL parsing — live in :mod:`repro.core.service.wire`, the
single source of truth shared with the daemon, the gateway, and the
process-pool worker protocol. This module re-exports the common names for
backwards compatibility.

The socket protocol is *multiplexed*: every frame starts with a wire-version
byte, requests carry a monotonically increasing request id, and replies echo
it back. One :class:`SocketTransport` holds one socket plus a single reader
thread that routes replies to the caller that issued each request, so any
number of concurrent callers — forked environments, pool workers, batched
steppers — overlap their RPCs on the shared connection instead of
serializing on it. On connect the transport performs the ``hello``
handshake: it presents its auth token and the wire versions it speaks, and
adopts the negotiated version (falling back to the legacy bare-pickle
dialect against a pre-handshake daemon).
"""

import itertools
import multiprocessing
import os
import socket
import threading
import time
from typing import Any, Callable, Dict, Optional, Tuple

from repro.core.service.wire import (  # noqa: F401 - re-exported wire API
    LEGACY_WIRE_VERSION,
    MAX_FRAME_BYTES,
    PROTOCOL_VERSION,
    REPLY_ERROR,
    REPLY_OK,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    frame_bytes,
    parse_service_url,
    read_frame,
    read_frame_ex,
    send_reply,
    write_frame,
    write_frame_reply,
)
from repro.errors import (
    CompilerGymError,
    PermissionDeniedError,
    ServiceError,
    ServiceIsClosed,
    ServiceTransportError,
)


class ServiceTransport:
    """Strategy interface: carries one ``(method, *args)`` RPC to a runtime.

    Transports are deliberately policy-free: no retries, no timeouts, no
    accounting. All of that lives in
    :class:`~repro.core.service.connection.ServiceConnection`, identically
    for every transport. A transport only knows how to (re)establish its
    channel and dispatch a call over it.
    """

    name = "transport"
    # Seconds to wait between failed connect attempts (doubled per retry).
    # Zero for channels whose failures are not time-dependent.
    _connect_retry_wait = 0.0

    def __init__(self):
        self.closed = False
        self._connect_attempts = 1

    def connect(self, max_attempts: int = 1) -> None:
        """Establish the channel, retrying up to ``max_attempts`` times.

        The retry policy lives here once; transports implement :meth:`_open`
        (establish the channel) and optionally :meth:`_on_connect_failure`
        (clean up a half-open channel before the next attempt).
        """
        self._connect_attempts = max(1, max_attempts)
        wait = self._connect_retry_wait
        last_error = None
        for attempt in range(self._connect_attempts):
            try:
                self._open()
                return
            except PermissionDeniedError:
                # The channel is fine; the credentials are not. Retrying (or
                # wrapping in a generic, retryable-looking error) would only
                # hammer the service with the same rejected token.
                self._on_connect_failure()
                raise
            except Exception as error:  # noqa: BLE001 - retried, then raised
                last_error = error
                self._on_connect_failure()
                if wait and attempt + 1 < self._connect_attempts:
                    time.sleep(wait)
                    wait *= 2
        raise ServiceError(f"{self._connect_error_prefix}: {last_error}")

    def _open(self) -> None:
        """Establish the channel (one attempt)."""

    def _on_connect_failure(self) -> None:
        """Tear down whatever :meth:`_open` half-built. No-op by default."""

    @property
    def _connect_error_prefix(self) -> str:
        return "Failed to establish the compiler service channel"

    def call(self, method: str, *args) -> Any:
        """Dispatch one RPC and return its reply (or raise its error)."""
        raise NotImplementedError

    def restart(self) -> None:
        """Tear down and re-establish the backend channel (crash recovery).

        For the in-process and pipe transports this destroys the runtime —
        and with it every session it hosted. For the socket transport only
        the *connection* is recreated; the daemon (and its sessions) live on.
        """
        raise NotImplementedError

    def shutdown(self) -> None:
        """Release the channel. Does not stop a shared remote service."""
        self.closed = True

    @property
    def runtime(self):
        """The in-process runtime, when there is one (else ``None``)."""
        return None

    def __repr__(self) -> str:
        return f"{type(self).__name__}()"


class InProcessTransport(ServiceTransport):
    """Dispatches calls directly on a runtime owned by the calling process."""

    name = "in-process"

    def __init__(self, runtime_factory: Callable[[], Any]):
        super().__init__()
        self._runtime_factory = runtime_factory
        self._runtime = None

    def _open(self) -> None:
        self._runtime = self._runtime_factory()

    @property
    def _connect_error_prefix(self) -> str:
        return "Failed to create compiler service"

    def call(self, method: str, *args) -> Any:
        if self._runtime is None:
            self.connect(self._connect_attempts)
        return getattr(self._runtime, method)(*args)

    def restart(self) -> None:
        if self._runtime is not None:
            try:
                self._runtime.shutdown()
            except Exception:  # noqa: BLE001 - the old runtime may be in any state
                pass
        self._runtime = None
        self.connect(self._connect_attempts)

    def shutdown(self) -> None:
        if self.closed:
            return
        self.closed = True
        if self._runtime is not None:
            self._runtime.shutdown()

    @property
    def runtime(self):
        return self._runtime


def _pipe_service_main(conn, runtime_factory: Callable[[], Any]) -> None:
    """Subprocess entry point: host a runtime, serve RPCs until closed."""
    try:
        runtime = runtime_factory()
    except BaseException as error:  # noqa: BLE001 - reported to the parent
        send_reply(conn, REPLY_ERROR, error)
        conn.close()
        return
    send_reply(conn, REPLY_OK, None)
    try:
        while True:
            try:
                method, args = conn.recv()
            except (EOFError, OSError):
                break
            if method == "__shutdown__":
                send_reply(conn, REPLY_OK, None)
                break
            try:
                result = getattr(runtime, method)(*args)
            except BaseException as error:  # noqa: BLE001 - translated client-side
                send_reply(conn, REPLY_ERROR, error)
            else:
                send_reply(conn, REPLY_OK, result)
    finally:
        try:
            runtime.shutdown()
        except Exception:  # noqa: BLE001 - already shutting down
            pass
        conn.close()


class PipeTransport(ServiceTransport):
    """Hosts the runtime in a subprocess behind a pickled-pipe RPC channel.

    The factory must be picklable (it is shipped to the subprocess), and so
    must every request and reply. In exchange the compiler runtime gets a
    process boundary: a crash in the backend kills only the child, surfaces
    here as a transport error, and is healed by the connection's
    restart/retry loop with a fresh subprocess.
    """

    name = "pipe"

    def __init__(
        self, runtime_factory: Callable[[], Any], start_method: Optional[str] = None
    ):
        super().__init__()
        self._runtime_factory = runtime_factory
        if start_method is None:
            methods = multiprocessing.get_all_start_methods()
            start_method = "fork" if "fork" in methods else "spawn"
        self._ctx = multiprocessing.get_context(start_method)
        self._process = None
        self._conn = None
        self._lock = threading.Lock()

    def _on_connect_failure(self) -> None:
        self._teardown()

    @property
    def _connect_error_prefix(self) -> str:
        return "Failed to start pipe service subprocess"

    def _open(self) -> None:
        parent_conn, child_conn = self._ctx.Pipe()
        self._process = self._ctx.Process(
            target=_pipe_service_main,
            args=(child_conn, self._runtime_factory),
            daemon=True,
            name="repro-pipe-service",
        )
        self._process.start()
        child_conn.close()
        self._conn = parent_conn
        status, payload = self._receive()
        if status == REPLY_ERROR:
            raise payload

    def _receive(self):
        try:
            return self._conn.recv()
        except (EOFError, OSError) as error:
            pid = self._process.pid if self._process else None
            raise ConnectionError(f"Pipe service (pid={pid}) died: {error}") from error

    def call(self, method: str, *args) -> Any:
        with self._lock:
            if self.closed:
                raise ServiceIsClosed("Pipe transport is closed")
            if self._conn is None:
                raise ConnectionError("Pipe transport is not connected")
            try:
                self._conn.send((method, args))
            except (OSError, BrokenPipeError) as error:
                raise ConnectionError(f"Pipe service is gone: {error}") from error
            status, payload = self._receive()
        if status == REPLY_ERROR:
            raise payload
        return payload

    def _teardown(self) -> None:
        if self._conn is not None:
            try:
                self._conn.close()
            except Exception:  # noqa: BLE001
                pass
            self._conn = None
        if self._process is not None:
            if self._process.is_alive():
                self._process.terminate()
            self._process.join(timeout=5)
            self._process = None

    def restart(self) -> None:
        with self._lock:
            self._teardown()
            self.connect(self._connect_attempts)

    def shutdown(self) -> None:
        with self._lock:
            if self.closed:
                return
            self.closed = True
            if self._conn is not None:
                try:
                    self._conn.send(("__shutdown__", ()))
                    self._conn.recv()
                except (OSError, EOFError, BrokenPipeError):
                    pass
            self._teardown()

    def __repr__(self) -> str:
        pid = self._process.pid if self._process else None
        return f"PipeTransport(pid={pid}, closed={self.closed})"


class _SendError(Exception):
    """Internal: a socket send failed after ``bytes_flushed`` bytes left."""

    def __init__(self, cause: BaseException, bytes_flushed: int):
        super().__init__(str(cause))
        self.cause = cause
        self.bytes_flushed = bytes_flushed


class _PendingReply:
    """One caller's slot in the demultiplexer: an event plus the outcome."""

    __slots__ = ("event", "status", "payload", "error")

    def __init__(self):
        self.event = threading.Event()
        self.status = None
        self.payload = None
        self.error: Optional[BaseException] = None

    def resolve(self, status: str, payload: Any) -> None:
        self.status = status
        self.payload = payload
        self.event.set()

    def fail(self, error: BaseException) -> None:
        self.error = error
        self.event.set()


class _MuxSocketConnection:
    """One live multiplexed socket to the daemon.

    Owns the connection *epoch*: the socket, the per-connection request-id
    counter, the pending map, and the single reader thread that routes each
    ``(request_id, status, payload)`` reply frame to the caller that issued
    the matching request. Concurrent callers interleave freely — sends are
    serialized under a send lock (frames must not interleave on the wire)
    but nobody waits for anyone else's reply. A dead connection is never
    revived: the transport opens a fresh epoch instead, so a stale reader
    can never consume frames meant for a successor connection.

    With ``inline_reads=True`` there is no reader thread: waiters share the
    read side cooperatively (leader/follower — see :meth:`await_reply`), so
    a single-flight caller pays zero cross-thread handoffs per round trip.
    Sends are unaffected, so concurrent requests still overlap in flight.
    """

    def __init__(
        self,
        url: str,
        family: str,
        address,
        timeout: float,
        inline_reads: bool = False,
    ):
        self.url = url
        self.timeout = timeout
        if family == "unix":
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        else:
            inet = socket.AF_INET6 if ":" in address[0] else socket.AF_INET
            sock = socket.socket(inet, socket.SOCK_STREAM)
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        sock.settimeout(timeout)
        sock.connect(address)
        self.sock = sock
        self._rfile = sock.makefile("rb")
        self._send_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: Dict[int, _PendingReply] = {}
        self._request_ids = itertools.count()
        self.dead: Optional[BaseException] = None
        self.closed = False  # Set by a deliberate local close/shutdown.
        # Wire version this connection encodes requests at. Starts at the
        # legacy dialect — which any server can decode — and is raised by the
        # transport after the hello handshake settles on a shared version.
        # Replies are self-describing (each frame carries its version byte)
        # so the reader needs no matching state.
        self.negotiated_version = LEGACY_WIRE_VERSION
        self._inline_reads = inline_reads
        # Leader/follower state for inline reads: at most one waiter (the
        # leader) blocks in recv at a time; the rest wait on this condition
        # for either their reply or the reader role.
        self._role_cv = threading.Condition()
        self._reading = False
        self._reader: Optional[threading.Thread] = None
        if not inline_reads:
            self._reader = threading.Thread(
                target=self._read_loop, name="repro-socket-reader", daemon=True
            )
            self._reader.start()

    # -- request lifecycle -------------------------------------------------

    def register(self) -> Tuple[int, _PendingReply]:
        """Allocate a request id and its reply slot.

        Registration happens *before* the send so a reply can never race
        past its waiter.
        """
        pending = _PendingReply()
        with self._pending_lock:
            if self.dead is not None:
                raise ConnectionError(f"Connection to {self.url} is down: {self.dead}")
            request_id = next(self._request_ids)
            self._pending[request_id] = pending
        return request_id, pending

    def discard(self, request_id: int) -> None:
        with self._pending_lock:
            self._pending.pop(request_id, None)

    def send_request(self, request_id: int, method: str, args: tuple) -> None:
        """Send one request frame, tracking exactly how many bytes left.

        Raises :class:`_SendError` carrying ``bytes_flushed`` so the caller
        can classify the failure: 0 bytes flushed means the request cannot
        have reached the daemon (safe to retry); anything more is ambiguous
        (must not be retried).
        """
        frame = frame_bytes((request_id, method, args), self.negotiated_version)
        view = memoryview(frame)
        sent = 0
        with self._send_lock:
            try:
                while sent < len(view):
                    sent += self.sock.send(view[sent:])
            except (OSError, ValueError) as error:
                raise _SendError(error, bytes_flushed=sent) from error

    # -- reply routing (reader thread or inline leader) --------------------

    def _read_loop(self) -> None:
        while self.dead is None:
            self._read_one()

    def _read_one(self) -> None:
        """Read and route one reply frame; on failure, kill the connection."""
        try:
            message = read_frame(self._rfile)
        except socket.timeout:
            # An idle read timeout is fatal only when somebody is
            # actually waiting: it means a request overran the transport
            # timeout. A quiet connection with nothing pending just
            # keeps listening.
            with self._pending_lock:
                waiting = bool(self._pending)
            if not waiting:
                return
            self._fail_pending(
                ServiceTransportError(
                    f"No reply from {self.url} within {self.timeout}s: the "
                    f"call may already be applied on the daemon and will "
                    f"not be retried"
                )
            )
            self._close_streams()
            return
        except Exception as error:  # noqa: BLE001 - EOF, reset, corruption
            self._fail_pending(self._death_error(error))
            self._close_streams()
            return
        try:
            request_id, status, payload = message
        except (TypeError, ValueError):
            self._fail_pending(
                ServiceTransportError(
                    f"Malformed reply frame from {self.url}: in-flight "
                    f"calls may already be applied and will not be retried"
                )
            )
            self._close_streams()
            return
        with self._pending_lock:
            pending = self._pending.pop(request_id, None)
        if pending is not None:
            pending.resolve(status, payload)
        # An unmatched id is a reply whose waiter gave up; drop it.

    def await_reply(
        self, request_id: int, pending: _PendingReply, timeout: float
    ) -> bool:
        """Block until this request's reply slot resolves; False on timeout.

        Mux connections just park on the slot's event — the reader thread
        routes frames. Inline connections run a leader/follower protocol
        instead: the first waiter reads the socket on its *own* thread, so a
        single-flight caller (the common gateway fleet-link case) pays zero
        cross-thread handoffs per round trip. A leader whose frame resolves
        somebody else's slot keeps reading; when its own reply lands it hands
        the reader role to the next waiter via the condition variable.
        """
        if not self._inline_reads:
            return pending.event.wait(timeout)
        deadline = time.monotonic() + timeout
        while not pending.event.is_set():
            with self._role_cv:
                while not pending.event.is_set() and self._reading:
                    remaining = deadline - time.monotonic()
                    if remaining <= 0:
                        return pending.event.is_set()
                    self._role_cv.wait(remaining)
                if pending.event.is_set():
                    return True
                self._reading = True
            try:
                self._read_one()
            finally:
                with self._role_cv:
                    self._reading = False
                    self._role_cv.notify_all()
            if self.dead is not None:
                # _read_one failed every pending slot, ours included.
                break
        return pending.event.is_set()

    def _death_error(self, error: BaseException) -> BaseException:
        if self.closed:
            return ServiceIsClosed("Socket transport is closed")
        return ServiceTransportError(
            f"Connection to {self.url} was lost with calls in flight: they "
            f"may already be applied on the daemon and will not be retried "
            f"({type(error).__name__}: {error})"
        )

    def _fail_pending(self, error: BaseException) -> None:
        with self._pending_lock:
            if self.dead is None:
                self.dead = error
            pending = list(self._pending.values())
            self._pending.clear()
        for slot in pending:
            slot.fail(error)
        # Wake inline followers parked on the role condition (their slots
        # just failed, but only a notify re-checks the wait predicate).
        with self._role_cv:
            self._role_cv.notify_all()

    # -- teardown ----------------------------------------------------------

    def _close_streams(self) -> None:
        for stream in (self._rfile, self.sock):
            try:
                stream.close()
            except Exception:  # noqa: BLE001
                pass

    def close(self, error: Optional[BaseException] = None) -> None:
        """Deliberate local teardown: fail in-flight calls, wake the reader."""
        self.closed = True
        self._fail_pending(error if error is not None else self._death_error(EOFError()))
        try:
            self.sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._close_streams()


class SocketTransport(ServiceTransport):
    """Speaks the multiplexed pickled RPC protocol to a service daemon.

    One transport holds one socket to the daemon, shared by any number of
    concurrent callers: every request carries a connection-unique request id,
    and a single reader thread routes each reply to the caller that issued
    it, so forked environments and pool workers overlap their round trips on
    the one connection instead of serializing. ``restart()`` reconnects
    without touching the daemon, so crash recovery on the client never
    destroys server-side sessions other than the caller's own.
    """

    name = "socket"
    # The daemon understands the step_sessions batch RPC (vec pools use this
    # to collapse a whole pool step into one round trip).
    supports_step_sessions = True
    # The daemon may still be binding when the first client arrives; back
    # off briefly between connect attempts.
    _connect_retry_wait = 0.05

    def __init__(
        self,
        url: str,
        timeout: float = 300.0,
        connect_retry_wait: float = None,
        auth_token: Optional[str] = None,
        wire_version: Optional[int] = None,
        inline_reads: bool = False,
    ):
        super().__init__()
        self.url = url
        self.family, self.address = parse_service_url(url)
        self.timeout = timeout
        self.auth_token = auth_token
        # Optional ceiling on the negotiated wire version. A gateway pins its
        # authenticated fleet links to the compact legacy codec: the typed
        # codec's skew tolerance buys nothing between co-released peers, and
        # the encode/decode premium is pure tax on every proxied hop.
        self.wire_version = wire_version
        # Read replies on the waiting caller's thread (leader/follower)
        # instead of a dedicated reader thread. Gateways use this on fleet
        # links, where the dispatch thread is almost always the only waiter:
        # it trims two thread wakeups off every proxied round trip.
        self.inline_reads = inline_reads
        if connect_retry_wait is not None:
            self._connect_retry_wait = connect_retry_wait
        self._conn: Optional[_MuxSocketConnection] = None
        self._lock = threading.RLock()
        self._spaces_epoch = 0

    @property
    def spaces_cache_key(self) -> str:
        """Key under which static space metadata of this service is cached
        client-side (all connections to one URL see the same spaces).

        A gateway bumps its ``spaces_epoch`` whenever it re-homes sessions
        across its fleet; folding the epoch into the key retires pre-failover
        metadata without any cross-client invalidation protocol. Epoch 0 —
        every plain daemon — keeps the bare URL so existing cache clears
        keyed by URL keep working.
        """
        if self._spaces_epoch:
            return f"{self.url}#e{self._spaces_epoch}"
        return self.url

    def _open(self) -> None:
        conn = _MuxSocketConnection(
            self.url,
            self.family,
            self.address,
            self.timeout,
            inline_reads=self.inline_reads,
        )
        try:
            self._handshake(conn)
        except BaseException:
            conn.close(ServiceIsClosed("Handshake failed"))
            raise
        self._conn = conn

    def _handshake(self, conn: _MuxSocketConnection) -> None:
        """Run the hello exchange on a fresh connection.

        The request is encoded at the connection's initial (legacy) version
        so any server can read it. A pre-handshake daemon answers with
        "unknown method", which downgrades this client to the legacy
        bare-pickle dialect instead of failing — one full version of skew in
        either direction keeps working.
        """
        from repro.core.service.proto import HelloReply, HelloRequest

        advertised = sorted(SUPPORTED_WIRE_VERSIONS)
        if self.wire_version is not None:
            advertised = [v for v in advertised if v <= self.wire_version]
        request = HelloRequest(
            token=self.auth_token,
            wire_versions=advertised,
            client=f"repro-client-pid{os.getpid()}",
        )
        request_id, pending = conn.register()
        try:
            conn.send_request(request_id, "hello", (request,))
        except _SendError as error:
            conn.discard(request_id)
            raise ConnectionError(
                f"Connection to {self.url} failed during handshake: {error.cause}"
            ) from error.cause
        if not conn.await_reply(request_id, pending, self.timeout + 30):
            conn.discard(request_id)
            raise ConnectionError(
                f"No hello reply from {self.url} within {self.timeout}s"
            )
        if pending.error is not None:
            raise pending.error
        if pending.status == REPLY_ERROR:
            if isinstance(pending.payload, PermissionDeniedError):
                raise pending.payload
            # Legacy daemon: no hello method. Stay on the legacy dialect.
            return
        reply = pending.payload
        if isinstance(reply, HelloReply) and reply.wire_version in SUPPORTED_WIRE_VERSIONS:
            conn.negotiated_version = reply.wire_version
            self._note_spaces_epoch(reply.spaces_epoch)

    def _note_spaces_epoch(self, epoch: int) -> None:
        """Adopt the server's spaces epoch, retiring the stale cache entry."""
        if epoch == self._spaces_epoch:
            return
        stale_key = self.spaces_cache_key
        self._spaces_epoch = epoch
        from repro.core.service.connection import clear_spaces_cache

        clear_spaces_cache(stale_key)

    def _on_connect_failure(self) -> None:
        self._close_socket()

    @property
    def _connect_error_prefix(self) -> str:
        return f"Failed to connect to compiler service at {self.url}"

    def _close_socket(self, error: Optional[BaseException] = None) -> None:
        conn, self._conn = self._conn, None
        if conn is not None:
            conn.close(error)

    def _acquire_connection(self) -> _MuxSocketConnection:
        with self._lock:
            if self.closed:
                raise ServiceIsClosed("Socket transport is closed")
            conn = self._conn
            if conn is None or conn.dead is not None:
                # Lazily (re)connect, e.g. on the first call after restart().
                self._conn = None
                self._open()
                conn = self._conn
            return conn

    def call(self, method: str, *args) -> Any:
        conn = self._acquire_connection()
        request_id, pending = conn.register()
        try:
            conn.send_request(request_id, method, args)
        except _SendError as error:
            conn.discard(request_id)
            # The socket is broken for every caller sharing it; retire this
            # connection epoch (failing other in-flight calls, whose frames
            # WERE fully sent, as non-retryable).
            with self._lock:
                if self._conn is conn:
                    self._conn = None
            if error.bytes_flushed == 0:
                # Nothing reached the wire: the request cannot be applied on
                # the daemon, so the connection's restart/retry loop may
                # safely re-send it on a fresh connection.
                conn.close(
                    ServiceTransportError(
                        f"Connection to {self.url} was lost: in-flight calls "
                        f"may already be applied and will not be retried"
                    )
                )
                raise ConnectionError(
                    f"Service connection to {self.url} failed before any of "
                    f"the request was sent: {error.cause}"
                ) from error.cause
            # Part of the frame left this client. The daemon may have read a
            # complete request off the socket buffer before the failure — a
            # retry could re-apply a non-idempotent step() to a live session,
            # exactly the bug class the post-send path guards against.
            failure = ServiceTransportError(
                f"Service connection to {self.url} failed after "
                f"{error.bytes_flushed} bytes of {method}() were flushed: the "
                f"call may already be applied on the daemon and will not be "
                f"retried ({error.cause})"
            )
            conn.close(failure)
            raise failure from error.cause
        # Wait for our reply to be routed (by the reader thread, or by
        # reading inline on this thread). The read side enforces the
        # transport timeout centrally; the slack here is only a backstop
        # against the reader dying without failing this slot.
        if not conn.await_reply(request_id, pending, self.timeout + 30):
            conn.discard(request_id)
            with self._lock:
                if self._conn is conn:
                    self._conn = None
            failure = ServiceTransportError(
                f"No reply from {self.url} for {method}() within "
                f"{self.timeout}s: the call may already be applied on the "
                f"daemon and will not be retried"
            )
            conn.close(failure)
            raise failure
        if pending.error is not None:
            raise pending.error
        status, payload = pending.status, pending.payload
        if status == REPLY_ERROR:
            if isinstance(payload, (CompilerGymError, LookupError)):
                raise payload
            # A generic exception raised *inside* the daemon (a compiler
            # crash mid-multistep, say) reached us over a healthy channel —
            # the request may be partially applied to a session that, unlike
            # an in-process runtime, survives the connection's restart().
            # Wrap it in the non-retryable family so the retry loop cannot
            # re-apply it; the environment's fault-tolerance path ends the
            # episode instead.
            raise ServiceError(
                f"Compiler service error in {method}(): "
                f"{type(payload).__name__}: {payload}"
            ) from payload
        return payload

    def restart(self) -> None:
        """Reconnect to the daemon. Server-side sessions are untouched."""
        with self._lock:
            self._close_socket()
            self.connect(self._connect_attempts)

    def shutdown(self) -> None:
        """Disconnect. The daemon keeps running — it is a shared service."""
        if self.closed:
            return
        self.closed = True
        # Closing the connection epoch wakes every in-flight caller (their
        # reply slots fail with ServiceIsClosed) and unblocks the reader.
        with self._lock:
            self._close_socket(ServiceIsClosed("Socket transport is closed"))

    def server_info(self) -> dict:
        """Fetch the daemon's identity/occupancy snapshot (pid, sessions...)."""
        return self.call("server_info")

    def heartbeat(self) -> dict:
        """Probe server liveness with the cheapest RPC the protocol has.

        Served by the RPC base class *before* the auth check — a health
        monitor needs no tenant token to ask "are you alive?". A refused
        connection propagates as :class:`ConnectionRefusedError`, which
        callers treat as "nothing is listening: the process is gone".
        """
        return self.call("heartbeat")

    def __repr__(self) -> str:
        return f"SocketTransport(url={self.url!r}, closed={self.closed})"


def resolve_transport(target) -> ServiceTransport:
    """Coerce a transport specifier to a :class:`ServiceTransport`.

    ``target`` may be a transport instance (returned as-is) or a runtime
    factory callable (wrapped in :class:`InProcessTransport`, preserving the
    pre-transport ``ServiceConnection(runtime_factory)`` calling convention).
    """
    if isinstance(target, ServiceTransport):
        return target
    if callable(target):
        return InProcessTransport(target)
    raise TypeError(
        f"Expected a ServiceTransport or a runtime factory, got {target!r}"
    )
