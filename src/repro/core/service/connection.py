"""Client-side connection to a compiler service.

The :class:`ServiceConnection` is the frontend's only way of talking to the
backend runtime. It reproduces the robustness features the paper calls out:
call timeouts, bounded retry loops with exponential backoff, graceful error
translation, crash detection and service restart, and per-operation wall-time
accounting (used by the Table II efficiency benchmarks).

Calls are dispatched in-process by default. A ``rpc_latency`` can be
configured to model the per-call round-trip cost of a real RPC transport,
which is what the batched-step experiments measure against.
"""

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional

from repro.core.service.proto import (
    EndSessionRequest,
    ForkSessionRequest,
    GetSpacesReply,
    StartSessionRequest,
    StepRequest,
)
from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime
from repro.errors import ServiceError, ServiceIsClosed, ServiceTransportError, SessionNotFound


@dataclass
class ConnectionOpts:
    """Configuration of the service connection retry/timeout behaviour."""

    rpc_call_max_seconds: float = 300.0
    rpc_max_retries: int = 5
    retry_wait_seconds: float = 0.01
    retry_wait_backoff_exponent: float = 1.5
    # Simulated per-call transport latency in seconds. Zero by default; the
    # efficiency benchmarks set this to a non-zero value to model the RPC
    # round trip that batched steps amortize.
    rpc_latency: float = 0.0
    init_max_seconds: float = 30.0
    init_max_attempts: int = 5


@dataclass
class CallStats:
    """Wall-time accounting for one RPC method."""

    calls: int = 0
    errors: int = 0
    retries: int = 0
    wall_times: List[float] = field(default_factory=list)

    def record(self, wall_time: float) -> None:
        self.calls += 1
        self.wall_times.append(wall_time)


class ServiceConnection:
    """A fault-tolerant connection to a :class:`CompilerGymServiceRuntime`."""

    def __init__(
        self,
        runtime_factory: Callable[[], CompilerGymServiceRuntime],
        opts: Optional[ConnectionOpts] = None,
    ):
        self.opts = opts or ConnectionOpts()
        self._runtime_factory = runtime_factory
        self.closed = False
        self.restart_count = 0
        # Reference count of environments sharing this connection (the
        # creating environment plus any forks). The connection shuts down
        # when the last of them releases it.
        self._refcount = 1
        self.stats: Dict[str, CallStats] = {}
        start = time.perf_counter()
        self._runtime = self._create_runtime()
        self.startup_wall_time = time.perf_counter() - start
        self.spaces: GetSpacesReply = self._call("get_spaces", self._runtime.get_spaces)

    def _create_runtime(self) -> CompilerGymServiceRuntime:
        last_error = None
        for _ in range(max(1, self.opts.init_max_attempts)):
            try:
                return self._runtime_factory()
            except Exception as error:  # noqa: BLE001 - converted to ServiceInitError
                last_error = error
        raise ServiceError(f"Failed to create compiler service: {last_error}")

    @property
    def runtime(self) -> CompilerGymServiceRuntime:
        return self._runtime

    def restart(self) -> None:
        """Tear down and recreate the backend runtime (crash recovery)."""
        try:
            self._runtime.shutdown()
        except Exception:  # noqa: BLE001 - the old runtime may be in any state
            pass
        self._runtime = self._create_runtime()
        self.restart_count += 1

    def _call(self, name: str, fn: Callable, *args):
        """Invoke a service method with timeout, retry, and error translation."""
        if self.closed:
            raise ServiceIsClosed(f"Cannot call {name}() on a closed service")
        stats = self.stats.setdefault(name, CallStats())
        wait = self.opts.retry_wait_seconds
        attempts = max(1, self.opts.rpc_max_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            start = time.perf_counter()
            try:
                if self.opts.rpc_latency:
                    time.sleep(self.opts.rpc_latency)
                result = fn(*args)
                elapsed = time.perf_counter() - start
                if elapsed > self.opts.rpc_call_max_seconds:
                    raise ServiceTransportError(
                        f"Service call {name}() exceeded {self.opts.rpc_call_max_seconds}s timeout"
                    )
                stats.record(elapsed)
                return result
            except (SessionNotFound, ServiceIsClosed):
                stats.errors += 1
                raise
            except ServiceError:
                stats.errors += 1
                raise
            except Exception as error:  # noqa: BLE001 - backend crash: retry after restart
                stats.errors += 1
                last_error = error
                if attempt + 1 < attempts:
                    stats.retries += 1
                    time.sleep(wait)
                    wait *= self.opts.retry_wait_backoff_exponent
                    self.restart()
        raise ServiceError(
            f"Service call {name}() failed after {attempts} attempts: {last_error}"
        ) from last_error

    # -- RPC methods ------------------------------------------------------

    def get_spaces(self) -> GetSpacesReply:
        return self._call("get_spaces", self._runtime.get_spaces)

    def start_session(self, request: StartSessionRequest):
        return self._call("start_session", self._runtime.start_session, request)

    def step(self, request: StepRequest):
        return self._call("step", self._runtime.step, request)

    def fork_session(self, request: ForkSessionRequest):
        return self._call("fork_session", self._runtime.fork_session, request)

    def end_session(self, request: EndSessionRequest):
        if self.closed:
            return None
        return self._call("end_session", self._runtime.end_session, request)

    def handle_session_parameter(self, session_id: int, key: str, value: str):
        return self._call(
            "session_parameter", self._runtime.handle_session_parameter, session_id, key, value
        )

    def acquire(self) -> "ServiceConnection":
        """Register another environment sharing this connection (fork())."""
        self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one reference; the connection closes when none remain."""
        self._refcount -= 1
        if self._refcount <= 0:
            self.close()

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._runtime.shutdown()
        finally:
            self.closed = True

    def __enter__(self) -> "ServiceConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
