"""Client-side connection to a compiler service.

The :class:`ServiceConnection` is the frontend's only way of talking to the
backend runtime. It reproduces the robustness features the paper calls out:
call timeouts, bounded retry loops with exponential backoff, graceful error
translation, crash detection and service restart, and per-operation wall-time
accounting (used by the Table II efficiency benchmarks).

*Where* the runtime lives is delegated to a
:class:`~repro.core.service.transport.ServiceTransport`: in-process (the
default), behind a subprocess pipe, or across a socket to a standalone
daemon. The fault-tolerance policy here is identical for all of them. A
``rpc_latency`` can additionally be configured to model the per-call
round-trip cost of a real RPC transport, which is what the batched-step
experiments measure against.
"""

import random
import threading
import time
from concurrent.futures import Executor, Future
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.service.proto import (
    EndSessionRequest,
    ForkSessionRequest,
    GetSpacesReply,
    SessionStepResult,
    StartSessionRequest,
    StepRequest,
    StepSessionsRequest,
)
from repro.core.service.transport import ServiceTransport, resolve_transport
from repro.errors import ServiceError, ServiceIsClosed, ServiceTransportError, SessionNotFound

# Client-side cache of static space metadata, keyed by the transport's
# ``spaces_cache_key`` (the service URL for sockets). The spaces a daemon
# serves never change over its lifetime, so every connection after the first
# skips the ``get_spaces`` round trip — one fewer RPC per pool worker, per
# fork, per dedicated-connection re-home. Transports without a cache key
# (in-process, pipe: each owns a private runtime) always fetch.
_SPACES_CACHE: Dict[str, GetSpacesReply] = {}
_SPACES_CACHE_LOCK = threading.Lock()


def clear_spaces_cache(key: Optional[str] = None) -> None:
    """Drop cached space metadata (all of it, or one service URL's entries).

    Needed when a service URL is *reused* by a daemon serving a different
    environment — ports from one test to the next, say — and when a gateway
    re-homes sessions across its fleet (its clients' cache keys carry a
    ``#e<epoch>`` suffix; clearing the bare URL retires every epoch of it).
    Production daemons never mutate their spaces, so normal code has no
    reason to call this.
    """
    with _SPACES_CACHE_LOCK:
        if key is None:
            _SPACES_CACHE.clear()
        else:
            _SPACES_CACHE.pop(key, None)
            prefix = f"{key}#"
            for stale in [k for k in _SPACES_CACHE if k.startswith(prefix)]:
                _SPACES_CACHE.pop(stale, None)


@dataclass
class ConnectionOpts:
    """Configuration of the service connection retry/timeout behaviour."""

    rpc_call_max_seconds: float = 300.0
    rpc_max_retries: int = 5
    retry_wait_seconds: float = 0.01
    retry_wait_backoff_exponent: float = 1.5
    # Full-jitter backoff: each retry sleeps uniform(0, wait) instead of the
    # deterministic wait. Without this, N pool workers that lose the same
    # daemon retry in lockstep and stampede its replacement; with it their
    # retry schedules decorrelate. Disable only when a test needs exact
    # deterministic sleep lengths.
    retry_wait_jitter: bool = True
    # Simulated per-call transport latency in seconds. Zero by default; the
    # efficiency benchmarks set this to a non-zero value to model the RPC
    # round trip that batched steps amortize.
    rpc_latency: float = 0.0
    init_max_seconds: float = 30.0
    init_max_attempts: int = 5


@dataclass
class CallStats:
    """Wall-time accounting for one RPC method."""

    calls: int = 0
    errors: int = 0
    retries: int = 0
    wall_times: List[float] = field(default_factory=list)

    def record(self, wall_time: float) -> None:
        self.calls += 1
        self.wall_times.append(wall_time)

    def summary(self) -> Dict[str, float]:
        """A compact, picklable summary of this method's accounting."""
        return {
            "calls": self.calls,
            "errors": self.errors,
            "retries": self.retries,
            "wall_time_s": float(sum(self.wall_times)),
        }


def merge_stats_summaries(summaries) -> Dict[str, Dict[str, float]]:
    """Merge per-connection ``stats_summary()`` dicts into one aggregate.

    Used by vectorized pools to combine the accounting of many workers —
    including subprocess workers and daemon-attached workers, whose
    connections live in another address space (or talk to another machine)
    and can only report back picklable summaries.
    """
    merged: Dict[str, Dict[str, float]] = {}
    for summary in summaries:
        if not summary:
            continue
        for method, stats in summary.items():
            into = merged.setdefault(
                method, {"calls": 0, "errors": 0, "retries": 0, "wall_time_s": 0.0}
            )
            for key in into:
                into[key] += stats.get(key, 0)
    return merged


class AsyncResult:
    """A future-like handle on an in-flight (or already completed) service call.

    Execution backends use this to overlap service calls across sessions: a
    call dispatched on an executor returns immediately with an
    :class:`AsyncResult`, and :meth:`result` blocks until the reply (or the
    translated service error) is available. Calls dispatched without an
    executor resolve eagerly, so callers can treat both cases uniformly.
    """

    def __init__(
        self,
        future: Optional[Future] = None,
        value: Any = None,
        error: Optional[BaseException] = None,
    ):
        self._future = future
        self._value = value
        self._error = error

    @classmethod
    def resolved(cls, value: Any) -> "AsyncResult":
        """An AsyncResult that already holds its value."""
        return cls(value=value)

    @classmethod
    def raised(cls, error: BaseException) -> "AsyncResult":
        """An AsyncResult that already holds an error."""
        return cls(error=error)

    def done(self) -> bool:
        return self._future is None or self._future.done()

    def result(self, timeout: Optional[float] = None) -> Any:
        if self._future is not None:
            return self._future.result(timeout=timeout)
        if self._error is not None:
            raise self._error
        return self._value

    def exception(self, timeout: Optional[float] = None) -> Optional[BaseException]:
        if self._future is not None:
            return self._future.exception(timeout=timeout)
        return self._error


class ServiceConnection:
    """A fault-tolerant connection to a compiler service.

    Args:
        transport: How to reach the service: a
            :class:`~repro.core.service.transport.ServiceTransport` instance,
            or (for backwards compatibility) a zero-argument runtime factory,
            which is wrapped in an
            :class:`~repro.core.service.transport.InProcessTransport`.
        opts: Retry/timeout configuration.
    """

    def __init__(
        self,
        transport: Union[ServiceTransport, Callable[[], Any]],
        opts: Optional[ConnectionOpts] = None,
    ):
        self.opts = opts or ConnectionOpts()
        self._transport = resolve_transport(transport)
        self.closed = False
        self.restart_count = 0
        # Reference count of environments sharing this connection (the
        # creating environment plus any forks). The connection shuts down
        # when the last of them releases it.
        self._refcount = 1
        self.stats: Dict[str, CallStats] = {}
        # Guards the stats dictionary and the refcount: execution backends may
        # dispatch calls on this connection from multiple threads at once.
        self._lock = threading.Lock()
        # Serializes crash recovery so concurrent failing calls cannot race
        # to tear down and recreate the transport's channel.
        self._restart_lock = threading.Lock()
        start = time.perf_counter()
        self._transport.connect(max_attempts=self.opts.init_max_attempts)
        self.startup_wall_time = time.perf_counter() - start
        cache_key = getattr(self._transport, "spaces_cache_key", None)
        if cache_key is None:
            self.spaces: GetSpacesReply = self._call("get_spaces")
        else:
            with _SPACES_CACHE_LOCK:
                cached = _SPACES_CACHE.get(cache_key)
            if cached is None:
                cached = self._call("get_spaces")
                with _SPACES_CACHE_LOCK:
                    cached = _SPACES_CACHE.setdefault(cache_key, cached)
            self.spaces = cached

    @property
    def transport(self) -> ServiceTransport:
        return self._transport

    @property
    def runtime(self):
        """The in-process service runtime, if the transport hosts one.

        ``None`` for remote transports — the runtime lives in another process
        (or on another machine) and can only be reached through RPCs.
        """
        return self._transport.runtime

    def restart(self) -> None:
        """Tear down and re-establish the backend channel (crash recovery).

        For in-process and pipe transports, restarting destroys every session
        on the runtime; concurrent calls on sibling sessions will observe
        ``SessionNotFound`` and terminate their episodes through the
        environment's fault-tolerance path. For the socket transport only the
        connection is recreated — the daemon and its sessions live on.
        """
        with self._restart_lock:
            self._transport.restart()
            self.restart_count += 1

    def _call(self, name: str, *args):
        """Invoke a service method with timeout, retry, and error translation."""
        if self.closed:
            raise ServiceIsClosed(f"Cannot call {name}() on a closed service")
        with self._lock:
            stats = self.stats.setdefault(name, CallStats())
        wait = self.opts.retry_wait_seconds
        attempts = max(1, self.opts.rpc_max_retries)
        last_error: Optional[Exception] = None
        for attempt in range(attempts):
            start = time.perf_counter()
            try:
                if self.opts.rpc_latency:
                    time.sleep(self.opts.rpc_latency)
                result = self._transport.call(name, *args)
            except (SessionNotFound, ServiceIsClosed):
                with self._lock:
                    stats.errors += 1
                raise
            except ServiceError:
                with self._lock:
                    stats.errors += 1
                raise
            except LookupError:
                # An unknown benchmark/space is a caller error, not a crash:
                # no amount of restarting will make it resolvable. Raised
                # as-is so the environment can translate it (e.g. into
                # BenchmarkInitError) — identically for local and daemon
                # services.
                with self._lock:
                    stats.errors += 1
                raise
            except Exception as error:  # noqa: BLE001 - backend crash: retry after restart
                with self._lock:
                    stats.errors += 1
                last_error = error
                if attempt + 1 < attempts:
                    with self._lock:
                        stats.retries += 1
                    # Full jitter (sleep uniform(0, wait), not wait itself):
                    # connections that fail together must not retry together.
                    if self.opts.retry_wait_jitter:
                        time.sleep(random.uniform(0.0, wait))
                    else:
                        time.sleep(wait)
                    wait *= self.opts.retry_wait_backoff_exponent
                    self.restart()
                continue
            # The call SUCCEEDED: its effects are applied on the backend, so
            # it must never be retried — re-executing a non-idempotent call
            # like step() would corrupt the session. A call that came back
            # slower than the deadline is recorded as a (slow) success and
            # surfaced as a non-retryable transport error.
            elapsed = time.perf_counter() - start
            with self._lock:
                stats.record(elapsed)
            if elapsed > self.opts.rpc_call_max_seconds:
                with self._lock:
                    stats.errors += 1
                raise ServiceTransportError(
                    f"Service call {name}() completed after {elapsed:.3f}s, "
                    f"exceeding the {self.opts.rpc_call_max_seconds}s deadline; "
                    "the call was applied and will not be retried"
                )
            return result
        raise ServiceError(
            f"Service call {name}() failed after {attempts} attempts: {last_error}"
        ) from last_error

    def _call_async(self, name: str, *args, executor: Optional[Executor] = None) -> AsyncResult:
        """Dispatch a service call, optionally on an executor.

        With an executor the call runs in the background and the returned
        :class:`AsyncResult` resolves when it completes, letting callers
        overlap calls on independent sessions. Without one, the call runs
        eagerly and the result (or error) is captured in the AsyncResult.
        """
        if executor is not None:
            return AsyncResult(future=executor.submit(self._call, name, *args))
        try:
            return AsyncResult.resolved(self._call(name, *args))
        except Exception as error:  # noqa: BLE001 - deferred to .result()
            return AsyncResult.raised(error)

    # -- RPC methods ------------------------------------------------------

    def get_spaces(self) -> GetSpacesReply:
        return self._call("get_spaces")

    def start_session(self, request: StartSessionRequest):
        return self._call("start_session", request)

    def step(self, request: StepRequest):
        return self._call("step", request)

    def step_async(
        self, request: StepRequest, executor: Optional[Executor] = None
    ) -> AsyncResult:
        """Asynchronous :meth:`step`: returns an :class:`AsyncResult`."""
        return self._call_async("step", request, executor=executor)

    @property
    def supports_step_sessions(self) -> bool:
        """Whether the transport can batch many session steps into one RPC."""
        return bool(getattr(self._transport, "supports_step_sessions", False))

    def step_sessions(self, requests: List[StepRequest]) -> List[SessionStepResult]:
        """Step many sessions in one round trip (daemon transports only).

        Returns one :class:`SessionStepResult` per request, in request order.
        Per-session failures are *reported*, not raised — only a failure of
        the batch RPC itself (the transport, the daemon) raises.

        Accounting is attributed per session, not per batch: each successful
        sub-step is recorded under ``"step"`` with its daemon-measured wall
        time and each failed one as a ``"step"`` error, so
        ``connection_stats()``-driven autoscaling keeps seeing per-worker
        load and latency after pools switch to batched stepping. The batch
        round trip itself is accounted under ``"step_sessions"`` as usual.
        """
        requests = list(requests)
        if not requests:
            return []
        reply = self._call("step_sessions", StepSessionsRequest(requests=requests))
        results = list(reply.results)
        with self._lock:
            stats = self.stats.setdefault("step", CallStats())
            for result in results:
                if result.error is None:
                    stats.record(result.wall_time_s)
                else:
                    stats.errors += 1
        return results

    def start_session_async(
        self, request: StartSessionRequest, executor: Optional[Executor] = None
    ) -> AsyncResult:
        """Asynchronous :meth:`start_session`: returns an :class:`AsyncResult`."""
        return self._call_async("start_session", request, executor=executor)

    def fork_session(self, request: ForkSessionRequest):
        return self._call("fork_session", request)

    def end_session(self, request: EndSessionRequest):
        if self.closed:
            return None
        return self._call("end_session", request)

    def handle_session_parameter(self, session_id: int, key: str, value: str):
        return self._call("handle_session_parameter", session_id, key, value)

    def stats_summary(self) -> Dict[str, Dict[str, float]]:
        """A picklable snapshot of the per-method call accounting."""
        with self._lock:
            return {name: stats.summary() for name, stats in self.stats.items()}

    def acquire(self) -> "ServiceConnection":
        """Register another environment sharing this connection (fork())."""
        with self._lock:
            self._refcount += 1
        return self

    def release(self) -> None:
        """Drop one reference; the connection closes when none remain."""
        with self._lock:
            self._refcount -= 1
            should_close = self._refcount <= 0
        if should_close:
            self.close()

    def close(self) -> None:
        if self.closed:
            return
        try:
            self._transport.shutdown()
        finally:
            self.closed = True

    def __enter__(self) -> "ServiceConnection":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
