"""The CompilationSession integration interface.

Adding a new compiler to the framework requires implementing only this
interface: declare the action and observation spaces, then implement
``apply_action`` and ``get_observation``. Everything else — the Gym API,
benchmark management, fault tolerance, caching, forking — is provided by the
shared runtime.
"""

from typing import List, Optional, Tuple

from repro.core.datasets.benchmark import Benchmark
from repro.core.spaces.observation import ObservationSpaceSpec
from repro.core.spaces.space import Space


class CompilationSession:
    """A single incremental compilation in progress.

    Class attributes:
        compiler_version: Human-readable version string of the compiler.
        action_spaces: The action spaces this compiler exposes.
        observation_spaces: The observation spaces this compiler exposes.
    """

    compiler_version: str = ""
    action_spaces: List[Space] = []
    observation_spaces: List[ObservationSpaceSpec] = []

    def __init__(self, working_dir: str, action_space: Space, benchmark: Benchmark):
        self.working_dir = working_dir
        self.action_space = action_space
        self.benchmark = benchmark

    def apply_action(self, action) -> Tuple[bool, Optional[Space], bool]:
        """Apply an action to the current compilation state.

        Returns a tuple ``(end_of_session, new_action_space,
        action_had_no_effect)``.
        """
        raise NotImplementedError

    def get_observation(self, observation_space: ObservationSpaceSpec):
        """Compute an observation of the current compilation state."""
        raise NotImplementedError

    def fork(self) -> "CompilationSession":
        """Create an independent deep copy of this session.

        The default implementation raises; backends that support efficient
        forking (all three in this package do) override it.
        """
        raise NotImplementedError(f"{type(self).__name__} does not support fork()")

    def handle_session_parameter(self, key: str, value: str) -> Optional[str]:
        """Handle an arbitrary session parameter (backend-specific knobs)."""
        del key, value
        return None

    def close(self) -> None:
        """Release any resources held by the session."""
