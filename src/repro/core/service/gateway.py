"""Session-routing gateway: one URL fronting a fleet of compiler daemons.

The paper's service architecture is sized for "millions of users", and one
daemon is a single point of saturation and failure. A
:class:`ServiceGateway` refactors the deployment from *a client dials one
daemon* into *a client resolves sessions through a routing layer*: it
serves the exact same wire protocol as a daemon (clients, vectorized pools,
RL actors, and the Explorer REST API attach to a gateway URL with zero code
changes), places each new session on the least-loaded live daemon, proxies
session-scoped RPCs to the owning daemon over the multiplexed transport,
and fails sessions over when a daemon dies.

**Session routing.** The gateway speaks *gateway-scoped* session ids to its
clients and translates to ``(daemon, remote session id)`` pairs
internally, so clients never observe which daemon hosts them — or that the
hosting daemon changed. Batched ``step_sessions`` RPCs are split by owning
daemon, fanned out concurrently, and reassembled in request order.

**Failover.** Every routed session records its construction recipe and the
acknowledged action sequence as a :class:`~repro.core.compiler_env_state.
CompilerEnvState`-backed record. When a daemon dies (detected by a failed
RPC plus a failed liveness probe), each of its sessions is re-created on a
surviving daemon by replaying the recorded actions, and the failed call is
retried once against the new home. Only *acknowledged* actions are
replayed, so a step lost in flight with the dying daemon is applied at most
once on the successor. The gateway's ``spaces_epoch`` is bumped on every
failover so reconnecting clients retire cached space metadata.

**Multi-tenancy.** Client auth tokens (checked by the inherited hello
handshake) own their sessions at the gateway: one tenant's session-scoped
calls can never touch another tenant's sessions, whichever daemon they
landed on. Toward the fleet the gateway speaks a single ``fleet_token``,
letting daemons be locked down to gateway-only access.

**Fleet scaling.** Daemons are either *attached* (URLs handed in) or
*spawned* (local worker processes started from an ``env_id``). The
:class:`~repro.core.vector.autoscale.FleetAutoscalePolicy` turns aggregated
per-daemon call accounting into drain/spawn decisions applied by
:meth:`ServiceGateway.scale_to`.
"""

import itertools
import logging
import multiprocessing
import os
import signal
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.compiler_env_state import CompilerEnvState
from repro.core.service.connection import ConnectionOpts, ServiceConnection
from repro.core.service.health import OPEN, CircuitBreaker, HealthMonitor
from repro.core.service.proto import (
    EndSessionReply,
    EndSessionRequest,
    ForkSessionReply,
    ForkSessionRequest,
    SessionStepResult,
    StartSessionReply,
    StartSessionRequest,
    StepRequest,
    StepSessionsReply,
    StepSessionsRequest,
)
from repro.core.service.rpc_server import ClientConnectionState, SocketRPCServer
from repro.core.service.transport import SocketTransport
from repro.core.service.wire import (
    LEGACY_WIRE_VERSION,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
)
from repro.errors import (
    PermissionDeniedError,
    ServiceError,
    ServiceIsDown,
    SessionNotFound,
)

logger = logging.getLogger(__name__)

# RPC methods the gateway accepts from clients — the same vocabulary a
# daemon serves, so every existing client works unchanged against a gateway.
_GATEWAY_METHODS = frozenset(
    {"get_spaces", "start_session", "step", "fork_session", "end_session",
     "handle_session_parameter", "step_sessions", "server_info"}
)


def _spawned_daemon_main(pipe, env_id, host, auth_tokens, make_kwargs):
    """Entry point of a gateway-spawned daemon worker process."""
    from repro.core.service.runtime.server import make_env_server

    try:
        server = make_env_server(
            env_id, host=host, port=0, auth_tokens=auth_tokens, **make_kwargs
        )
    except BaseException as error:  # noqa: BLE001 - reported to the gateway
        try:
            pipe.send(("error", f"{type(error).__name__}: {error}"))
        finally:
            pipe.close()
        return
    pipe.send(("ok", server.url))
    pipe.close()

    def _on_term(signum, frame):
        server.request_shutdown()

    signal.signal(signal.SIGTERM, _on_term)
    signal.signal(signal.SIGINT, _on_term)
    server.serve_forever()
    server.shutdown()


@dataclass
class DaemonHandle:
    """One fleet member: its URL, client connection, and (if spawned) process."""

    index: int
    url: str
    connection: ServiceConnection
    process: Optional[multiprocessing.process.BaseProcess] = None
    draining: bool = False
    dead: bool = False
    # Health substrate: the per-daemon circuit breaker sheds load from a
    # flapping member (closed → open on consecutive failures → half-open
    # probe), and last_heartbeat timestamps the most recent successful probe.
    breaker: CircuitBreaker = field(default_factory=CircuitBreaker)
    last_heartbeat: Optional[float] = None

    @property
    def pid(self) -> Optional[int]:
        return self.process.pid if self.process is not None else None

    def last_heartbeat_age_s(self) -> Optional[float]:
        if self.last_heartbeat is None:
            return None
        return time.monotonic() - self.last_heartbeat


@dataclass
class _RoutedSession:
    """Gateway-side record of one client session: where it lives and how to
    rebuild it. ``state`` carries the replay recipe (benchmark + acknowledged
    actions) in :class:`CompilerEnvState` form; only acknowledged actions are
    replayed on failover, preserving at-most-once step application."""

    gateway_sid: int
    daemon: DaemonHandle
    remote_sid: int
    owner: Optional[str]
    benchmark_uri: str
    action_space: int = 0
    actions: List[Any] = field(default_factory=list)
    replayed: int = 0  # Times this session was re-homed by failover.

    def env_state(self) -> CompilerEnvState:
        """The session's episode so far, as a portable CompilerEnvState."""
        return CompilerEnvState(
            benchmark=self.benchmark_uri,
            commandline=" ".join(str(action) for action in self.actions),
        )


class ServiceGateway(SocketRPCServer):
    """Routes compiler service sessions across a fleet of daemons.

    Args:
        daemon_urls: URLs of already-running daemons to attach to.
        env_id: Environment id for locally spawned daemons.
        daemons: Number of local daemon processes to spawn at startup
            (requires ``env_id``).
        make_kwargs: Extra ``repro.make`` kwargs for spawned daemons.
        host / port / unix_path: Where the gateway itself listens.
        auth_tokens: Client auth tokens accepted by the gateway (``None``
            serves everyone; tenants are then distinguished by whatever
            token each client presented, including none).
        fleet_token: Auth token the gateway presents to its daemons, and
            which spawned daemons are configured to require.
        daemon_timeout: Per-RPC transport timeout toward the daemons.
        heartbeat_interval: Seconds between proactive liveness probes of
            each daemon. ``None`` (the default for embedded gateways)
            disables the background :class:`HealthMonitor`; the serve CLIs
            turn it on. With the monitor running, a SIGKILLed daemon is
            detected and its sessions re-homed within ~2 intervals even
            when no client RPC is in flight.
        breaker_threshold / breaker_reset_timeout: Circuit-breaker tuning —
            consecutive failures that trip a daemon's breaker open, and
            seconds before an open breaker admits a half-open probe.
    """

    server_kind = "gateway"
    # Proxy latency is pure overhead: serve idle-connection requests on the
    # reader thread, skipping the dispatch-pool handoff (see base class).
    serve_inline_when_idle = True

    def __init__(
        self,
        daemon_urls: Optional[List[str]] = None,
        env_id: Optional[str] = None,
        daemons: int = 0,
        make_kwargs: Optional[Dict[str, Any]] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        auth_tokens=None,
        fleet_token: Optional[str] = None,
        daemon_timeout: float = 300.0,
        heartbeat_interval: Optional[float] = None,
        breaker_threshold: int = 3,
        breaker_reset_timeout: float = 5.0,
    ):
        if not daemon_urls and not daemons:
            raise ValueError(
                "ServiceGateway needs a fleet: pass daemon_urls and/or daemons > 0"
            )
        if daemons and not env_id:
            raise ValueError("Spawning local daemons requires env_id")
        self.env_id = env_id
        self.fleet_token = fleet_token
        self.daemon_timeout = daemon_timeout
        self._make_kwargs = dict(make_kwargs or {})
        self._fleet_lock = threading.RLock()
        self._daemons: List[DaemonHandle] = []
        self._daemon_indexes = itertools.count()
        self._sessions: Dict[int, _RoutedSession] = {}
        self._session_ids = itertools.count()
        self._epoch = 0
        self.failovers = 0
        self.rehomed_sessions = 0  # Sessions successfully replayed onto survivors.
        self.heartbeat_interval = heartbeat_interval
        self._breaker_threshold = breaker_threshold
        self._breaker_reset_timeout = breaker_reset_timeout
        self.health_monitor: Optional[HealthMonitor] = None
        # step_sessions fan-out runs per-daemon batches on this pool (the
        # inherited dispatch pool carries the batch RPC itself, and tasks
        # must never wait on their own executor).
        self._fanout_executor = ThreadPoolExecutor(
            max_workers=16, thread_name_prefix="repro-gateway-fanout"
        )
        self._mp = multiprocessing.get_context(
            "fork" if "fork" in multiprocessing.get_all_start_methods() else "spawn"
        )

        for url in daemon_urls or []:
            self._attach_daemon(url)
        for _ in range(daemons):
            self.spawn_daemon()

        super().__init__(host=host, port=port, unix_path=unix_path, auth_tokens=auth_tokens)

        if heartbeat_interval is not None:
            self.health_monitor = HealthMonitor(self, interval=heartbeat_interval)
            self.health_monitor.start()

    # -- fleet membership --------------------------------------------------

    def _connect_daemon(self, url: str) -> ServiceConnection:
        # Fleet links are authenticated and co-released with the gateway, so
        # pin them to the compact legacy codec: the typed codec's schema-skew
        # tolerance buys nothing here and its cost would be paid per proxied
        # hop. Client-facing connections still negotiate the typed codec.
        transport = SocketTransport(
            url,
            timeout=self.daemon_timeout,
            auth_token=self.fleet_token,
            wire_version=LEGACY_WIRE_VERSION,
            # Read daemon replies on the dispatch thread itself
            # (leader/follower) rather than bouncing through a per-connection
            # reader thread: two fewer thread wakeups per proxied hop.
            inline_reads=True,
        )
        # Fast failure detection: the gateway owns failover, so its daemon
        # calls should fail fast rather than retry at length.
        return ServiceConnection(
            transport,
            ConnectionOpts(
                rpc_call_max_seconds=self.daemon_timeout,
                rpc_max_retries=2,
                retry_wait_seconds=0.05,
                init_max_attempts=5,
            ),
        )

    def _attach_daemon(self, url: str) -> DaemonHandle:
        handle = DaemonHandle(
            index=next(self._daemon_indexes),
            url=url,
            connection=self._connect_daemon(url),
            breaker=CircuitBreaker(
                failure_threshold=self._breaker_threshold,
                reset_timeout=self._breaker_reset_timeout,
            ),
        )
        with self._fleet_lock:
            self._daemons.append(handle)
        logger.info("Gateway attached daemon %d at %s", handle.index, url)
        return handle

    def spawn_daemon(self) -> DaemonHandle:
        """Start one local daemon worker process and attach to it."""
        if not self.env_id:
            raise ServiceError("This gateway has no env_id: cannot spawn daemons")
        parent_pipe, child_pipe = self._mp.Pipe()
        fleet_tokens = [self.fleet_token] if self.fleet_token is not None else None
        process = self._mp.Process(
            target=_spawned_daemon_main,
            args=(child_pipe, self.env_id, "127.0.0.1", fleet_tokens, self._make_kwargs),
            name="repro-gateway-daemon",
        )
        process.start()
        child_pipe.close()
        try:
            if not parent_pipe.poll(120):
                raise ServiceError("Spawned daemon did not report a URL within 120s")
            status, payload = parent_pipe.recv()
        except (EOFError, OSError) as error:
            process.join(timeout=5)
            raise ServiceError(f"Spawned daemon died during startup: {error}") from error
        finally:
            parent_pipe.close()
        if status != "ok":
            process.join(timeout=5)
            raise ServiceError(f"Spawned daemon failed to start: {payload}")
        handle = self._attach_daemon(payload)
        handle.process = process
        logger.info("Gateway spawned daemon pid=%d at %s", process.pid, payload)
        return handle

    def live_daemons(self) -> List[DaemonHandle]:
        """Fleet members that are alive (draining ones included)."""
        with self._fleet_lock:
            return [d for d in self._daemons if not d.dead]

    def _placement_candidates(self) -> List[DaemonHandle]:
        with self._fleet_lock:
            candidates = [d for d in self._daemons if not d.dead and not d.draining]
        # Circuit-broken daemons shed load: new sessions avoid them while
        # their breaker is open. If that would leave nowhere to place,
        # fall back to the full set — degraded placement beats refusing.
        healthy = [d for d in candidates if d.breaker.state != OPEN]
        return healthy or candidates

    def _place_session(self) -> DaemonHandle:
        """Pick the least-loaded live daemon for a new session."""
        candidates = self._placement_candidates()
        if not candidates:
            raise ServiceError("Gateway has no live daemons to place the session on")
        with self._fleet_lock:
            load = {id(d): 0 for d in candidates}
            for record in self._sessions.values():
                if id(record.daemon) in load:
                    load[id(record.daemon)] += 1
        return min(candidates, key=lambda d: (load[id(d)], d.index))

    # -- failure handling --------------------------------------------------

    def _daemon_alive(self, daemon: DaemonHandle) -> bool:
        """Liveness probe: can the daemon still answer a heartbeat?"""
        try:
            daemon.connection.transport.heartbeat()
        except Exception:  # noqa: BLE001 - any failure means "not provably alive"
            daemon.breaker.record_failure()
            return False
        daemon.last_heartbeat = time.monotonic()
        daemon.breaker.record_success()
        return True

    def _handle_daemon_failure(self, daemon: DaemonHandle, error: BaseException) -> None:
        """Retire a dead daemon and re-home its sessions onto survivors.

        Each session is re-created by replaying its recorded (acknowledged)
        action sequence. Sessions that cannot be replayed — no surviving
        daemon, or the replay itself failed — are dropped, surfacing as
        :class:`SessionNotFound` to their clients (the same contract as a
        daemon-side session crash).
        """
        with self._fleet_lock:
            if daemon.dead:
                return
            daemon.dead = True
            daemon.breaker.force_open()
            self._epoch += 1
            self.failovers += 1
            stranded = [r for r in self._sessions.values() if r.daemon is daemon]
        logger.warning(
            "Gateway daemon %d at %s died (%s); re-homing %d session(s)",
            daemon.index, daemon.url, error, len(stranded),
        )
        try:
            daemon.connection.close()
        except Exception:  # noqa: BLE001 - it is already dead
            pass
        if daemon.process is not None:
            daemon.process.join(timeout=5)
        for record in stranded:
            try:
                self._replay_session(record)
            except Exception as replay_error:  # noqa: BLE001 - drop, don't wedge
                logger.warning(
                    "Gateway could not replay session %d (%s after %d actions): %s",
                    record.gateway_sid, record.benchmark_uri, len(record.actions),
                    replay_error,
                )
                with self._fleet_lock:
                    self._sessions.pop(record.gateway_sid, None)

    def _replay_session(self, record: _RoutedSession) -> None:
        """Re-create one routed session on a live daemon by replaying its
        :class:`CompilerEnvState` (benchmark + acknowledged actions)."""
        state = record.env_state()
        target = self._place_session()
        reply = target.connection.start_session(
            StartSessionRequest(
                benchmark_uri=state.benchmark,
                action_space=record.action_space,
            )
        )
        if record.actions:
            target.connection.step(
                StepRequest(session_id=reply.session_id, actions=list(record.actions))
            )
        with self._fleet_lock:
            record.daemon = target
            record.remote_sid = reply.session_id
            record.replayed += 1
            self.rehomed_sessions += 1
        logger.info(
            "Replayed session %d (%d actions) onto daemon %d at %s",
            record.gateway_sid, len(record.actions), target.index, target.url,
        )

    def _routed(self, state: ClientConnectionState, gateway_sid: int) -> _RoutedSession:
        with self._fleet_lock:
            record = self._sessions.get(gateway_sid)
        if record is None:
            raise SessionNotFound(f"Session not found: {gateway_sid}")
        if record.owner != state.token:
            raise PermissionDeniedError(
                f"Session {gateway_sid} belongs to another tenant"
            )
        return record

    def _call_routed(self, record: _RoutedSession, call):
        """Invoke ``call(daemon, remote_sid)``, failing over once if the
        owning daemon died mid-call."""
        for attempt in (0, 1):
            daemon, remote_sid = record.daemon, record.remote_sid
            try:
                return call(daemon, remote_sid)
            except (SessionNotFound, PermissionDeniedError):
                raise
            except (ServiceError, ConnectionError, OSError) as error:
                if attempt or self._daemon_alive(daemon):
                    # Either we already failed over once, or the daemon is
                    # healthy and the error is the call's own (a compiler
                    # crash, say) — failover cannot help, report it.
                    raise
                self._handle_daemon_failure(daemon, error)
                with self._fleet_lock:
                    if record.gateway_sid not in self._sessions:
                        raise SessionNotFound(
                            f"Session {record.gateway_sid} was lost with its daemon"
                        ) from error

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, state: ClientConnectionState, method: str, args):
        if method not in _GATEWAY_METHODS:
            raise ServiceError(f"Unknown service method: {method!r}")
        handler = getattr(self, f"_rpc_{method}")
        return handler(state, *args)

    def _rpc_get_spaces(self, state: ClientConnectionState):
        candidates = self.live_daemons()
        if not candidates:
            raise ServiceError("Gateway has no live daemons")
        return candidates[0].connection.spaces

    def _rpc_start_session(self, state: ClientConnectionState, request: StartSessionRequest):
        daemon = self._place_session()
        reply = daemon.connection.start_session(request)
        with self._fleet_lock:
            gateway_sid = next(self._session_ids)
            self._sessions[gateway_sid] = _RoutedSession(
                gateway_sid=gateway_sid,
                daemon=daemon,
                remote_sid=reply.session_id,
                owner=state.token,
                benchmark_uri=request.benchmark_uri,
                action_space=request.action_space,
            )
        return StartSessionReply(
            session_id=gateway_sid,
            observations=reply.observations,
            new_action_space=reply.new_action_space,
        )

    def _rpc_step(self, state: ClientConnectionState, request: StepRequest):
        record = self._routed(state, request.session_id)

        def do_step(daemon, remote_sid):
            return daemon.connection.step(
                StepRequest(
                    session_id=remote_sid,
                    actions=request.actions,
                    observation_space_names=request.observation_space_names,
                )
            )

        reply = self._call_routed(record, do_step)
        # Acknowledged: these actions are now part of the session's replay
        # recipe. (A step lost with a dying daemon was NOT recorded, so the
        # failover replay + this retry apply it exactly once.)
        record.actions.extend(request.actions)
        return reply

    def _rpc_fork_session(self, state: ClientConnectionState, request: ForkSessionRequest):
        record = self._routed(state, request.session_id)

        def do_fork(daemon, remote_sid):
            return daemon.connection.fork_session(
                ForkSessionRequest(session_id=remote_sid)
            )

        reply = self._call_routed(record, do_fork)
        with self._fleet_lock:
            gateway_sid = next(self._session_ids)
            self._sessions[gateway_sid] = _RoutedSession(
                gateway_sid=gateway_sid,
                daemon=record.daemon,
                remote_sid=reply.session_id,
                owner=state.token,
                benchmark_uri=record.benchmark_uri,
                action_space=record.action_space,
                actions=list(record.actions),
            )
        return ForkSessionReply(session_id=gateway_sid)

    def _rpc_end_session(self, state: ClientConnectionState, request: EndSessionRequest):
        record = self._routed(state, request.session_id)
        with self._fleet_lock:
            self._sessions.pop(record.gateway_sid, None)
            remaining = len(self._sessions)
        try:
            record.daemon.connection.end_session(
                EndSessionRequest(session_id=record.remote_sid)
            )
        except (ServiceError, ConnectionError, OSError, SessionNotFound):
            pass  # The daemon (or the session) is already gone either way.
        self._retire_empty_drains()
        return EndSessionReply(remaining_sessions=remaining)

    def _rpc_handle_session_parameter(
        self, state: ClientConnectionState, session_id: int, key: str, value: str
    ):
        record = self._routed(state, session_id)

        def do_param(daemon, remote_sid):
            return daemon.connection.handle_session_parameter(remote_sid, key, value)

        return self._call_routed(record, do_param)

    def _rpc_step_sessions(self, state: ClientConnectionState, request: StepSessionsRequest):
        """Split a batch by owning daemon, fan out, reassemble in order.

        When a daemon dies mid-batch, its group's sessions are failed over —
        which may scatter them across *several* survivors — so the retry
        re-buckets the group's positions by each session's new home rather
        than replaying the whole group against one daemon.
        """
        if not isinstance(request, StepSessionsRequest):
            raise ServiceError(
                f"step_sessions expects a StepSessionsRequest, got "
                f"{type(request).__name__}"
            )
        results: List[Optional[SessionStepResult]] = [None] * len(request.requests)
        records: Dict[int, _RoutedSession] = {}
        # Route and bucket the whole batch under one fleet-lock pass: this
        # runs once per vec-pool step, so per-sub lock churn is measurable.
        by_daemon: Dict[int, tuple] = {}
        with self._fleet_lock:
            for position, sub in enumerate(request.requests):
                sid = sub.session_id
                record = self._sessions.get(sid)
                if record is None:
                    results[position] = SessionStepResult(
                        session_id=sid,
                        error=SessionNotFound(f"Session not found: {sid}"),
                    )
                    continue
                if record.owner != state.token:
                    results[position] = SessionStepResult(
                        session_id=sid,
                        error=PermissionDeniedError(
                            f"Session {sid} belongs to another tenant"
                        ),
                    )
                    continue
                records[sid] = record
                by_daemon.setdefault(record.daemon.index, (record.daemon, []))[
                    1
                ].append(position)
        groups = list(by_daemon.values())

        def bucket_by_home(positions: List[int]) -> List[tuple]:
            """Group positions by their session's current owning daemon."""
            by_daemon: Dict[int, tuple] = {}
            with self._fleet_lock:
                for position in positions:
                    sid = request.requests[position].session_id
                    if sid not in self._sessions:
                        results[position] = SessionStepResult(
                            session_id=sid,
                            error=SessionNotFound(
                                f"Session {sid} was lost with its daemon"
                            ),
                        )
                        continue
                    daemon = records[sid].daemon
                    by_daemon.setdefault(daemon.index, (daemon, []))[1].append(position)
            return list(by_daemon.values())

        def step_group(daemon: DaemonHandle, positions: List[int], depth: int = 0):
            started = time.monotonic()
            subs = [request.requests[p] for p in positions]
            # Graceful degradation: a dead or circuit-broken daemon's
            # sessions get per-session ServiceIsDown results immediately —
            # the survivors' groups keep stepping, the batch never fails
            # whole, and no timeout is paid per broken session.
            if daemon.dead or not daemon.breaker.allow():
                down = ServiceIsDown(
                    f"Gateway daemon {daemon.index} at {daemon.url} is "
                    f"{'dead' if daemon.dead else 'circuit-broken'}; its "
                    f"sessions are unavailable until the fleet recovers"
                )
                for position, sub in zip(positions, subs):
                    results[position] = SessionStepResult(
                        session_id=sub.session_id, error=down, wall_time_s=0.0
                    )
                return
            translated = [
                StepRequest(
                    session_id=records[sub.session_id].remote_sid,
                    actions=sub.actions,
                    observation_space_names=sub.observation_space_names,
                )
                for sub in subs
            ]
            try:
                batch = daemon.connection.step_sessions(translated)
            except (ServiceError, ConnectionError, OSError) as error:
                if depth == 0 and not self._daemon_alive(daemon):
                    self._handle_daemon_failure(daemon, error)
                    # The group's sessions were re-homed (possibly onto
                    # different survivors): re-bucket and retry each
                    # sub-group once against its new home.
                    for new_daemon, new_positions in bucket_by_home(positions):
                        step_group(new_daemon, new_positions, depth=1)
                    return
                daemon.breaker.record_failure()
                # A bare connection-level failure means the daemon (not the
                # compile work) is the problem: degrade those sessions to
                # ServiceIsDown so the client sees "fleet member down", not
                # an opaque socket error that might fail the whole batch.
                if not isinstance(error, ServiceError):
                    error = ServiceIsDown(
                        f"Gateway daemon {daemon.index} at {daemon.url} is "
                        f"unreachable: {error}"
                    )
                wall = time.monotonic() - started
                for position, sub in zip(positions, subs):
                    results[position] = SessionStepResult(
                        session_id=sub.session_id, error=error, wall_time_s=wall
                    )
                return
            daemon.breaker.record_success()
            for position, sub, result in zip(positions, subs, batch):
                if result.error is None:
                    records[sub.session_id].actions.extend(sub.actions)
                # The daemon's result object is ours alone (freshly decoded):
                # translate its session id back in place instead of copying.
                result.session_id = sub.session_id
                results[position] = result

        # The last group runs inline on this dispatch thread: a batch that
        # maps to a single daemon (the common case — a pool's forked
        # sessions co-locate) then pays no executor handoff at all.
        futures = [
            self._fanout_executor.submit(step_group, daemon, positions)
            for daemon, positions in groups[:-1]
        ]
        if groups:
            step_group(*groups[-1])
        for future in futures:
            future.result()
        return StepSessionsReply(results=results)

    def _rpc_server_info(self, state: ClientConnectionState):
        return self.server_info()

    # -- introspection -----------------------------------------------------

    def spaces_epoch(self) -> int:
        with self._fleet_lock:
            return self._epoch

    def session_states(self) -> Dict[int, CompilerEnvState]:
        """Every routed session's episode so far, as CompilerEnvStates."""
        with self._fleet_lock:
            return {sid: r.env_state() for sid, r in self._sessions.items()}

    def daemon_stats(self) -> Dict[str, Dict[str, Dict[str, float]]]:
        """Per-daemon call accounting (fuel for fleet autoscaling)."""
        return {
            daemon.url: daemon.connection.stats_summary()
            for daemon in self.live_daemons()
        }

    def result_cache_stats(self) -> dict:
        """Fleet-wide result-cache accounting, aggregated across daemons.

        Each daemon owns its own (benchmark, action-prefix) result cache;
        this sums their counters (a dead or unreachable daemon is skipped)
        and recomputes the fleet hit rate from the summed totals.
        """
        totals = {
            "hits": 0, "misses": 0, "stores": 0, "evictions": 0,
            "size": 0, "size_in_bytes": 0,
        }
        per_daemon: Dict[str, dict] = {}
        caching_daemons = 0
        for daemon in self.live_daemons():
            try:
                info = daemon.connection.transport.server_info()
            except Exception:  # noqa: BLE001 - a dying daemon is not an error here
                continue
            stats = (info or {}).get("cache_stats", {}).get("result_cache")
            if not stats:
                continue
            caching_daemons += 1
            per_daemon[daemon.url] = stats
            for key in totals:
                totals[key] += stats.get(key, 0)
        queries = totals["hits"] + totals["misses"]
        totals["hit_rate"] = totals["hits"] / queries if queries else 0.0
        totals["daemons"] = caching_daemons
        return {"total": totals, "per_daemon": per_daemon}

    def server_info(self) -> dict:
        with self._fleet_lock:
            sessions = len(self._sessions)
            epoch = self._epoch
            failovers = self.failovers
            rehomed = self.rehomed_sessions
            fleet = [
                {
                    "index": d.index,
                    "url": d.url,
                    "pid": d.pid,
                    "draining": d.draining,
                    "sessions": sum(
                        1 for r in self._sessions.values() if r.daemon is d
                    ),
                    "breaker": d.breaker.state,
                    "breaker_trips": d.breaker.trips,
                    "last_heartbeat_age_s": d.last_heartbeat_age_s(),
                }
                for d in self._daemons
                if not d.dead
            ]
        monitor = self.health_monitor
        return {
            "pid": os.getpid(),
            "env_id": self.env_id,
            "url": self.url,
            "role": "gateway",
            "protocol_version": WIRE_VERSION,
            "wire_versions": sorted(SUPPORTED_WIRE_VERSIONS),
            "uptime_s": time.monotonic() - self.started_at,
            "active_sessions": sessions,
            "connections_served": self.connections_served,
            "heartbeats_served": self.heartbeats_served,
            "spaces_epoch": epoch,
            "failovers": failovers,
            "rehomed_sessions": rehomed,
            "health_monitor": None if monitor is None else {
                "interval_s": monitor.interval,
                "probes": monitor.probes,
                "deaths_detected": monitor.deaths_detected,
            },
            "daemons": fleet,
            # Fleet-wide result-cache counters (summed across live daemons).
            "cache_stats": {"result_cache": self.result_cache_stats()["total"]},
        }

    # -- fleet scaling -----------------------------------------------------

    def scale_to(self, target: int) -> int:
        """Spawn or drain daemons toward ``target`` live members.

        Growing requires an ``env_id`` (only spawned daemons can be added).
        Shrinking marks the least-loaded daemons as *draining*: they take no
        new sessions and are retired as soon as their last session ends.
        Returns the number of live (non-draining) daemons after the change.
        """
        target = max(1, target)
        with self._fleet_lock:
            active = [d for d in self._daemons if not d.dead and not d.draining]
            draining = [d for d in self._daemons if not d.dead and d.draining]
        if target > len(active):
            # Un-drain first — cheaper than spawning a fresh process.
            for daemon in draining[: target - len(active)]:
                daemon.draining = False
                active.append(daemon)
            while len(active) < target and self.env_id:
                active.append(self.spawn_daemon())
        elif target < len(active):
            with self._fleet_lock:
                load = {
                    id(d): sum(1 for r in self._sessions.values() if r.daemon is d)
                    for d in active
                }
            # Drain the emptiest members first.
            for daemon in sorted(active, key=lambda d: (load[id(d)], -d.index))[
                : len(active) - target
            ]:
                daemon.draining = True
                logger.info("Gateway draining daemon %d at %s", daemon.index, daemon.url)
            self._retire_empty_drains()
        with self._fleet_lock:
            return sum(1 for d in self._daemons if not d.dead and not d.draining)

    def _retire_empty_drains(self) -> None:
        """Terminate draining daemons whose last session has ended."""
        with self._fleet_lock:
            empty = [
                d
                for d in self._daemons
                if d.draining
                and not d.dead
                and not any(r.daemon is d for r in self._sessions.values())
            ]
            for daemon in empty:
                daemon.dead = True
        for daemon in empty:
            logger.info("Gateway retiring drained daemon %d at %s", daemon.index, daemon.url)
            self._stop_daemon(daemon)

    def autoscale_tick(self, policy) -> Optional[int]:
        """One fleet-autoscaling decision: feed per-daemon stats to ``policy``
        (a :class:`~repro.core.vector.autoscale.FleetAutoscalePolicy`) and
        apply the returned target with :meth:`scale_to`."""
        self._retire_empty_drains()
        with self._fleet_lock:
            current = sum(1 for d in self._daemons if not d.dead and not d.draining)
        target = policy(self.daemon_stats(), current)
        if target is None:
            return None
        return self.scale_to(target)

    # -- lifecycle ---------------------------------------------------------

    def _stop_daemon(self, daemon: DaemonHandle) -> None:
        try:
            daemon.connection.close()
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        if daemon.process is not None and daemon.process.is_alive():
            daemon.process.terminate()  # SIGTERM -> daemon shuts down cleanly.
            daemon.process.join(timeout=15)
            if daemon.process.is_alive():
                daemon.process.kill()
                daemon.process.join(timeout=5)

    def shutdown(self) -> None:
        """Stop serving and reap every spawned daemon. Idempotent."""
        if not self._begin_shutdown():
            return
        if self.health_monitor is not None:
            self.health_monitor.stop()
        self._fanout_executor.shutdown(wait=True)
        self._finish_shutdown()
        with self._fleet_lock:
            fleet = list(self._daemons)
            self._daemons = []
            self._sessions.clear()
        for daemon in fleet:
            if not daemon.dead:
                self._stop_daemon(daemon)
        try:
            from repro.core.service.connection import clear_spaces_cache

            clear_spaces_cache(self.url)
        except Exception:  # noqa: BLE001 - teardown must not raise
            pass
        logger.info("Compiler service gateway on %s shut down", self.url)
