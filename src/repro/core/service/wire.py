"""The versioned binary wire format of the compiler service protocol.

Every byte that crosses a process boundary in this project — socket RPCs to
a daemon or gateway, the subprocess pipe transport, the process-pool worker
protocol — is framed and encoded by this module. It is the single source of
truth for the wire conventions that used to be scattered across
:mod:`repro.core.service.transport` and :mod:`repro.core.vector.process`:

* the ``(status, payload)`` reply convention (:data:`REPLY_OK` /
  :data:`REPLY_ERROR`) and its degrade-on-unpicklable fallback
  (:func:`send_reply`, :func:`write_frame_reply`);
* the socket frame layout — one version byte, a big-endian uint64 length
  prefix, then the encoded payload (:func:`frame_bytes`, :func:`read_frame`);
* service URL parsing (:func:`parse_service_url`).

**Versioning.** Frames are self-describing: the leading byte names the
*wire version* the payload is encoded with, and each version maps to a
:class:`Codec` in :data:`CODECS`. The current version is
:data:`WIRE_VERSION`; a peer also accepts the previous version, so a client
and a daemon fleet may be upgraded independently as long as they are within
one version of each other. A frame announcing a version with no registered
codec (two or more versions of skew, or garbage) is rejected on its first
byte with a :class:`ConnectionError`, never decoded.

The version each side *sends* is negotiated on connect: clients open every
connection with a ``hello`` RPC encoded at the oldest supported version,
the server answers with the highest version both sides speak, and both
sides use that negotiated version from then on. A server replies to every
request at the version of the request's own frame, so an un-negotiated
(legacy) peer is answered in the dialect it spoke.

**Codecs.**

* Version 1 (:class:`PickleCodec`) — the legacy format: the payload is one
  bare pickle. Kept so one-version-older peers interoperate.
* Version 2 (:class:`TypedPickleCodec`) — the typed format: the message
  graph is first lowered to a tagged primitive structure in which every
  registered protocol message (see :func:`wire_message`) travels as
  ``(tag, field-dict)`` *by registry name*, not by pickle's module path.
  Decoding looks the tag up in the registry and rebuilds the dataclass from
  its fields, ignoring unknown field names — so messages can gain fields,
  move between modules, or be reordered without breaking the wire. Values
  outside the registry (numpy arrays, spaces, exceptions) travel as
  explicitly-tagged opaque pickles.

The typed codec narrows what a frame can instantiate to the registered
message vocabulary plus tagged opaque payloads; together with the
connection auth tokens enforced by the server it replaces the old
"bare pickle from anyone who can connect" trust model. Opaque payloads are
still pickle, so peers must hold a valid token to be worth trusting —
tokens gate *who* may speak, the typed layer pins *what* they may say.
"""

import dataclasses
import pickle
import struct
from typing import Any, Callable, Dict, Optional, Tuple, Type

from repro.errors import ServiceError

# Wire statuses shared by every request/reply protocol in the project
# (socket transport, pipe transport, process-pool workers).
REPLY_OK = "ok"
REPLY_ERROR = "error"

# The wire version this build encodes by default. Bump when the encoding
# changes incompatibly; keep the previous version's codec registered so
# one-version-older peers continue to interoperate.
WIRE_VERSION = 2

# The oldest version still spoken: the bare-pickle format of the original
# socket protocol. ``hello`` handshakes are sent at this version so that any
# compatible peer can decode them before negotiation has happened.
LEGACY_WIRE_VERSION = 1

# Historical alias (the original single-version protocol constant).
PROTOCOL_VERSION = WIRE_VERSION

# Frame header after the version byte: payload length, big-endian uint64.
_FRAME_HEADER = struct.Struct(">Q")

# Upper bound on a single message; a frame header announcing more than this
# is treated as protocol corruption rather than honored with an allocation.
MAX_FRAME_BYTES = 1 << 31


# -- typed message registry ---------------------------------------------------

# Registry name -> dataclass, for every message allowed to travel typed.
_MESSAGE_REGISTRY: Dict[str, Type] = {}
_MESSAGE_TAGS: Dict[Type, str] = {}
# Per-class field names, precomputed at registration: dataclasses.fields()
# is too slow to call once per message on the encode/decode hot path.
_MESSAGE_FIELDS: Dict[Type, Tuple[str, ...]] = {}
# Per-class (name, default-singleton) pairs for the encoder. Fields whose
# value *is* its declared default are omitted from the wire — the decoder
# already reconstructs missing fields from dataclass defaults (that is the
# schema-skew mechanism), and most messages are sparse (an Event sets one
# of its eight slots). Identity, not equality: only default singletons like
# None/True/False/interned small ints are safely elidable; anything else
# compares ``is``-false and travels explicitly.
_NO_DEFAULT = object()
_MESSAGE_ENCODE_FIELDS: Dict[Type, Tuple[Tuple[str, Any], ...]] = {}


def wire_message(cls=None, *, name: Optional[str] = None):
    """Class decorator registering a dataclass as a typed wire message.

    Registered messages are encoded by *registry name* rather than by
    pickle's module path, which is what makes the typed format stable across
    refactors: the name is the wire contract, the import location is not.
    """

    def register(message_cls):
        if not dataclasses.is_dataclass(message_cls):
            raise TypeError(f"wire_message requires a dataclass, got {message_cls!r}")
        tag = name or message_cls.__name__
        existing = _MESSAGE_REGISTRY.get(tag)
        if existing is not None and existing is not message_cls:
            raise ValueError(f"Duplicate wire message tag {tag!r}")
        _MESSAGE_REGISTRY[tag] = message_cls
        _MESSAGE_TAGS[message_cls] = tag
        _MESSAGE_FIELDS[message_cls] = tuple(
            f.name for f in dataclasses.fields(message_cls)
        )
        _MESSAGE_ENCODE_FIELDS[message_cls] = tuple(
            (
                f.name,
                f.default if f.default is not dataclasses.MISSING else _NO_DEFAULT,
            )
            for f in dataclasses.fields(message_cls)
        )
        return message_cls

    return register(cls) if cls is not None else register


def message_registry() -> Dict[str, Type]:
    """A snapshot of the registered wire message types, by tag."""
    return dict(_MESSAGE_REGISTRY)


# -- codecs -------------------------------------------------------------------


class Codec:
    """Encodes one message to payload bytes (and back) for one wire version."""

    version: int = 0
    name = "codec"

    def encode(self, message: Any) -> bytes:
        raise NotImplementedError

    def decode(self, data: bytes) -> Any:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}(version={self.version})"


class PickleCodec(Codec):
    """Wire version 1: the payload is one bare pickle (the legacy format)."""

    version = LEGACY_WIRE_VERSION
    name = "pickle"

    def encode(self, message: Any) -> bytes:
        return pickle.dumps(message)

    def decode(self, data: bytes) -> Any:
        return pickle.loads(data)


# Structure tags of the typed codec's lowered form. Raw primitives travel
# as themselves; every tuple in the lowered structure is one of these tags,
# so user tuples (lowered to ("t", ...)) can never be confused with them.
_TAG_MESSAGE = "M"
_TAG_OPAQUE = "P"
_TAG_LIST = "l"
_TAG_FLAT_LIST = "F"  # list of primitives only: no per-item lowering needed
_TAG_TUPLE = "t"
_TAG_DICT = "d"

_PRIMITIVES = (type(None), bool, int, float, str, bytes)
# Exact-type set for the flat-list scan: ``set(map(type, ...)) <= this`` runs
# the whole check in C, where a per-item isinstance() genexpr would dominate
# encode time for long observation vectors. Exactness is safe: a primitive
# *subclass* just falls back to the per-item tagged-list path.
_PRIMITIVE_TYPES = frozenset(_PRIMITIVES)


class TypedPickleCodec(Codec):
    """Wire version 2: registered messages travel as ``(tag, fields)`` pairs.

    The message graph is lowered to a primitive structure — primitives raw,
    containers tagged, registered dataclasses as ``("M", tag, field-dict)``,
    anything else as a tagged opaque pickle — and that structure is then
    serialized. Decoding validates every message tag against the registry
    and drops unknown field names, giving one version of schema skew for
    free (new fields fall back to the dataclass defaults on an old peer).
    """

    version = 2
    name = "typed-pickle"

    def encode(self, message: Any) -> bytes:
        return pickle.dumps(self._lower(message), protocol=pickle.HIGHEST_PROTOCOL)

    def decode(self, data: bytes) -> Any:
        return self._raise_(pickle.loads(data))

    def _lower(self, value: Any) -> Any:
        if isinstance(value, _PRIMITIVES):
            return value
        cls = type(value)
        tag = _MESSAGE_TAGS.get(cls)
        if tag is not None:
            lower = self._lower
            fields = {}
            for name, default in _MESSAGE_ENCODE_FIELDS[cls]:
                item = getattr(value, name)
                if item is default:
                    continue  # The decoder rebuilds it from the default.
                fields[name] = lower(item)
            return (_TAG_MESSAGE, tag, fields)
        if isinstance(value, list):
            # Observation vectors are long lists of floats; skipping per-item
            # lowering (and per-item raising on the peer) dominates codec cost.
            if cls is list and set(map(type, value)) <= _PRIMITIVE_TYPES:
                return (_TAG_FLAT_LIST, value)
            return (_TAG_LIST, [self._lower(item) for item in value])
        if isinstance(value, tuple):
            return (_TAG_TUPLE, tuple(self._lower(item) for item in value))
        if isinstance(value, dict):
            return (_TAG_DICT, {key: self._lower(item) for key, item in value.items()})
        # Everything else — numpy arrays, spaces, exceptions — travels as an
        # explicitly-tagged opaque pickle: the escape hatch is visible on the
        # wire instead of being the whole format.
        return (_TAG_OPAQUE, pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL))

    def _raise_(self, value: Any) -> Any:
        if isinstance(value, _PRIMITIVES):
            return value
        if not isinstance(value, tuple) or not value:
            raise ServiceError(f"Malformed typed wire payload: {type(value).__name__}")
        tag = value[0]
        if tag == _TAG_MESSAGE:
            _, name, fields = value
            cls = _MESSAGE_REGISTRY.get(name)
            if cls is None:
                raise ServiceError(f"Unknown wire message type: {name!r}")
            known = _MESSAGE_FIELDS[cls]
            raise_ = self._raise_
            return cls(**{
                key: raise_(item)
                for key, item in fields.items()
                if key in known
            })
        if tag == _TAG_FLAT_LIST:
            return value[1]
        if tag == _TAG_LIST:
            return [self._raise_(item) for item in value[1]]
        if tag == _TAG_TUPLE:
            return tuple(self._raise_(item) for item in value[1])
        if tag == _TAG_DICT:
            return {key: self._raise_(item) for key, item in value[1].items()}
        if tag == _TAG_OPAQUE:
            return pickle.loads(value[1])
        raise ServiceError(f"Unknown typed wire tag: {tag!r}")


#: Every wire version this build can decode, by version byte. A peer within
#: one version of :data:`WIRE_VERSION` finds its codec here; anything else
#: is rejected on the frame's first byte.
CODECS: Dict[int, Codec] = {
    codec.version: codec for codec in (PickleCodec(), TypedPickleCodec())
}

SUPPORTED_WIRE_VERSIONS = tuple(sorted(CODECS))


def negotiate_wire_version(peer_versions) -> int:
    """The highest wire version shared with a peer's advertised versions."""
    shared = [v for v in (peer_versions or ()) if v in CODECS]
    return max(shared) if shared else LEGACY_WIRE_VERSION


# -- framing ------------------------------------------------------------------


def encode_payload(message: Any, version: int = WIRE_VERSION) -> bytes:
    """Encode one message with the codec of ``version``."""
    return CODECS[version].encode(message)


def decode_payload(data: bytes, version: int) -> Any:
    """Decode one payload with the codec of ``version``."""
    return CODECS[version].decode(data)


#: Size of the fixed frame header: one version byte plus the uint64 length
#: prefix. Fault injectors that corrupt frames in flight preserve exactly
#: this many leading bytes so the receiver reads a plausible frame of the
#: right length and fails in its *decoder*, not on the length prefix.
FRAME_HEADER_BYTES = 1 + _FRAME_HEADER.size


def corrupt_frame_payload(frame: bytes) -> bytes:
    """Flip every payload byte of a complete frame, preserving the header.

    Chaos-testing helper: the returned frame is structurally valid (version
    byte and length prefix intact) but its payload no longer decodes,
    modelling bit rot or a version-skewed peer on the wire.
    """
    corrupted = bytearray(frame)
    for i in range(FRAME_HEADER_BYTES, len(corrupted)):
        corrupted[i] ^= 0xA5
    return bytes(corrupted)


def frame_bytes(message: Any, version: int = WIRE_VERSION) -> bytes:
    """Serialize one message to its on-the-wire frame: version byte,
    length prefix, encoded payload."""
    data = encode_payload(message, version)
    return bytes([version]) + _FRAME_HEADER.pack(len(data)) + data


def _write_payload(wfile, data: bytes, version: int) -> None:
    """Write one already-encoded payload with the version+length framing."""
    wfile.write(bytes([version]) + _FRAME_HEADER.pack(len(data)) + data)
    wfile.flush()


def write_frame(wfile, message: Any, version: int = WIRE_VERSION) -> None:
    """Write one version-prefixed, length-prefixed encoded message."""
    _write_payload(wfile, encode_payload(message, version), version)


def write_frame_reply(
    wfile, request_id: Optional[int], status: str, payload: Any,
    version: int = WIRE_VERSION,
) -> None:
    """Write a ``(request_id, status, payload)`` reply frame, degrading an
    unencodable payload to a :class:`ServiceError`.

    Encoding happens before any bytes hit the stream, and *any* encoding
    failure — ``__reduce__`` of an exotic payload can raise anything —
    degrades to an encodable :class:`ServiceError` instead of killing the
    serving thread (which would drop the connection after the request was
    already applied, tricking the client into a retry). Only genuine stream
    errors propagate.
    """
    try:
        data = encode_payload((request_id, status, payload), version)
    except Exception:  # noqa: BLE001 - degrade, don't drop the connection
        data = encode_payload(
            (request_id, REPLY_ERROR, ServiceError(f"{type(payload).__name__}: {payload}")),
            version,
        )
    _write_payload(wfile, data, version)


def read_frame_ex(rfile) -> Tuple[int, Any]:
    """Read one frame, returning ``(wire_version, message)``.

    Raises ``EOFError`` on a cleanly closed stream and ``ConnectionError``
    on a version-skewed, truncated, or oversized frame. A frame whose
    version byte has no registered codec — two or more versions of skew —
    is rejected here, before a single payload byte is decoded.
    """
    version_byte = rfile.read(1)
    if not version_byte:
        raise EOFError("Connection closed")
    version = version_byte[0]
    if version not in CODECS:
        raise ConnectionError(
            f"Unsupported wire protocol version {version}: this peer speaks "
            f"{sorted(CODECS)} (current {WIRE_VERSION}; more than one version "
            f"of skew is rejected)"
        )
    header = rfile.read(_FRAME_HEADER.size)
    if len(header) < _FRAME_HEADER.size:
        raise ConnectionError("Truncated frame header")
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME_BYTES:
        raise ConnectionError(f"Frame of {length} bytes exceeds protocol maximum")
    data = b""
    while len(data) < length:
        chunk = rfile.read(length - len(data))
        if not chunk:
            raise ConnectionError("Truncated frame payload")
        data += chunk
    return version, decode_payload(data, version)


def read_frame(rfile) -> Any:
    """Read one framed message from a binary stream (any supported version)."""
    return read_frame_ex(rfile)[1]


def send_reply(conn, status: str, payload: Any) -> None:
    """Send a ``(status, payload)`` pair on a multiprocessing connection.

    Falls back to a picklable :class:`ServiceError` describing the payload
    when the payload itself cannot be pickled, so one exotic result or
    exception cannot wedge the channel. This is the pipe-side sibling of
    :func:`write_frame_reply`, shared by the pipe transport and the
    process-pool worker protocol.
    """
    try:
        conn.send((status, payload))
    except Exception:  # noqa: BLE001 - payload unpicklable; degrade, don't die
        conn.send((REPLY_ERROR, ServiceError(f"{type(payload).__name__}: {payload}")))


# -- service URLs -------------------------------------------------------------


def parse_service_url(url: str) -> Tuple[str, Any]:
    """Parse a service URL into ``(family, address)``.

    Accepted forms: ``tcp://host:port``, ``host:port`` (TCP is implied),
    ``unix:///path/to/socket``, and bracketed IPv6 literals
    (``tcp://[::1]:port``).
    """
    if url.startswith("unix://"):
        path = url[len("unix://"):]
        if not path:
            raise ValueError(f"Service URL has no socket path: {url!r}")
        return "unix", path
    if url.startswith("tcp://"):
        url = url[len("tcp://"):]
    host, sep, port = url.rpartition(":")
    if not sep or not host:
        raise ValueError(
            f"Invalid service URL {url!r}: expected tcp://host:port, "
            "host:port, or unix:///path"
        )
    if host.startswith("[") and host.endswith("]"):
        host = host[1:-1]
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ValueError(f"Invalid service port in URL: {url!r}") from None
