"""Message schema for the client/service boundary.

The upstream project defines these messages as protocol buffers; here they are
plain dataclasses with the same field names so the rest of the code reads
identically. Keeping an explicit message layer (rather than passing Python
objects around freely) preserves the serialization discipline of the original
design and lets the optional subprocess transport pickle them.
"""

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.core.service.wire import wire_message


@wire_message
@dataclass
class Event:
    """A tagged union value used for observations and action payloads."""

    int64_value: Optional[int] = None
    double_value: Optional[float] = None
    string_value: Optional[str] = None
    bytes_value: Optional[bytes] = None
    int64_list: Optional[List[int]] = None
    double_list: Optional[List[float]] = None
    event_dict: Optional[Dict[str, "Event"]] = None
    opaque: Any = None

    def value(self) -> Any:
        """Return whichever payload field is set."""
        for attr in (
            "int64_value",
            "double_value",
            "string_value",
            "bytes_value",
            "int64_list",
            "double_list",
            "event_dict",
            "opaque",
        ):
            value = getattr(self, attr)
            if value is not None:
                return value
        return None

    @classmethod
    def from_value(cls, value: Any) -> "Event":
        """Wrap an arbitrary Python value in the appropriate payload field."""
        if isinstance(value, bool):
            return cls(int64_value=int(value))
        if isinstance(value, int):
            return cls(int64_value=value)
        if isinstance(value, float):
            return cls(double_value=value)
        if isinstance(value, str):
            return cls(string_value=value)
        if isinstance(value, (bytes, bytearray)):
            return cls(bytes_value=bytes(value))
        if isinstance(value, (list, tuple)) and value and all(isinstance(v, int) for v in value):
            return cls(int64_list=list(value))
        if isinstance(value, (list, tuple)) and value and all(isinstance(v, (int, float)) for v in value):
            return cls(double_list=[float(v) for v in value])
        return cls(opaque=value)


@wire_message
@dataclass
class ActionSpaceMessage:
    """Description of an action space exposed by a compilation session."""

    name: str
    space: Any


@wire_message
@dataclass
class ObservationSpaceMessage:
    """Description of an observation space exposed by a compilation session."""

    name: str
    space: Any
    deterministic: bool = True
    platform_dependent: bool = False
    default_observation: Any = None


@wire_message
@dataclass
class StartSessionRequest:
    benchmark_uri: str
    action_space: int = 0
    observation_space_names: List[str] = field(default_factory=list)


@wire_message
@dataclass
class StartSessionReply:
    session_id: int
    observations: List[Event] = field(default_factory=list)
    new_action_space: Optional[ActionSpaceMessage] = None


@wire_message
@dataclass
class StepRequest:
    session_id: int
    actions: List[Any] = field(default_factory=list)
    observation_space_names: List[str] = field(default_factory=list)


@wire_message
@dataclass
class StepReply:
    end_of_session: bool = False
    action_had_no_effect: bool = False
    new_action_space: Optional[ActionSpaceMessage] = None
    observations: List[Event] = field(default_factory=list)


@wire_message
@dataclass
class StepSessionsRequest:
    """Batch of independent per-session step requests, applied in one RPC.

    The daemon executes the sub-requests concurrently (each under its own
    session lock) and replies once with every outcome, collapsing a
    vectorized pool's whole step into a single round trip.
    """

    requests: List[StepRequest] = field(default_factory=list)


@wire_message
@dataclass
class SessionStepResult:
    """Outcome of one sub-request of a :class:`StepSessionsRequest`.

    ``wall_time_s`` is the daemon-measured service time of this sub-step
    (including any wait on the session lock), letting the client attribute
    per-session latency to its call accounting even though the batch
    traveled as one RPC.
    """

    session_id: int
    reply: Optional[StepReply] = None
    error: Optional[Any] = None
    wall_time_s: float = 0.0

    @property
    def ok(self) -> bool:
        return self.error is None


@wire_message
@dataclass
class StepSessionsReply:
    """Per-session outcomes, in the order of the request batch."""

    results: List[SessionStepResult] = field(default_factory=list)


@wire_message
@dataclass
class ForkSessionRequest:
    session_id: int


@wire_message
@dataclass
class ForkSessionReply:
    session_id: int


@wire_message
@dataclass
class EndSessionRequest:
    session_id: int


@wire_message
@dataclass
class EndSessionReply:
    remaining_sessions: int = 0


@wire_message
@dataclass
class GetSpacesReply:
    action_spaces: List[ActionSpaceMessage] = field(default_factory=list)
    observation_spaces: List[ObservationSpaceMessage] = field(default_factory=list)


@wire_message
@dataclass
class SessionState:
    """Snapshot of a compilation session used for checkpoint/restore."""

    benchmark_uri: str
    actions: List[Any] = field(default_factory=list)
    metadata: Dict[str, Any] = field(default_factory=dict)


@wire_message
@dataclass
class HelloRequest:
    """Connection handshake: the first RPC a client sends on every socket.

    Carries the client's auth token (checked against the server's accepted
    set when authentication is configured) and the wire versions it can
    decode, from which the server picks the highest shared one. Sent encoded
    at the *oldest* supported wire version so any compatible server can read
    it before negotiation has happened.
    """

    token: Optional[str] = None
    wire_versions: List[int] = field(default_factory=list)
    client: str = ""


@wire_message
@dataclass
class HelloReply:
    """The server's half of the handshake.

    ``wire_version`` is the negotiated version both sides use from now on.
    ``spaces_epoch`` is bumped by a gateway whenever it re-homes sessions
    across its fleet, and keys the client-side ``get_spaces`` cache so a
    post-failover connection never trusts pre-failover metadata.
    """

    wire_version: int
    server_wire_version: int = 0
    supported_wire_versions: List[int] = field(default_factory=list)
    spaces_epoch: int = 0
    server: str = ""
