"""LRU cache of parsed benchmarks held by the service.

The paper attributes the amortized O(1) environment-initialization cost to the
service maintaining a cache of parsed, unoptimized programs so that repeated
``reset()`` calls on the same benchmark do not re-read and re-parse it. This
module reproduces that cache, including the max-size-in-bytes eviction policy.
"""

import sys
from collections import OrderedDict
from typing import Callable, Optional

from repro.core.datasets.benchmark import Benchmark

# Default maximum cache size, matching the upstream 256 MB default.
MAX_SIZE_IN_BYTES = 256 * 1024 * 1024


class BenchmarkCache:
    """An in-memory LRU cache of benchmarks keyed by URI."""

    def __init__(
        self,
        max_size_in_bytes: int = MAX_SIZE_IN_BYTES,
        size_of: Optional[Callable[[Benchmark], int]] = None,
    ):
        self._cache: "OrderedDict[str, Benchmark]" = OrderedDict()
        self.max_size_in_bytes = max_size_in_bytes
        self._size_in_bytes = 0
        self._size_of = size_of or self._default_size_of
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    @staticmethod
    def _default_size_of(benchmark: Benchmark) -> int:
        program = benchmark.program
        if program is None:
            return 64
        if isinstance(program, (bytes, bytearray, str)):
            return len(program)
        size = getattr(program, "size_in_bytes", None)
        if size is not None:
            return int(size)
        return sys.getsizeof(program)

    @property
    def size(self) -> int:
        """Number of cached benchmarks."""
        return len(self._cache)

    @property
    def size_in_bytes(self) -> int:
        """Estimated total size of cached benchmarks."""
        return self._size_in_bytes

    def __contains__(self, uri: str) -> bool:
        return str(uri) in self._cache

    def __getitem__(self, uri: str) -> Benchmark:
        uri = str(uri)
        if uri not in self._cache:
            self.misses += 1
            raise KeyError(uri)
        self.hits += 1
        self._cache.move_to_end(uri)
        return self._cache[uri]

    def get(self, uri: str) -> Optional[Benchmark]:
        try:
            return self[uri]
        except KeyError:
            return None

    def __setitem__(self, uri: str, benchmark: Benchmark) -> None:
        uri = str(uri)
        if uri in self._cache:
            self._size_in_bytes -= self._size_of(self._cache[uri])
            del self._cache[uri]
        size = self._size_of(benchmark)
        self._cache[uri] = benchmark
        self._size_in_bytes += size
        self._evict_to_capacity()

    def _evict_to_capacity(self) -> None:
        # Evict least-recently-used entries until we are back under the limit,
        # but always keep the most recently inserted benchmark.
        while self._size_in_bytes > self.max_size_in_bytes and len(self._cache) > 1:
            uri, benchmark = self._cache.popitem(last=False)
            self._size_in_bytes -= self._size_of(benchmark)
            self.evictions += 1
            del uri

    def clear(self) -> None:
        self._cache.clear()
        self._size_in_bytes = 0
