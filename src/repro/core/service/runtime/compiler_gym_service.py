"""The shared compiler service runtime.

Maps implementations of :class:`CompilationSession` to the request/reply
message API consumed by the frontend. One runtime instance manages many
concurrent sessions, identified by integer session IDs, and owns the
benchmark cache that gives amortized O(1) environment initialization.
"""

import tempfile
import threading
from typing import Callable, Dict, Optional, Type

from repro.core.datasets.benchmark import Benchmark
from repro.core.service.compilation_session import CompilationSession
from repro.core.service.proto import (
    ActionSpaceMessage,
    EndSessionReply,
    EndSessionRequest,
    Event,
    ForkSessionReply,
    ForkSessionRequest,
    GetSpacesReply,
    ObservationSpaceMessage,
    StartSessionReply,
    StartSessionRequest,
    StepReply,
    StepRequest,
)
from repro.core.service.runtime.benchmark_cache import BenchmarkCache
from repro.errors import ServiceError, SessionNotFound


class CompilerGymServiceRuntime:
    """In-process implementation of the compiler service.

    Args:
        session_type: The :class:`CompilationSession` subclass to instantiate
            for each new session.
        benchmark_resolver: Callable mapping a benchmark URI to a
            :class:`Benchmark`. Results are stored in the benchmark cache.
    """

    def __init__(
        self,
        session_type: Type[CompilationSession],
        benchmark_resolver: Callable[[str], Benchmark],
        working_dir: Optional[str] = None,
    ):
        self.session_type = session_type
        self.benchmark_resolver = benchmark_resolver
        self.working_dir = working_dir or tempfile.mkdtemp(prefix="repro-compiler-service-")
        self.benchmark_cache = BenchmarkCache()
        self.sessions: Dict[int, CompilationSession] = {}
        self._next_session_id = 0
        self._lock = threading.Lock()
        self.closed = False
        # Operation counters, exposed for the efficiency benchmarks.
        self.stats = {"start_session": 0, "step": 0, "fork_session": 0, "end_session": 0}

    # -- space discovery -------------------------------------------------

    def get_spaces(self) -> GetSpacesReply:
        return GetSpacesReply(
            action_spaces=[
                ActionSpaceMessage(name=space.name or f"space-{i}", space=space)
                for i, space in enumerate(self.session_type.action_spaces)
            ],
            observation_spaces=[
                ObservationSpaceMessage(
                    name=spec.id,
                    space=spec.space,
                    deterministic=spec.deterministic,
                    platform_dependent=spec.platform_dependent,
                    default_observation=spec.default_value,
                )
                for spec in self.session_type.observation_spaces
            ],
        )

    def _observation_spec(self, name: str):
        for spec in self.session_type.observation_spaces:
            if spec.id == name:
                return spec
        raise ServiceError(f"Unknown observation space: {name!r}")

    def _resolve_benchmark(self, uri: str) -> Benchmark:
        benchmark = self.benchmark_cache.get(uri)
        if benchmark is None:
            benchmark = self.benchmark_resolver(uri)
            self.benchmark_cache[uri] = benchmark
        return benchmark

    def _session(self, session_id: int) -> CompilationSession:
        if session_id not in self.sessions:
            raise SessionNotFound(f"Session not found: {session_id}")
        return self.sessions[session_id]

    # -- session lifecycle ------------------------------------------------

    def start_session(self, request: StartSessionRequest) -> StartSessionReply:
        if self.closed:
            raise ServiceError("Service is closed")
        self.stats["start_session"] += 1
        benchmark = self._resolve_benchmark(request.benchmark_uri)
        action_space = self.session_type.action_spaces[request.action_space]
        session = self.session_type(
            working_dir=self.working_dir, action_space=action_space, benchmark=benchmark
        )
        with self._lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            self.sessions[session_id] = session
        observations = [
            Event.from_value(session.get_observation(self._observation_spec(name)))
            for name in request.observation_space_names
        ]
        return StartSessionReply(session_id=session_id, observations=observations)

    def step(self, request: StepRequest) -> StepReply:
        self.stats["step"] += 1
        session = self._session(request.session_id)
        end_of_session = False
        action_had_no_effect = True
        new_action_space = None
        for action in request.actions:
            end, new_space, no_effect = session.apply_action(action)
            action_had_no_effect = action_had_no_effect and no_effect
            if new_space is not None:
                new_action_space = ActionSpaceMessage(name=new_space.name or "", space=new_space)
                session.action_space = new_space
            if end:
                end_of_session = True
                break
        observations = [
            Event.from_value(session.get_observation(self._observation_spec(name)))
            for name in request.observation_space_names
        ]
        return StepReply(
            end_of_session=end_of_session,
            action_had_no_effect=action_had_no_effect,
            new_action_space=new_action_space,
            observations=observations,
        )

    def fork_session(self, request: ForkSessionRequest) -> ForkSessionReply:
        self.stats["fork_session"] += 1
        session = self._session(request.session_id)
        forked = session.fork()
        with self._lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            self.sessions[session_id] = forked
        return ForkSessionReply(session_id=session_id)

    def end_session(self, request: EndSessionRequest) -> EndSessionReply:
        self.stats["end_session"] += 1
        session = self.sessions.pop(request.session_id, None)
        if session is not None:
            session.close()
        return EndSessionReply(remaining_sessions=len(self.sessions))

    def handle_session_parameter(self, session_id: int, key: str, value: str) -> Optional[str]:
        return self._session(session_id).handle_session_parameter(key, value)

    def shutdown(self) -> None:
        for session in self.sessions.values():
            session.close()
        self.sessions.clear()
        self.closed = True
