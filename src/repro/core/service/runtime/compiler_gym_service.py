"""The shared compiler service runtime.

Maps implementations of :class:`CompilationSession` to the request/reply
message API consumed by the frontend. One runtime instance manages many
concurrent sessions, identified by integer session IDs, and owns the
benchmark cache that gives amortized O(1) environment initialization.
"""

import tempfile
import threading
from typing import Callable, Dict, Optional, Type

from repro.core.datasets.benchmark import Benchmark
from repro.core.service.compilation_session import CompilationSession
from repro.core.service.proto import (
    ActionSpaceMessage,
    EndSessionReply,
    EndSessionRequest,
    Event,
    ForkSessionReply,
    ForkSessionRequest,
    GetSpacesReply,
    ObservationSpaceMessage,
    StartSessionReply,
    StartSessionRequest,
    StepReply,
    StepRequest,
)
from repro.core.service.runtime.benchmark_cache import BenchmarkCache
from repro.core.service.runtime.result_cache import ResultCache
from repro.errors import ServiceError, SessionNotFound


def _copy_value(value):
    """Defensive copy for cached payloads handed to in-process callers."""
    if hasattr(value, "nbytes") and hasattr(value, "copy"):  # numpy arrays
        return value.copy()
    if isinstance(value, list):
        return list(value)
    if isinstance(value, dict):
        return dict(value)
    return value


class _SessionCacheState:
    """Result-cache bookkeeping for one session.

    ``prefix`` is the canonical action prefix acknowledged to the client;
    ``pending`` is the suffix of it served from the cache but not yet applied
    to the real session — the compile debt a later miss must materialize.
    ``action_space`` is kept so a session whose reset was fully served from
    the cache can defer construction entirely until its first miss.
    A session goes permanently uncacheable (``cacheable=False``) when its
    state diverges from a pure action prefix (session parameters, dynamic
    action spaces, failed replay).
    """

    __slots__ = ("uri", "action_space", "prefix", "pending", "cacheable")

    def __init__(self, uri: str, action_space=None):
        self.uri = uri
        self.action_space = action_space
        self.prefix: tuple = ()
        self.pending: list = []
        self.cacheable = True

    def forked(self) -> "_SessionCacheState":
        child = _SessionCacheState(self.uri, self.action_space)
        child.prefix = self.prefix
        child.pending = list(self.pending)
        child.cacheable = self.cacheable
        return child


class CompilerGymServiceRuntime:
    """In-process implementation of the compiler service.

    Args:
        session_type: The :class:`CompilationSession` subclass to instantiate
            for each new session.
        benchmark_resolver: Callable mapping a benchmark URI to a
            :class:`Benchmark`. Results are stored in the benchmark cache.
        result_cache: Daemon-wide (benchmark, action-prefix) memoization,
            shared across all sessions of this runtime. ``None`` (default)
            enables a default-sized cache; ``False``/``0`` disables; an int
            sets the byte budget; a :class:`ResultCache` is used as-is.
    """

    def __init__(
        self,
        session_type: Type[CompilationSession],
        benchmark_resolver: Callable[[str], Benchmark],
        working_dir: Optional[str] = None,
        result_cache=None,
    ):
        self.session_type = session_type
        self.benchmark_resolver = benchmark_resolver
        self.working_dir = working_dir or tempfile.mkdtemp(prefix="repro-compiler-service-")
        self.benchmark_cache = BenchmarkCache()
        self.result_cache: Optional[ResultCache] = ResultCache.coerce(result_cache)
        # ``None`` marks a lazy session: reset was served from the result
        # cache and the real session has not been constructed yet.
        self.sessions: Dict[int, Optional[CompilationSession]] = {}
        self._cache_states: Dict[int, _SessionCacheState] = {}
        self._next_session_id = 0
        self._lock = threading.Lock()
        self.closed = False
        # Operation counters, exposed for the efficiency benchmarks.
        self.stats = {"start_session": 0, "step": 0, "fork_session": 0, "end_session": 0}

    # -- space discovery -------------------------------------------------

    def get_spaces(self) -> GetSpacesReply:
        return GetSpacesReply(
            action_spaces=[
                ActionSpaceMessage(name=space.name or f"space-{i}", space=space)
                for i, space in enumerate(self.session_type.action_spaces)
            ],
            observation_spaces=[
                ObservationSpaceMessage(
                    name=spec.id,
                    space=spec.space,
                    deterministic=spec.deterministic,
                    platform_dependent=spec.platform_dependent,
                    default_observation=spec.default_value,
                )
                for spec in self.session_type.observation_spaces
            ],
        )

    def _observation_spec(self, name: str):
        for spec in self.session_type.observation_spaces:
            if spec.id == name:
                return spec
        raise ServiceError(f"Unknown observation space: {name!r}")

    def _resolve_benchmark(self, uri: str) -> Benchmark:
        benchmark = self.benchmark_cache.get(uri)
        if benchmark is None:
            benchmark = self.benchmark_resolver(uri)
            self.benchmark_cache[uri] = benchmark
        return benchmark

    def _session(self, session_id: int) -> Optional[CompilationSession]:
        if session_id not in self.sessions:
            raise SessionNotFound(f"Session not found: {session_id}")
        return self.sessions[session_id]

    # -- session lifecycle ------------------------------------------------

    def start_session(self, request: StartSessionRequest) -> StartSessionReply:
        if self.closed:
            raise ServiceError("Service is closed")
        self.stats["start_session"] += 1
        # Resolve eagerly (amortized O(1) via the benchmark cache) so an
        # unknown benchmark URI still fails at reset, not at the first miss.
        benchmark = self._resolve_benchmark(request.benchmark_uri)
        action_space = self.session_type.action_spaces[request.action_space]
        state = (
            _SessionCacheState(str(request.benchmark_uri), action_space)
            if self.result_cache is not None
            else None
        )
        # With the result cache on, session construction (which clones the
        # benchmark's module) is deferred: if every reset observation comes
        # from the cache, the session stays a ``None`` placeholder until the
        # first step that actually misses.
        session: Optional[CompilationSession] = None

        def ensure_session() -> CompilationSession:
            nonlocal session
            if session is None:
                session = self.session_type(
                    working_dir=self.working_dir,
                    action_space=action_space,
                    benchmark=benchmark,
                )
            return session

        if state is None:
            ensure_session()
        observations = []
        for name in request.observation_space_names:
            spec = self._observation_spec(name)
            if state is not None and spec.deterministic:
                value = self.result_cache.get_observation(state.uri, (), name)
                if value is None:
                    value = ensure_session().get_observation(spec)
                    # Store a private copy: the returned object is handed to
                    # (possibly in-process) callers who may mutate it.
                    self.result_cache.put_observation(
                        state.uri, (), name, _copy_value(value)
                    )
                else:
                    value = _copy_value(value)
            else:
                value = ensure_session().get_observation(spec)
            observations.append(Event.from_value(value))
        with self._lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            self.sessions[session_id] = session
            if state is not None:
                self._cache_states[session_id] = state
        return StartSessionReply(session_id=session_id, observations=observations)

    def _materialize(self, session_id: int, state: _SessionCacheState) -> CompilationSession:
        """Settle a session's compile debt before executing a cache miss.

        Constructs the real session if reset was served entirely from the
        cache, then replays the cache-served actions onto it. The replayed
        steps were previously executed (their results are in the cache), so
        deterministic sessions replay without surprises; if materialization
        nevertheless fails, the session's state no longer matches its prefix
        and it leaves the cache protocol for good.
        """
        session = self.sessions.get(session_id)
        if session is None:
            try:
                session = self.session_type(
                    working_dir=self.working_dir,
                    action_space=state.action_space,
                    benchmark=self._resolve_benchmark(state.uri),
                )
            except Exception:
                state.cacheable = False
                raise
            self.sessions[session_id] = session
        if state.pending:
            pending, state.pending = state.pending, []
            try:
                for action in pending:
                    session.apply_action(action)
            except Exception:
                state.cacheable = False
                raise
        return session

    def _execute_step(self, session: CompilationSession, request: StepRequest) -> StepReply:
        end_of_session = False
        action_had_no_effect = True
        new_action_space = None
        for action in request.actions:
            end, new_space, no_effect = session.apply_action(action)
            action_had_no_effect = action_had_no_effect and no_effect
            if new_space is not None:
                new_action_space = ActionSpaceMessage(name=new_space.name or "", space=new_space)
                session.action_space = new_space
            if end:
                end_of_session = True
                break
        observations = [
            Event.from_value(session.get_observation(self._observation_spec(name)))
            for name in request.observation_space_names
        ]
        return StepReply(
            end_of_session=end_of_session,
            action_had_no_effect=action_had_no_effect,
            new_action_space=new_action_space,
            observations=observations,
        )

    def step(self, request: StepRequest) -> StepReply:
        self.stats["step"] += 1
        session = self._session(request.session_id)
        state = self._cache_states.get(request.session_id)
        if state is None or not state.cacheable:
            if session is None and state is not None:
                # A previous materialization failed: retry constructing the
                # real session so the error (or the session) is not lost.
                session = self._materialize(request.session_id, state)
            return self._execute_step(session, request)

        specs = [self._observation_spec(name) for name in request.observation_space_names]
        deterministic = all(spec.deterministic for spec in specs)
        actions = tuple(int(action) for action in request.actions)
        candidate = state.prefix + actions

        if deterministic:
            entry = self.result_cache.lookup_step(
                state.uri, candidate, len(actions), request.observation_space_names
            )
            if entry is not None:
                # Served without compiling: the actions become pending debt,
                # materialized only if a later step misses.
                state.prefix = candidate
                state.pending.extend(actions)
                return StepReply(
                    end_of_session=entry.end_of_session,
                    action_had_no_effect=entry.action_had_no_effect,
                    new_action_space=None,
                    observations=[
                        Event.from_value(_copy_value(entry.observations[name]))
                        for name in request.observation_space_names
                    ],
                )

        session = self._materialize(request.session_id, state)
        reply = self._execute_step(session, request)
        if reply.new_action_space is not None:
            # A dynamic action-space change breaks prefix canonicality.
            state.cacheable = False
            return reply
        state.prefix = candidate
        # Populate the cache for the next session to walk this prefix. The
        # flags are deterministic; only deterministic payloads are stored,
        # each as a private copy so callers mutating the reply cannot
        # corrupt the cached entry.
        cacheable_observations = {
            name: _copy_value(observation.value())
            for name, spec, observation in zip(
                request.observation_space_names, specs, reply.observations
            )
            if spec.deterministic
        }
        self.result_cache.store_step(
            state.uri,
            candidate,
            len(actions),
            reply.end_of_session,
            reply.action_had_no_effect,
            cacheable_observations,
        )
        return reply

    def fork_session(self, request: ForkSessionRequest) -> ForkSessionReply:
        self.stats["fork_session"] += 1
        session = self._session(request.session_id)
        parent_state = self._cache_states.get(request.session_id)
        # Forking a still-lazy session is free: the child is lazy too, and
        # inherits the parent's prefix (and compile debt) via its state.
        forked = session.fork() if session is not None else None
        with self._lock:
            session_id = self._next_session_id
            self._next_session_id += 1
            self.sessions[session_id] = forked
            if parent_state is not None:
                # The fork starts at the parent's prefix (and pending debt),
                # so it inherits every warm cache entry along it.
                self._cache_states[session_id] = parent_state.forked()
        return ForkSessionReply(session_id=session_id)

    def end_session(self, request: EndSessionRequest) -> EndSessionReply:
        self.stats["end_session"] += 1
        session = self.sessions.pop(request.session_id, None)
        self._cache_states.pop(request.session_id, None)
        if session is not None:
            session.close()
        return EndSessionReply(remaining_sessions=len(self.sessions))

    def handle_session_parameter(self, session_id: int, key: str, value: str) -> Optional[str]:
        session = self._session(session_id)
        state = self._cache_states.get(session_id)
        if state is not None:
            # Parameters may read or mutate backend state (e.g. baseline
            # pipelines): settle the compile debt first, then stop treating
            # the session as a pure action prefix.
            session = self._materialize(session_id, state)
            state.cacheable = False
        return session.handle_session_parameter(key, value)

    def cache_stats(self) -> Dict[str, Optional[Dict[str, float]]]:
        """Stats for both cache layers owned by this runtime."""
        return {
            "benchmark_cache": {
                "hits": self.benchmark_cache.hits,
                "misses": self.benchmark_cache.misses,
                "evictions": self.benchmark_cache.evictions,
                "size": self.benchmark_cache.size,
                "size_in_bytes": self.benchmark_cache.size_in_bytes,
            },
            "result_cache": (
                self.result_cache.stats() if self.result_cache is not None else None
            ),
        }

    def shutdown(self) -> None:
        for session in self.sessions.values():
            if session is not None:
                session.close()
        self.sessions.clear()
        self.closed = True
