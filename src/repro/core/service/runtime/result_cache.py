"""Daemon-wide memoization of (benchmark, action-prefix) step results.

The second layer of the result-cache stack (the first is the session's
version-keyed observation memo). One :class:`ResultCache` is shared by every
session — and every tenant — of a runtime: it maps a benchmark URI plus the
canonical action prefix applied since reset to the step's deterministic
observation payloads and end-of-step flags. Repeated prefixes (random-search
restarts, fork-heavy tuners, the Explorer's popular traffic) are then served
without running a single pass: the runtime defers the actual pass execution
until a cache miss forces it to materialize the session state.

Keying and eviction:

- Observation entries are keyed ``(uri, action-prefix, space_id)`` so that
  requests for different observation subsets compose.
- Flag entries (end-of-session, action-had-no-effect) are keyed
  ``(uri, action-prefix, number-of-actions-in-the-step)`` — the same prefix
  reached via a different step batching has different batch flags.
- Entries are evicted LRU under a byte budget, sized by payload estimate.

Only *deterministic* observation spaces may be stored: nondeterministic
spaces (e.g. ``Runtime``) always force real execution. Platform-dependent
spaces are fine — the cache never leaves the machine that computed them.
"""

import sys
import threading
from collections import OrderedDict
from typing import Dict, List, Optional, Tuple

# Default byte budget. Observation payloads are small (feature vectors,
# printed IR); 64 MB holds hundreds of thousands of step results.
DEFAULT_MAX_SIZE_IN_BYTES = 64 * 1024 * 1024


def _size_of_value(value) -> int:
    """Rough in-memory size estimate of one cached payload."""
    if value is None:
        return 8
    if isinstance(value, (bytes, bytearray, str)):
        return len(value) + 48
    nbytes = getattr(value, "nbytes", None)
    if nbytes is not None:
        return int(nbytes) + 96
    if isinstance(value, (list, tuple)):
        return 48 + sum(_size_of_value(item) for item in value)
    if isinstance(value, dict):
        return 64 + sum(
            _size_of_value(k) + _size_of_value(v) for k, v in value.items()
        )
    return sys.getsizeof(value)


class StepCacheEntry:
    """A fully-cached step: flags plus one payload per requested space."""

    __slots__ = ("end_of_session", "action_had_no_effect", "observations")

    def __init__(self, end_of_session: bool, action_had_no_effect: bool,
                 observations: Dict[str, object]):
        self.end_of_session = end_of_session
        self.action_had_no_effect = action_had_no_effect
        self.observations = observations


class ResultCache:
    """Byte-bounded LRU cache of step results, shared across sessions.

    Thread-safe: daemons step many sessions concurrently.
    """

    def __init__(self, max_size_in_bytes: int = DEFAULT_MAX_SIZE_IN_BYTES):
        self.max_size_in_bytes = max_size_in_bytes
        self._lock = threading.Lock()
        self._cache: "OrderedDict[tuple, Tuple[object, int]]" = OrderedDict()
        self._size_in_bytes = 0
        # hits/misses count queries (one per step lookup); stores and
        # evictions count individual entries.
        self.hits = 0
        self.misses = 0
        self.stores = 0
        self.evictions = 0

    # -- coercion ----------------------------------------------------------

    @classmethod
    def coerce(cls, value) -> Optional["ResultCache"]:
        """Interpret the user-facing ``result_cache=...`` setting.

        ``None``/``True`` -> a default-sized cache; ``False``/``0`` ->
        disabled; an int -> a cache with that byte budget; a
        :class:`ResultCache` -> used as-is.
        """
        if isinstance(value, cls):
            return value
        if value is None or value is True:
            return cls()
        if not value:
            return None
        return cls(max_size_in_bytes=int(value))

    def __reduce__(self):
        # Caches travel inside env-spec recipes (e.g. to process-pool
        # workers); the contents and lock stay behind, the budget is kept.
        return (ResultCache, (self.max_size_in_bytes,))

    # -- introspection -----------------------------------------------------

    @property
    def size(self) -> int:
        return len(self._cache)

    @property
    def size_in_bytes(self) -> int:
        return self._size_in_bytes

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> Dict[str, float]:
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "hit_rate": self.hit_rate,
                "stores": self.stores,
                "evictions": self.evictions,
                "size": len(self._cache),
                "size_in_bytes": self._size_in_bytes,
                "max_size_in_bytes": self.max_size_in_bytes,
            }

    # -- raw entry access (used for reset-time observations) ---------------

    def get_observation(self, uri: str, prefix: Tuple[int, ...], space_id: str):
        """One observation payload, or None. Counts one query."""
        with self._lock:
            entry = self._get_locked(("obs", uri, prefix, space_id))
            if entry is None:
                self.misses += 1
                return None
            self.hits += 1
            return entry

    def put_observation(self, uri: str, prefix: Tuple[int, ...], space_id: str,
                        value) -> None:
        with self._lock:
            self._put_locked(("obs", uri, prefix, space_id), value)

    # -- step-granularity access -------------------------------------------

    def lookup_step(
        self,
        uri: str,
        prefix: Tuple[int, ...],
        num_actions: int,
        space_ids: List[str],
    ) -> Optional[StepCacheEntry]:
        """The full result of a step, or None if any piece is missing.

        ``prefix`` is the canonical action prefix *after* the step's actions;
        ``num_actions`` is how many actions the step applied (the flags of a
        prefix depend on how its tail was batched). Counts one query.
        """
        with self._lock:
            flags = self._get_locked(("flags", uri, prefix, num_actions))
            if flags is None:
                self.misses += 1
                return None
            observations = {}
            for space_id in space_ids:
                value = self._get_locked(("obs", uri, prefix, space_id))
                if value is None:
                    self.misses += 1
                    return None
                observations[space_id] = value
            self.hits += 1
            end_of_session, action_had_no_effect = flags
            return StepCacheEntry(end_of_session, action_had_no_effect, observations)

    def store_step(
        self,
        uri: str,
        prefix: Tuple[int, ...],
        num_actions: int,
        end_of_session: bool,
        action_had_no_effect: bool,
        observations: Dict[str, object],
    ) -> None:
        with self._lock:
            self._put_locked(
                ("flags", uri, prefix, num_actions),
                (end_of_session, action_had_no_effect),
            )
            for space_id, value in observations.items():
                self._put_locked(("obs", uri, prefix, space_id), value)

    # -- internals ---------------------------------------------------------

    def _get_locked(self, key: tuple):
        entry = self._cache.get(key)
        if entry is None:
            return None
        self._cache.move_to_end(key)
        return entry[0]

    def _put_locked(self, key: tuple, value) -> None:
        old = self._cache.pop(key, None)
        if old is not None:
            self._size_in_bytes -= old[1]
        size = _size_of_value(value) + 128  # key + bookkeeping overhead
        self._cache[key] = (value, size)
        self._size_in_bytes += size
        self.stores += 1
        # Evict LRU entries down to the budget, always keeping the newest.
        while self._size_in_bytes > self.max_size_in_bytes and len(self._cache) > 1:
            _, (_, evicted_size) = self._cache.popitem(last=False)
            self._size_in_bytes -= evicted_size
            self.evictions += 1

    def clear(self) -> None:
        with self._lock:
            self._cache.clear()
            self._size_in_bytes = 0
