"""Shared service runtime: session management, benchmark cache."""

from repro.core.service.runtime.benchmark_cache import BenchmarkCache
from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime

__all__ = ["BenchmarkCache", "CompilerGymServiceRuntime"]
