"""Shared service runtime: session management, caches, socket daemon."""

from repro.core.service.runtime.benchmark_cache import BenchmarkCache
from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime
from repro.core.service.runtime.result_cache import ResultCache
from repro.core.service.runtime.server import ServiceServer, make_env_server

__all__ = [
    "BenchmarkCache",
    "CompilerGymServiceRuntime",
    "ResultCache",
    "ServiceServer",
    "make_env_server",
]
