"""The standalone compiler service daemon.

This is the server half of the paper's client/server split: one long-lived
process hosts a :class:`~repro.core.service.runtime.compiler_gym_service.
CompilerGymServiceRuntime` and serves the RPC protocol of
:class:`~repro.core.service.transport.SocketTransport` (length-prefixed
pickled ``(method, args)`` requests) over a TCP or Unix socket. Many clients
— environments, vectorized pools, RL actors, possibly on other machines —
multiplex their sessions onto the one runtime, sharing its benchmark cache
and amortizing service startup across all of them.

Robustness properties:

* **Per-session locking** — concurrent requests against *different* sessions
  run in parallel (one handler thread per client connection); concurrent
  requests against the *same* session serialize, so a session's compiler
  state can never interleave two ``step()``\\ s.
* **Client churn** — a dropped client connection ends nothing: its sessions
  stay alive until explicitly ended, reclaimed by the idle reaper, or the
  daemon shuts down. This is what lets sequential pools (and successive
  training runs) reattach to warm state.
* **Idle-session reaping** — sessions untouched for ``session_timeout``
  seconds are ended in the background, so leaked sessions from crashed
  clients cannot accumulate forever.
* **Graceful shutdown** — ``shutdown()`` (or SIGINT/SIGTERM under ``repro
  serve``) stops accepting, unblocks every handler, closes all sessions and
  the runtime, and joins all threads.

Start one from the command line with ``repro-compilergym serve --env llvm-v0
--port 5499``, then attach environments with ``repro.make("llvm-v0",
service_url="tcp://127.0.0.1:5499")``.

.. warning::
    The wire protocol is *pickle*, with no authentication: unpickling a
    hostile frame executes arbitrary code, on the daemon and on clients
    alike. Serve only on loopback, a Unix socket, or a network where every
    peer is trusted (the same trust model as a multiprocessing cluster);
    front the daemon with an SSH tunnel or VPN to cross machines.
"""

import logging
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait as wait_futures
from typing import Dict, Optional

from repro.core.service.proto import (
    EndSessionRequest,
    SessionStepResult,
    StepSessionsReply,
    StepSessionsRequest,
)
from repro.core.service.transport import (
    PROTOCOL_VERSION,
    REPLY_ERROR,
    REPLY_OK,
    read_frame,
    write_frame_reply,
)
from repro.errors import ServiceError, SessionNotFound

logger = logging.getLogger(__name__)


def _picklable_error(error: BaseException) -> BaseException:
    """Degrade an unpicklable exception to a :class:`ServiceError` so one
    exotic per-session failure cannot poison a whole batched reply frame."""
    import pickle

    try:
        pickle.dumps(error)
        return error
    except Exception:  # noqa: BLE001 - degrade, don't die
        return ServiceError(f"{type(error).__name__}: {error}")

# RPC methods a client may invoke on the runtime, and where in their argument
# list the session id lives (for per-session locking / idle accounting).
# Everything else is rejected — the wire protocol must not become a generic
# remote getattr.
_SESSION_ID_FROM_REQUEST = ("step", "fork_session", "end_session")
_ALLOWED_METHODS = frozenset(
    {"get_spaces", "start_session", "handle_session_parameter", "server_info",
     "step_sessions"}
    | set(_SESSION_ID_FROM_REQUEST)
)


class ServiceServer:
    """Serves a compiler service runtime to socket clients.

    Args:
        runtime: The shared :class:`CompilerGymServiceRuntime` to serve.
        host / port: TCP listen address. ``port=0`` picks a free port
            (exposed afterwards via :attr:`url`).
        unix_path: Serve on a Unix domain socket instead of TCP.
        session_timeout: Idle seconds after which a session is reaped.
            ``None`` disables reaping.
        reap_interval: How often the reaper thread scans, in seconds.
        env_id: Optional environment id, reported by ``server_info``.
    """

    def __init__(
        self,
        runtime,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        session_timeout: Optional[float] = 3600.0,
        reap_interval: float = 10.0,
        env_id: Optional[str] = None,
    ):
        self.runtime = runtime
        self.env_id = env_id
        self.session_timeout = session_timeout
        self.reap_interval = reap_interval
        self.started_at = time.monotonic()
        self.reaped_sessions = 0
        self.connections_served = 0
        self.batched_steps = 0
        self.closed = False
        # Closables released after the runtime at shutdown (e.g. the template
        # environment whose datasets back the benchmark resolver).
        self.owned_resources = []

        self._lock = threading.Lock()
        self._session_locks: Dict[int, threading.Lock] = {}
        self._session_last_used: Dict[int, float] = {}
        self._shutdown_event = threading.Event()
        self._client_sockets = set()
        self._handler_threads = []
        self._accept_thread: Optional[threading.Thread] = None
        self._reaper_thread: Optional[threading.Thread] = None
        # Requests from one multiplexed client connection are served
        # concurrently on this pool (replies return in completion order, not
        # arrival order). The *sub-steps* of a step_sessions batch run on a
        # separate pool: a dispatch task blocks waiting for its batch's
        # sub-steps, and tasks must never wait on their own executor.
        self._dispatch_executor = ThreadPoolExecutor(
            max_workers=32, thread_name_prefix="repro-serve-dispatch"
        )
        self._batch_executor = ThreadPoolExecutor(
            max_workers=max(4, (os.cpu_count() or 4)),
            thread_name_prefix="repro-serve-batch",
        )

        if unix_path is not None:
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(unix_path)
            self.url = f"unix://{unix_path}"
            self._unix_path = unix_path
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            bound_host, bound_port = self._listener.getsockname()[:2]
            self.url = f"tcp://{bound_host}:{bound_port}"
            self._unix_path = None
        self._listener.listen(128)
        if self.session_timeout is not None:
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, name="repro-serve-reaper", daemon=True
            )
            self._reaper_thread.start()

    # -- serving -----------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Begin accepting clients on a background thread (for embedding)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self.serve_forever, name="repro-serve-accept", daemon=True
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept clients until :meth:`shutdown`. Blocks the calling thread."""
        logger.info("Compiler service daemon (pid=%d) serving on %s", os.getpid(), self.url)
        while not self._shutdown_event.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                break  # Listener closed by shutdown().
            with self._lock:
                if self.closed:
                    client.close()
                    break
                self.connections_served += 1
                self._client_sockets.add(client)
                # Opportunistically forget threads that already finished, so
                # a long-lived daemon does not accumulate one record per
                # client ever served.
                self._handler_threads = [t for t in self._handler_threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._handle_client,
                    args=(client,),
                    name="repro-serve-client",
                    daemon=True,
                )
                self._handler_threads.append(thread)
                # Start under the lock: shutdown() snapshots this list and
                # joins every entry — joining a not-yet-started thread raises.
                thread.start()

    def _handle_client(self, client: socket.socket) -> None:
        """Serve one client connection until it disconnects.

        The handler thread only *reads*: each request frame is handed to the
        dispatch pool, so concurrent requests multiplexed onto one
        connection (request ids distinguish them) execute in parallel and
        their replies return in completion order. Reply writes are
        serialized by a per-connection lock so frames never interleave.
        """
        try:
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # Unix sockets have no TCP options.
        rfile = client.makefile("rb")
        wfile = client.makefile("wb")
        write_lock = threading.Lock()
        in_flight = []
        try:
            while not self._shutdown_event.is_set():
                try:
                    request_id, method, args = read_frame(rfile)
                except (EOFError, ConnectionError, OSError):
                    break  # Client went away; its sessions live on.
                except Exception:  # noqa: BLE001 - corrupt/hostile frame
                    # Anything else is a malformed frame (version-skewed
                    # unpickle, a non-request payload, a stray writer on the
                    # port): drop this client like a disconnect instead of
                    # letting the exception kill the handler thread.
                    logger.warning(
                        "Dropping client after malformed request frame",
                        exc_info=True,
                    )
                    break
                in_flight = [f for f in in_flight if not f.done()]
                try:
                    in_flight.append(
                        self._dispatch_executor.submit(
                            self._serve_request, wfile, write_lock,
                            request_id, method, args,
                        )
                    )
                except RuntimeError:
                    break  # Executor shut down: the daemon is stopping.
        finally:
            # Let in-flight requests finish before tearing the streams down:
            # their session work completes either way, but an orderly drain
            # lets final replies reach a client that is still listening.
            if in_flight:
                wait_futures(in_flight, timeout=5)
            for stream in (rfile, wfile):
                try:
                    stream.close()
                except Exception:  # noqa: BLE001
                    pass
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass
            with self._lock:
                self._client_sockets.discard(client)

    def _serve_request(
        self, wfile, write_lock: threading.Lock, request_id, method, args
    ) -> None:
        """Execute one request on a dispatch thread and write its reply."""
        try:
            result = self._dispatch(method, args)
        except BaseException as error:  # noqa: BLE001 - sent to the client
            status, payload = REPLY_ERROR, error
        else:
            status, payload = REPLY_OK, result
        try:
            with write_lock:
                write_frame_reply(wfile, request_id, status, payload)
        except (OSError, ConnectionError, ValueError):
            pass  # Reply write failed: the client is gone.

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, method: str, args):
        if method not in _ALLOWED_METHODS:
            raise ServiceError(f"Unknown service method: {method!r}")
        if method == "server_info":
            return self.server_info()
        if method == "step_sessions":
            return self._step_sessions(*args)
        if method == "start_session":
            reply = self.runtime.start_session(*args)
            self._track_session(reply.session_id)
            return reply
        session_id = self._session_id_of(method, args)
        if session_id is None:
            return getattr(self.runtime, method)(*args)
        self._touch_session(session_id)
        with self._session_lock(session_id):
            try:
                result = getattr(self.runtime, method)(*args)
            except SessionNotFound:
                # An unknown (or already-ended) session id must not leave a
                # lock/last-used entry behind — stale clients would otherwise
                # grow the tracking maps without bound.
                self._forget_session(session_id)
                raise
            # Re-stamp after completion (still under the session lock): a
            # call longer than the idle timeout must not leave last_used at
            # its pre-call value, or the reaper — which re-checks under this
            # lock — would end a session the instant its step finished.
            self._touch_session(session_id)
        if method == "fork_session":
            self._track_session(result.session_id)
        elif method == "end_session":
            self._forget_session(session_id)
        return result

    def _step_sessions(self, request: StepSessionsRequest) -> StepSessionsReply:
        """Execute a batch of per-session steps concurrently, reply once.

        Each sub-request runs under the same per-session lock + ``last_used``
        re-stamp discipline as a standalone ``step``: touched before taking
        the lock, re-stamped after completing under it, so the idle reaper —
        which re-checks ``last_used`` under the session lock — can never end
        a session that is mid-flight inside a batch. Per-session wall times
        (including lock wait) are measured here and returned so the client
        can attribute load to each session despite the single round trip.
        """
        if not isinstance(request, StepSessionsRequest):
            raise ServiceError(
                f"step_sessions expects a StepSessionsRequest, got "
                f"{type(request).__name__}"
            )
        with self._lock:
            self.batched_steps += 1

        def step_one(sub) -> SessionStepResult:
            started = time.monotonic()
            session_id = sub.session_id
            try:
                self._touch_session(session_id)
                with self._session_lock(session_id):
                    try:
                        reply = self.runtime.step(sub)
                    except SessionNotFound:
                        self._forget_session(session_id)
                        raise
                    self._touch_session(session_id)
            except BaseException as error:  # noqa: BLE001 - reported per-result
                return SessionStepResult(
                    session_id=session_id,
                    error=_picklable_error(error),
                    wall_time_s=time.monotonic() - started,
                )
            return SessionStepResult(
                session_id=session_id,
                reply=reply,
                wall_time_s=time.monotonic() - started,
            )

        # Sub-steps run on the dedicated batch pool (never on the dispatch
        # pool this batch RPC itself occupies). Two sub-requests naming the
        # same session serialize on its lock like any other concurrent pair.
        futures = [self._batch_executor.submit(step_one, sub) for sub in request.requests]
        return StepSessionsReply(results=[future.result() for future in futures])

    @staticmethod
    def _session_id_of(method: str, args) -> Optional[int]:
        if method in _SESSION_ID_FROM_REQUEST and args:
            return args[0].session_id
        if method == "handle_session_parameter" and args:
            return args[0]
        return None

    def _session_lock(self, session_id: int) -> threading.Lock:
        with self._lock:
            return self._session_locks.setdefault(session_id, threading.Lock())

    def _track_session(self, session_id: int) -> None:
        with self._lock:
            self._session_locks.setdefault(session_id, threading.Lock())
            self._session_last_used[session_id] = time.monotonic()

    def _touch_session(self, session_id: int) -> None:
        with self._lock:
            # Refresh known sessions only; unknown ids are either about to
            # raise SessionNotFound or races with the reaper — neither may
            # (re)insert a tracking entry.
            if session_id in self._session_last_used:
                self._session_last_used[session_id] = time.monotonic()

    def _forget_session(self, session_id: int) -> None:
        with self._lock:
            self._session_locks.pop(session_id, None)
            self._session_last_used.pop(session_id, None)

    # -- idle reaping ------------------------------------------------------

    def _reap_loop(self) -> None:
        while not self._shutdown_event.wait(self.reap_interval):
            self.reap_idle_sessions()

    def reap_idle_sessions(self) -> int:
        """End every session idle for longer than ``session_timeout``.

        Returns the number of sessions reaped. Called periodically by the
        reaper thread; callable directly (e.g. from tests or an operator
        console).
        """
        if self.session_timeout is None:
            return 0
        deadline = time.monotonic() - self.session_timeout
        with self._lock:
            idle = [
                session_id
                for session_id, last_used in self._session_last_used.items()
                if last_used < deadline
            ]
        reaped = 0
        for session_id in idle:
            # Serialize with any in-flight call on the session; re-check the
            # idle deadline under the lock so a just-touched session survives.
            with self._session_lock(session_id):
                with self._lock:
                    last_used = self._session_last_used.get(session_id)
                if last_used is None:
                    # The session was ended between the idle snapshot and
                    # now; _session_lock() re-created its lock entry above —
                    # drop it or it leaks forever.
                    self._forget_session(session_id)
                    continue
                if last_used >= deadline:
                    continue
                try:
                    self.runtime.end_session(EndSessionRequest(session_id=session_id))
                except (ServiceError, SessionNotFound):
                    pass
            self._forget_session(session_id)
            reaped += 1
        if reaped:
            with self._lock:
                self.reaped_sessions += reaped
            logger.info("Reaped %d idle session(s)", reaped)
        return reaped

    # -- introspection -----------------------------------------------------

    def server_info(self) -> dict:
        """Identity and occupancy snapshot, served as the ``server_info`` RPC."""
        with self._lock:
            tracked = len(self._session_last_used)
            reaped = self.reaped_sessions
            connections = self.connections_served
            batched = self.batched_steps
        return {
            "pid": os.getpid(),
            "env_id": self.env_id,
            "url": self.url,
            "protocol_version": PROTOCOL_VERSION,
            "uptime_s": time.monotonic() - self.started_at,
            "active_sessions": tracked,
            "reaped_sessions": reaped,
            "connections_served": connections,
            "batched_steps": batched,
            "runtime_stats": dict(self.runtime.stats),
        }

    # -- lifecycle ---------------------------------------------------------

    def _close_listener(self) -> None:
        """Close the listening socket, waking any thread blocked in accept().

        ``close()`` alone does not reliably interrupt an ``accept()`` blocked
        in *another* thread; ``shutdown(SHUT_RDWR)`` on the listening socket
        makes that accept fail immediately.
        """
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # Not connected / already closed, depending on platform.
        try:
            self._listener.close()
        except Exception:  # noqa: BLE001
            pass

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to exit. Safe from a signal handler.

        Takes no locks (a signal handler runs on the main thread, which may
        already hold the server lock inside the accept loop — calling
        :meth:`shutdown` there would self-deadlock): it only sets the
        shutdown event and closes the listener so the blocked ``accept()``
        returns. The caller then runs :meth:`shutdown` in normal context.
        """
        self._shutdown_event.set()
        self._close_listener()

    def shutdown(self) -> None:
        """Stop accepting, drop every client, close all sessions. Idempotent."""
        with self._lock:
            if self.closed:
                return
            self.closed = True
            clients = list(self._client_sockets)
            threads = list(self._handler_threads)
        self._shutdown_event.set()
        self._close_listener()
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5)
        # Handlers have drained their in-flight requests; retire the dispatch
        # pools (batch first: dispatch tasks wait on batch tasks, not vice
        # versa, so this order cannot deadlock either way — it just reads in
        # dependency order).
        self._batch_executor.shutdown(wait=True)
        self._dispatch_executor.shutdown(wait=True)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=self.reap_interval + 5)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        try:
            self.runtime.shutdown()
        finally:
            if self._unix_path is not None:
                try:
                    os.unlink(self._unix_path)
                except OSError:
                    pass
            for resource in self.owned_resources:
                try:
                    resource.close()
                except Exception:  # noqa: BLE001 - teardown must not raise
                    pass
            # This daemon's URL (an ephemeral port, often) may be reused by
            # a different daemon later; retire its spaces-cache entry so a
            # same-process successor cannot serve stale metadata.
            try:
                from repro.core.service.connection import clear_spaces_cache

                clear_spaces_cache(self.url)
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        logger.info("Compiler service daemon on %s shut down", self.url)

    def __enter__(self) -> "ServiceServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


def make_env_server(
    env_id: str,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    session_timeout: Optional[float] = 3600.0,
    reap_interval: float = 10.0,
    **make_kwargs,
) -> ServiceServer:
    """Build a :class:`ServiceServer` hosting the runtime of ``env_id``.

    A template environment is constructed once to obtain the session type and
    the benchmark resolver (its datasets); it is kept alive for the server's
    lifetime so that benchmark resolution — which happens daemon-side —
    works exactly as it does in-process. The served runtime is a *fresh*
    instance: the template's own sessions are never exposed.
    """
    from repro.core.registration import make
    from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime

    template_env = make(env_id, **make_kwargs)
    try:
        runtime = CompilerGymServiceRuntime(
            session_type=template_env.session_type,
            benchmark_resolver=template_env._resolve_benchmark,
        )
        server = ServiceServer(
            runtime,
            host=host,
            port=port,
            unix_path=unix_path,
            session_timeout=session_timeout,
            reap_interval=reap_interval,
            env_id=env_id,
        )
    except Exception:
        # Constructor failure (e.g. the port is already bound) must not leak
        # the template environment and its in-process service.
        template_env.close()
        raise
    # The resolver closes over the template env; pin it to the server so it
    # lives (and is released) with the daemon.
    server.owned_resources.append(template_env)
    return server
