"""The standalone compiler service daemon.

This is the server half of the paper's client/server split: one long-lived
process hosts a :class:`~repro.core.service.runtime.compiler_gym_service.
CompilerGymServiceRuntime` and serves the versioned RPC protocol of
:class:`~repro.core.service.transport.SocketTransport` (see
:mod:`repro.core.service.wire`) over a TCP or Unix socket. Many clients
— environments, vectorized pools, RL actors, a session-routing gateway,
possibly on other machines — multiplex their sessions onto the one runtime,
sharing its benchmark cache and amortizing service startup across all of
them.

Robustness properties:

* **Per-session locking** — concurrent requests against *different* sessions
  run in parallel (one handler thread per client connection); concurrent
  requests against the *same* session serialize, so a session's compiler
  state can never interleave two ``step()``\\ s.
* **Client churn** — a dropped client connection ends nothing: its sessions
  stay alive until explicitly ended, reclaimed by the idle reaper, or the
  daemon shuts down. This is what lets sequential pools (and successive
  training runs) reattach to warm state.
* **Idle-session reaping** — sessions untouched for ``session_timeout``
  seconds are ended in the background, so leaked sessions from crashed
  clients cannot accumulate forever.
* **Session ownership** — every session is stamped with the auth token of
  the connection that created it; a session-scoped call from a different
  tenant is rejected with :class:`~repro.errors.PermissionDeniedError`.
  Anonymous connections (no token) share one anonymous tenant, preserving
  the pre-auth behaviour of trusted single-tenant deployments.
* **Graceful shutdown** — ``shutdown()`` (or SIGINT/SIGTERM under ``repro
  serve``) stops accepting, unblocks every handler, closes all sessions and
  the runtime, and joins all threads.

Start one from the command line with ``repro-compilergym serve --env llvm-v0
--port 5499``, then attach environments with ``repro.make("llvm-v0",
service_url="tcp://127.0.0.1:5499")``. To front a fleet of daemons with one
URL, see :mod:`repro.core.service.gateway`.

The accept loop, handshake, and reply framing are inherited from
:class:`~repro.core.service.rpc_server.SocketRPCServer`; this module adds
what requests *mean* against a compiler runtime. Typed-codec frames plus
``--service-token`` authentication replace the historical "bare pickle from
anyone who can connect" trust model; still prefer loopback, Unix sockets,
or a trusted network segment, since opaque payloads remain pickled for
token-holding peers.
"""

import logging
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, Optional

from repro.core.service.proto import (
    EndSessionRequest,
    SessionStepResult,
    StepSessionsReply,
    StepSessionsRequest,
)
from repro.core.service.rpc_server import ClientConnectionState, SocketRPCServer
from repro.core.service.wire import SUPPORTED_WIRE_VERSIONS, WIRE_VERSION
from repro.errors import PermissionDeniedError, ServiceError, SessionNotFound

logger = logging.getLogger(__name__)

# Historical alias; the daemon reports its current wire version under this
# name in server_info.
PROTOCOL_VERSION = WIRE_VERSION


def _picklable_error(error: BaseException) -> BaseException:
    """Degrade an unpicklable exception to a :class:`ServiceError` so one
    exotic per-session failure cannot poison a whole batched reply frame."""
    import pickle

    try:
        pickle.dumps(error)
        return error
    except Exception:  # noqa: BLE001 - degrade, don't die
        return ServiceError(f"{type(error).__name__}: {error}")

# RPC methods a client may invoke on the runtime, and where in their argument
# list the session id lives (for per-session locking / idle accounting).
# Everything else is rejected — the wire protocol must not become a generic
# remote getattr. (``hello`` is handled by the base server, not listed here.)
_SESSION_ID_FROM_REQUEST = ("step", "fork_session", "end_session")
_ALLOWED_METHODS = frozenset(
    {"get_spaces", "start_session", "handle_session_parameter", "server_info",
     "step_sessions"}
    | set(_SESSION_ID_FROM_REQUEST)
)


class ServiceServer(SocketRPCServer):
    """Serves a compiler service runtime to socket clients.

    Args:
        runtime: The shared :class:`CompilerGymServiceRuntime` to serve.
        host / port: TCP listen address. ``port=0`` picks a free port
            (exposed afterwards via :attr:`url`).
        unix_path: Serve on a Unix domain socket instead of TCP.
        session_timeout: Idle seconds after which a session is reaped.
            ``None`` disables reaping.
        reap_interval: How often the reaper thread scans, in seconds.
        env_id: Optional environment id, reported by ``server_info``.
        auth_tokens: Accepted client auth tokens; ``None`` serves everyone
            (the anonymous single-tenant mode).
    """

    server_kind = "serve"

    def __init__(
        self,
        runtime,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        session_timeout: Optional[float] = 3600.0,
        reap_interval: float = 10.0,
        env_id: Optional[str] = None,
        auth_tokens=None,
    ):
        self.runtime = runtime
        self.env_id = env_id
        self.session_timeout = session_timeout
        self.reap_interval = reap_interval
        self.reaped_sessions = 0
        self.batched_steps = 0
        # Closables released after the runtime at shutdown (e.g. the template
        # environment whose datasets back the benchmark resolver).
        self.owned_resources = []

        self._session_locks: Dict[int, threading.Lock] = {}
        self._session_last_used: Dict[int, float] = {}
        # Auth token of the connection that created each session. ``None`` is
        # the shared anonymous tenant.
        self._session_owner: Dict[int, Optional[str]] = {}
        self._reaper_thread: Optional[threading.Thread] = None
        # The *sub-steps* of a step_sessions batch run on a separate pool
        # from the base server's dispatch pool: a dispatch task blocks
        # waiting for its batch's sub-steps, and tasks must never wait on
        # their own executor.
        self._batch_executor = ThreadPoolExecutor(
            max_workers=max(4, (os.cpu_count() or 4)),
            thread_name_prefix="repro-serve-batch",
        )

        super().__init__(host=host, port=port, unix_path=unix_path, auth_tokens=auth_tokens)

        if self.session_timeout is not None:
            self._reaper_thread = threading.Thread(
                target=self._reap_loop, name="repro-serve-reaper", daemon=True
            )
            self._reaper_thread.start()

    # -- dispatch ----------------------------------------------------------

    def _dispatch(self, state: ClientConnectionState, method: str, args):
        if method not in _ALLOWED_METHODS:
            raise ServiceError(f"Unknown service method: {method!r}")
        if method == "server_info":
            return self.server_info()
        if method == "step_sessions":
            return self._step_sessions(state, *args)
        if method == "start_session":
            reply = self.runtime.start_session(*args)
            self._track_session(reply.session_id, owner=state.token)
            return reply
        session_id = self._session_id_of(method, args)
        if session_id is None:
            return getattr(self.runtime, method)(*args)
        self._check_session_owner(state, session_id)
        self._touch_session(session_id)
        with self._session_lock(session_id):
            try:
                result = getattr(self.runtime, method)(*args)
            except SessionNotFound:
                # An unknown (or already-ended) session id must not leave a
                # lock/last-used entry behind — stale clients would otherwise
                # grow the tracking maps without bound.
                self._forget_session(session_id)
                raise
            # Re-stamp after completion (still under the session lock): a
            # call longer than the idle timeout must not leave last_used at
            # its pre-call value, or the reaper — which re-checks under this
            # lock — would end a session the instant its step finished.
            self._touch_session(session_id)
        if method == "fork_session":
            # A fork belongs to whoever forked it (same tenant as the parent,
            # by the ownership check above).
            self._track_session(result.session_id, owner=state.token)
        elif method == "end_session":
            self._forget_session(session_id)
        return result

    def _step_sessions(
        self, state: ClientConnectionState, request: StepSessionsRequest
    ) -> StepSessionsReply:
        """Execute a batch of per-session steps concurrently, reply once.

        Each sub-request runs under the same per-session lock + ``last_used``
        re-stamp discipline as a standalone ``step``: touched before taking
        the lock, re-stamped after completing under it, so the idle reaper —
        which re-checks ``last_used`` under the session lock — can never end
        a session that is mid-flight inside a batch. Per-session wall times
        (including lock wait) are measured here and returned so the client
        can attribute load to each session despite the single round trip.
        """
        if not isinstance(request, StepSessionsRequest):
            raise ServiceError(
                f"step_sessions expects a StepSessionsRequest, got "
                f"{type(request).__name__}"
            )
        with self._lock:
            self.batched_steps += 1

        def step_one(sub) -> SessionStepResult:
            started = time.monotonic()
            session_id = sub.session_id
            try:
                self._check_session_owner(state, session_id)
                self._touch_session(session_id)
                with self._session_lock(session_id):
                    try:
                        reply = self.runtime.step(sub)
                    except SessionNotFound:
                        self._forget_session(session_id)
                        raise
                    self._touch_session(session_id)
            except BaseException as error:  # noqa: BLE001 - reported per-result
                return SessionStepResult(
                    session_id=session_id,
                    error=_picklable_error(error),
                    wall_time_s=time.monotonic() - started,
                )
            return SessionStepResult(
                session_id=session_id,
                reply=reply,
                wall_time_s=time.monotonic() - started,
            )

        # Sub-steps run on the dedicated batch pool (never on the dispatch
        # pool this batch RPC itself occupies). Two sub-requests naming the
        # same session serialize on its lock like any other concurrent pair.
        futures = [self._batch_executor.submit(step_one, sub) for sub in request.requests]
        return StepSessionsReply(results=[future.result() for future in futures])

    @staticmethod
    def _session_id_of(method: str, args) -> Optional[int]:
        if method in _SESSION_ID_FROM_REQUEST and args:
            return args[0].session_id
        if method == "handle_session_parameter" and args:
            return args[0]
        return None

    def _check_session_owner(
        self, state: ClientConnectionState, session_id: int
    ) -> None:
        """Reject a session-scoped call from a tenant that does not own it.

        Unknown session ids pass through: they fail with the usual
        :class:`SessionNotFound` from the runtime, which is also what a
        cross-tenant prober sees after its rightful owner ends a session —
        ownership does not outlive the session it protects.
        """
        with self._lock:
            if session_id not in self._session_owner:
                return
            owner = self._session_owner[session_id]
        if owner != state.token:
            raise PermissionDeniedError(
                f"Session {session_id} belongs to another tenant"
            )

    def _session_lock(self, session_id: int) -> threading.Lock:
        with self._lock:
            return self._session_locks.setdefault(session_id, threading.Lock())

    def _track_session(self, session_id: int, owner: Optional[str] = None) -> None:
        with self._lock:
            self._session_locks.setdefault(session_id, threading.Lock())
            self._session_last_used[session_id] = time.monotonic()
            self._session_owner[session_id] = owner

    def _touch_session(self, session_id: int) -> None:
        with self._lock:
            # Refresh known sessions only; unknown ids are either about to
            # raise SessionNotFound or races with the reaper — neither may
            # (re)insert a tracking entry.
            if session_id in self._session_last_used:
                self._session_last_used[session_id] = time.monotonic()

    def _forget_session(self, session_id: int) -> None:
        with self._lock:
            self._session_locks.pop(session_id, None)
            self._session_last_used.pop(session_id, None)
            self._session_owner.pop(session_id, None)

    # -- idle reaping ------------------------------------------------------

    def _reap_loop(self) -> None:
        while not self._shutdown_event.wait(self.reap_interval):
            self.reap_idle_sessions()

    def reap_idle_sessions(self) -> int:
        """End every session idle for longer than ``session_timeout``.

        Returns the number of sessions reaped. Called periodically by the
        reaper thread; callable directly (e.g. from tests or an operator
        console).
        """
        if self.session_timeout is None:
            return 0
        deadline = time.monotonic() - self.session_timeout
        with self._lock:
            idle = [
                session_id
                for session_id, last_used in self._session_last_used.items()
                if last_used < deadline
            ]
        reaped = 0
        for session_id in idle:
            # Serialize with any in-flight call on the session; re-check the
            # idle deadline under the lock so a just-touched session survives.
            with self._session_lock(session_id):
                with self._lock:
                    last_used = self._session_last_used.get(session_id)
                if last_used is None:
                    # The session was ended between the idle snapshot and
                    # now; _session_lock() re-created its lock entry above —
                    # drop it or it leaks forever.
                    self._forget_session(session_id)
                    continue
                if last_used >= deadline:
                    continue
                try:
                    self.runtime.end_session(EndSessionRequest(session_id=session_id))
                except (ServiceError, SessionNotFound):
                    pass
            self._forget_session(session_id)
            reaped += 1
        if reaped:
            with self._lock:
                self.reaped_sessions += reaped
            logger.info("Reaped %d idle session(s)", reaped)
        return reaped

    # -- introspection -----------------------------------------------------

    def server_info(self) -> dict:
        """Identity and occupancy snapshot, served as the ``server_info`` RPC."""
        with self._lock:
            tracked = len(self._session_last_used)
            reaped = self.reaped_sessions
            connections = self.connections_served
            batched = self.batched_steps
            heartbeats = self.heartbeats_served
            last_heartbeat = self.last_heartbeat_at
        return {
            "pid": os.getpid(),
            "env_id": self.env_id,
            "url": self.url,
            "protocol_version": PROTOCOL_VERSION,
            "wire_versions": sorted(SUPPORTED_WIRE_VERSIONS),
            "uptime_s": time.monotonic() - self.started_at,
            "active_sessions": tracked,
            "reaped_sessions": reaped,
            "connections_served": connections,
            "batched_steps": batched,
            "heartbeats_served": heartbeats,
            "last_heartbeat_age_s": (
                None if last_heartbeat is None
                else time.monotonic() - last_heartbeat
            ),
            "runtime_stats": dict(self.runtime.stats),
            "cache_stats": self.runtime.cache_stats(),
        }

    # -- lifecycle ---------------------------------------------------------

    def shutdown(self) -> None:
        """Stop accepting, drop every client, close all sessions. Idempotent."""
        if not self._begin_shutdown():
            return
        # Handlers have drained their in-flight requests; retire the dispatch
        # pools (batch first: dispatch tasks wait on batch tasks, not vice
        # versa, so this order cannot deadlock either way — it just reads in
        # dependency order).
        self._batch_executor.shutdown(wait=True)
        if self._reaper_thread is not None:
            self._reaper_thread.join(timeout=self.reap_interval + 5)
        self._finish_shutdown()
        try:
            self.runtime.shutdown()
        finally:
            for resource in self.owned_resources:
                try:
                    resource.close()
                except Exception:  # noqa: BLE001 - teardown must not raise
                    pass
            # This daemon's URL (an ephemeral port, often) may be reused by
            # a different daemon later; retire its spaces-cache entry so a
            # same-process successor cannot serve stale metadata.
            try:
                from repro.core.service.connection import clear_spaces_cache

                clear_spaces_cache(self.url)
            except Exception:  # noqa: BLE001 - teardown must not raise
                pass
        logger.info("Compiler service daemon on %s shut down", self.url)


def make_env_server(
    env_id: str,
    host: str = "127.0.0.1",
    port: int = 0,
    unix_path: Optional[str] = None,
    session_timeout: Optional[float] = 3600.0,
    reap_interval: float = 10.0,
    auth_tokens=None,
    result_cache=None,
    **make_kwargs,
) -> ServiceServer:
    """Build a :class:`ServiceServer` hosting the runtime of ``env_id``.

    A template environment is constructed once to obtain the session type and
    the benchmark resolver (its datasets); it is kept alive for the server's
    lifetime so that benchmark resolution — which happens daemon-side —
    works exactly as it does in-process. The served runtime is a *fresh*
    instance: the template's own sessions are never exposed.
    """
    from repro.core.registration import make
    from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime

    template_env = make(env_id, **make_kwargs)
    try:
        runtime = CompilerGymServiceRuntime(
            session_type=template_env.session_type,
            benchmark_resolver=template_env._resolve_benchmark,
            result_cache=result_cache,
        )
        server = ServiceServer(
            runtime,
            host=host,
            port=port,
            unix_path=unix_path,
            session_timeout=session_timeout,
            reap_interval=reap_interval,
            env_id=env_id,
            auth_tokens=auth_tokens,
        )
    except Exception:
        # Constructor failure (e.g. the port is already bound) must not leak
        # the template environment and its in-process service.
        template_env.close()
        raise
    # The resolver closes over the template env; pin it to the server so it
    # lives (and is released) with the daemon.
    server.owned_resources.append(template_env)
    return server
