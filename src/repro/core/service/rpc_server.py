"""Generic framed-RPC socket server: the shared skeleton of the service tier.

Both ends of the fleet topology serve the same wire protocol — the compiler
*daemon* (:class:`~repro.core.service.runtime.server.ServiceServer`) and the
session-routing *gateway* (:class:`~repro.core.service.gateway.ServiceGateway`)
— so the protocol mechanics live here once: the listener and accept loop, the
per-connection reader that feeds a dispatch pool, reply framing at the
version each client negotiated, the ``hello`` handshake (auth token check +
wire-version negotiation), and orderly shutdown. Subclasses implement
:meth:`_dispatch` to say what the RPC methods *mean*.

Authentication is opt-in: constructed with ``auth_tokens``, a server rejects
every RPC on a connection until a ``hello`` presenting one of the accepted
tokens has succeeded, and hands the verified token to :meth:`_dispatch` so
subclasses can enforce per-tenant session ownership. Without ``auth_tokens``
all connections are implicitly authenticated as the anonymous tenant — the
behaviour every pre-gateway deployment had.
"""

import logging
import os
import socket
import threading
import time
from concurrent.futures import ThreadPoolExecutor, wait as wait_futures
from typing import Iterable, Optional

from repro.core.service.wire import (
    LEGACY_WIRE_VERSION,
    REPLY_ERROR,
    REPLY_OK,
    SUPPORTED_WIRE_VERSIONS,
    WIRE_VERSION,
    corrupt_frame_payload,
    frame_bytes,
    negotiate_wire_version,
    read_frame_ex,
    write_frame_reply,
)
from repro.errors import PermissionDeniedError, ServiceError

logger = logging.getLogger(__name__)


class ClientConnectionState:
    """Per-connection identity carried from the handshake into dispatch."""

    __slots__ = ("token", "wire_version", "authenticated", "client")

    def __init__(self, authenticated: bool):
        # Anonymous until a hello says otherwise. ``authenticated`` starts
        # True on servers that require no token.
        self.token: Optional[str] = None
        self.wire_version = LEGACY_WIRE_VERSION
        self.authenticated = authenticated
        self.client = ""


class SocketRPCServer:
    """Serves the framed, multiplexed RPC protocol on a TCP or Unix socket.

    Args:
        host / port: TCP listen address. ``port=0`` picks a free port
            (exposed afterwards via :attr:`url`).
        unix_path: Serve on a Unix domain socket instead of TCP.
        auth_tokens: Accepted client tokens. ``None`` disables
            authentication entirely; an empty iterable requires a hello but
            accepts no token (useful only for tests).
    """

    server_kind = "service"
    # When True, a request arriving on a connection with no other request in
    # flight is served directly on the reader thread instead of the dispatch
    # pool. This removes a thread handoff from the hot path at the cost of
    # serializing requests multiplexed onto that one connection while the
    # inline request runs. The gateway opts in: its latency is all proxy
    # overhead and its clients batch (one outstanding RPC at a time), while
    # the daemon keeps fully parallel dispatch for its compile work.
    serve_inline_when_idle = False

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        unix_path: Optional[str] = None,
        auth_tokens: Optional[Iterable[str]] = None,
    ):
        self.auth_tokens = None if auth_tokens is None else frozenset(auth_tokens)
        self.started_at = time.monotonic()
        self.connections_served = 0
        self.heartbeats_served = 0
        self.last_heartbeat_at: Optional[float] = None
        # Optional fault-injection hooks (a ``repro.core.service.chaos.
        # ServerChaos``): consulted once per executed request before its
        # reply is written. None in production.
        self.chaos = None
        self.closed = False
        self._lock = threading.Lock()
        self._shutdown_event = threading.Event()
        self._client_sockets = set()
        self._handler_threads = []
        self._accept_thread: Optional[threading.Thread] = None
        # Requests from one multiplexed client connection are served
        # concurrently on this pool (replies return in completion order, not
        # arrival order).
        self._dispatch_executor = ThreadPoolExecutor(
            max_workers=32, thread_name_prefix=f"repro-{self.server_kind}-dispatch"
        )

        if unix_path is not None:
            self._listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            self._listener.bind(unix_path)
            self.url = f"unix://{unix_path}"
            self._unix_path = unix_path
        else:
            self._listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            self._listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
            self._listener.bind((host, port))
            bound_host, bound_port = self._listener.getsockname()[:2]
            self.url = f"tcp://{bound_host}:{bound_port}"
            self._unix_path = None
        self._listener.listen(128)

    # -- serving -----------------------------------------------------------

    def start(self) -> "SocketRPCServer":
        """Begin accepting clients on a background thread (for embedding)."""
        if self._accept_thread is None:
            self._accept_thread = threading.Thread(
                target=self.serve_forever,
                name=f"repro-{self.server_kind}-accept",
                daemon=True,
            )
            self._accept_thread.start()
        return self

    def serve_forever(self) -> None:
        """Accept clients until :meth:`shutdown`. Blocks the calling thread."""
        logger.info(
            "Compiler %s (pid=%d) serving on %s", self.server_kind, os.getpid(), self.url
        )
        while not self._shutdown_event.is_set():
            try:
                client, _ = self._listener.accept()
            except OSError:
                break  # Listener closed by shutdown().
            with self._lock:
                if self.closed:
                    client.close()
                    break
                self.connections_served += 1
                self._client_sockets.add(client)
                # Opportunistically forget threads that already finished, so
                # a long-lived server does not accumulate one record per
                # client ever served.
                self._handler_threads = [t for t in self._handler_threads if t.is_alive()]
                thread = threading.Thread(
                    target=self._handle_client,
                    args=(client,),
                    name=f"repro-{self.server_kind}-client",
                    daemon=True,
                )
                self._handler_threads.append(thread)
                # Start under the lock: shutdown() snapshots this list and
                # joins every entry — joining a not-yet-started thread raises.
                thread.start()

    def _handle_client(self, client: socket.socket) -> None:
        """Serve one client connection until it disconnects.

        The handler thread only *reads*: each request frame is handed to the
        dispatch pool, so concurrent requests multiplexed onto one
        connection (request ids distinguish them) execute in parallel and
        their replies return in completion order. Reply writes are
        serialized by a per-connection lock so frames never interleave.
        Replies are framed at the version the request frame arrived in, so
        they are decodable by the sender whether or not it has negotiated.
        """
        try:
            client.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        except OSError:
            pass  # Unix sockets have no TCP options.
        rfile = client.makefile("rb")
        wfile = client.makefile("wb")
        write_lock = threading.Lock()
        state = ClientConnectionState(authenticated=self.auth_tokens is None)
        in_flight = []
        try:
            while not self._shutdown_event.is_set():
                try:
                    frame_version, message = read_frame_ex(rfile)
                    request_id, method, args = message
                except (EOFError, ConnectionError, OSError):
                    break  # Client went away (or speaks a rejected version).
                except Exception:  # noqa: BLE001 - corrupt/hostile frame
                    # Anything else is a malformed frame (version-skewed
                    # unpickle, a non-request payload, a stray writer on the
                    # port): drop this client like a disconnect instead of
                    # letting the exception kill the handler thread.
                    logger.warning(
                        "Dropping client after malformed request frame",
                        exc_info=True,
                    )
                    break
                in_flight = [f for f in in_flight if not f.done()]
                if self.serve_inline_when_idle and not in_flight:
                    self._serve_request(
                        wfile, write_lock, state, frame_version, request_id,
                        method, args,
                    )
                    continue
                try:
                    in_flight.append(
                        self._dispatch_executor.submit(
                            self._serve_request, wfile, write_lock, state,
                            frame_version, request_id, method, args,
                        )
                    )
                except RuntimeError:
                    break  # Executor shut down: the server is stopping.
        finally:
            # Let in-flight requests finish before tearing the streams down:
            # their session work completes either way, but an orderly drain
            # lets final replies reach a client that is still listening.
            if in_flight:
                wait_futures(in_flight, timeout=5)
            for stream in (rfile, wfile):
                try:
                    stream.close()
                except Exception:  # noqa: BLE001
                    pass
            try:
                client.close()
            except Exception:  # noqa: BLE001
                pass
            with self._lock:
                self._client_sockets.discard(client)

    def _serve_request(
        self,
        wfile,
        write_lock: threading.Lock,
        state: ClientConnectionState,
        frame_version: int,
        request_id,
        method,
        args,
    ) -> None:
        """Execute one request on a dispatch thread and write its reply."""
        try:
            if method == "hello":
                result = self._hello(state, *args)
            elif method == "heartbeat":
                # Liveness probe: answered before the auth check, because a
                # health monitor holds no tenant token and needs nothing but
                # proof the process is alive and serving. Deliberately does
                # no work — its latency is pure protocol overhead, which is
                # exactly what a heartbeat should measure.
                result = self._heartbeat()
            elif not state.authenticated:
                raise PermissionDeniedError(
                    "This service requires authentication: connect with a "
                    "valid auth token (hello handshake) before issuing RPCs"
                )
            else:
                result = self._dispatch(state, method, args)
        except BaseException as error:  # noqa: BLE001 - sent to the client
            status, payload = REPLY_ERROR, error
        else:
            status, payload = REPLY_OK, result
        if self.chaos is not None and method != "hello":
            fault = self.chaos.on_reply(method)
            if fault is not None:
                action, param = fault
                if action == "drop":
                    return  # Executed, but the reply never leaves the server.
                if action == "delay":
                    time.sleep(param)
                elif action == "corrupt":
                    self._write_corrupted_reply(
                        wfile, write_lock, request_id, status, payload,
                        frame_version,
                    )
                    return
        try:
            with write_lock:
                write_frame_reply(
                    wfile, request_id, status, payload, version=frame_version
                )
        except (OSError, ConnectionError, ValueError):
            pass  # Reply write failed: the client is gone.

    def _heartbeat(self) -> dict:
        """The liveness probe reply: pid + uptime, nothing that can block."""
        with self._lock:
            self.heartbeats_served += 1
            self.last_heartbeat_at = time.monotonic()
        return {
            "pid": os.getpid(),
            "kind": self.server_kind,
            "uptime_s": time.monotonic() - self.started_at,
        }

    def _write_corrupted_reply(
        self, wfile, write_lock, request_id, status, payload, frame_version
    ) -> None:
        """Write a reply frame whose payload bytes are garbage (chaos only).

        The header (version byte + length) is kept intact so the client
        reads a plausible frame and fails in its decoder — the same shape as
        bit rot or a version-skewed peer.
        """
        frame = corrupt_frame_payload(
            frame_bytes((request_id, status, payload), version=frame_version)
        )
        try:
            with write_lock:
                wfile.write(frame)
                wfile.flush()
        except (OSError, ConnectionError, ValueError):
            pass

    # -- handshake ---------------------------------------------------------

    def _hello(self, state: ClientConnectionState, request):
        """Authenticate the connection and negotiate the wire version."""
        from repro.core.service.proto import HelloReply, HelloRequest

        if not isinstance(request, HelloRequest):
            raise ServiceError(
                f"hello expects a HelloRequest, got {type(request).__name__}"
            )
        if self.auth_tokens is not None and request.token not in self.auth_tokens:
            raise PermissionDeniedError(
                f"Auth token rejected by the service at {self.url}"
            )
        state.token = request.token
        state.authenticated = True
        state.client = request.client
        state.wire_version = negotiate_wire_version(request.wire_versions)
        return HelloReply(
            wire_version=state.wire_version,
            server_wire_version=WIRE_VERSION,
            supported_wire_versions=sorted(SUPPORTED_WIRE_VERSIONS),
            spaces_epoch=self.spaces_epoch(),
            server=f"repro-{self.server_kind}-pid{os.getpid()}",
        )

    def spaces_epoch(self) -> int:
        """Generation counter of this server's space metadata.

        Plain daemons never mutate their spaces, so theirs is forever 0; a
        gateway bumps it each time it re-homes sessions across its fleet so
        clients retire pre-failover cached metadata.
        """
        return 0

    def _dispatch(self, state: ClientConnectionState, method: str, args):
        """Execute one authenticated RPC. Implemented by subclasses."""
        raise NotImplementedError

    # -- lifecycle ---------------------------------------------------------

    def _close_listener(self) -> None:
        """Close the listening socket, waking any thread blocked in accept().

        ``close()`` alone does not reliably interrupt an ``accept()`` blocked
        in *another* thread; ``shutdown(SHUT_RDWR)`` on the listening socket
        makes that accept fail immediately.
        """
        try:
            self._listener.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass  # Not connected / already closed, depending on platform.
        try:
            self._listener.close()
        except Exception:  # noqa: BLE001
            pass

    def request_shutdown(self) -> None:
        """Ask :meth:`serve_forever` to exit. Safe from a signal handler.

        Takes no locks (a signal handler runs on the main thread, which may
        already hold the server lock inside the accept loop — calling
        :meth:`shutdown` there would self-deadlock): it only sets the
        shutdown event and closes the listener so the blocked ``accept()``
        returns. The caller then runs :meth:`shutdown` in normal context.
        """
        self._shutdown_event.set()
        self._close_listener()

    def _begin_shutdown(self) -> bool:
        """Common first half of shutdown: stop accepting, drop clients.

        Returns False when the server was already shut down (idempotence).
        """
        with self._lock:
            if self.closed:
                return False
            self.closed = True
            clients = list(self._client_sockets)
            threads = list(self._handler_threads)
        self._shutdown_event.set()
        self._close_listener()
        for client in clients:
            try:
                client.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            try:
                client.close()
            except OSError:
                pass
        for thread in threads:
            thread.join(timeout=5)
        return True

    def _finish_shutdown(self) -> None:
        """Common last half of shutdown: retire pools and the unix path."""
        self._dispatch_executor.shutdown(wait=True)
        if self._accept_thread is not None:
            self._accept_thread.join(timeout=5)
        if self._unix_path is not None:
            try:
                os.unlink(self._unix_path)
            except OSError:
                pass

    def shutdown(self) -> None:
        """Stop accepting and drop every client. Idempotent."""
        if not self._begin_shutdown():
            return
        self._finish_shutdown()

    def __enter__(self) -> "SocketRPCServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
