"""Client/service runtime.

The backend of the original system is a gRPC client/server split: the Python
frontend talks to a compiler service process through RPCs. This reproduction
keeps the same layering — a message schema (:mod:`proto`), the four-method
:class:`CompilationSession` integration interface, a service runtime that maps
sessions to the Gym API, and a :class:`ServiceConnection` that adds timeouts,
retries and fault tolerance — over a pluggable :class:`ServiceTransport`:
in-process (the default), a subprocess pipe for crash isolation, or a socket
to the standalone multi-client daemon in :mod:`repro.core.service.runtime.
server` (``repro-compilergym serve``).
"""

from repro.core.service.compilation_session import CompilationSession
from repro.core.service.connection import ConnectionOpts, ServiceConnection
from repro.core.service.proto import (
    ActionSpaceMessage,
    Event,
    ObservationSpaceMessage,
    SessionState,
    StepReply,
    StepRequest,
)
from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime
from repro.core.service.transport import (
    InProcessTransport,
    PipeTransport,
    ServiceTransport,
    SocketTransport,
    parse_service_url,
)

__all__ = [
    "ActionSpaceMessage",
    "CompilationSession",
    "CompilerGymServiceRuntime",
    "ConnectionOpts",
    "Event",
    "InProcessTransport",
    "ObservationSpaceMessage",
    "PipeTransport",
    "ServiceConnection",
    "ServiceTransport",
    "SessionState",
    "SocketTransport",
    "StepReply",
    "StepRequest",
    "parse_service_url",
]
