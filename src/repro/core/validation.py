"""Result validation.

Two layers of validation, as in the paper:

1. *State validation* (reproducibility): a serialized state is replayed in a
   fresh environment and the reward is recomputed. A mismatch indicates
   nondeterminism in the compiler — this is the mechanism that caught the
   ``-gvn-sink`` nondeterminism bug described in the paper.
2. *Semantics validation*: for runnable benchmarks, benchmark-provided
   callbacks apply differential testing (and sanitizer-style checks in the
   LLVM backend) to detect miscompilations.
"""

from dataclasses import dataclass, field
from typing import List, Optional

from repro.core.compiler_env_state import CompilerEnvState
from repro.errors import ValidationError
from repro.util.timer import Timer


@dataclass
class ValidationResult:
    """The result of validating a compiler environment state."""

    state: CompilerEnvState
    walltime: float = 0.0
    reward_validated: bool = False
    actions_replay_failed: bool = False
    reward_validation_failed: bool = False
    benchmark_semantics_validated: bool = False
    benchmark_semantics_validation_failed: bool = False
    errors: List[ValidationError] = field(default_factory=list)

    @property
    def error_details(self) -> str:
        return "\n".join(error.type for error in self.errors)

    def okay(self) -> bool:
        """Whether validation passed with no failures."""
        return not (
            self.actions_replay_failed
            or self.reward_validation_failed
            or self.benchmark_semantics_validation_failed
        )

    def __str__(self) -> str:
        status = "✅" if self.okay() else "❌"
        checks = []
        if self.reward_validated:
            checks.append(
                "reward-mismatch" if self.reward_validation_failed else "reward-ok"
            )
        if self.benchmark_semantics_validated:
            checks.append(
                "semantics-fail" if self.benchmark_semantics_validation_failed else "semantics-ok"
            )
        detail = ",".join(checks) or "replay-only"
        return f"{status} {self.state.benchmark} {detail}"


def validate_state(env, state: CompilerEnvState, reward_tolerance: float = 1e-4) -> ValidationResult:
    """Replay ``state`` in a fork-free fresh episode of ``env`` and validate it.

    The environment's benchmark and reward space are taken from the state and
    the environment's current reward space, respectively.
    """
    errors: List[ValidationError] = []
    result = ValidationResult(state=state)

    with Timer() as timer:
        try:
            env.reset(benchmark=state.benchmark)
            actions = env._actions_from_string(state.commandline)
            if actions:
                _, _, done, info = env.multistep(actions)
                if done and "error_details" in info:
                    result.actions_replay_failed = True
                    errors.append(
                        ValidationError(
                            type="Action replay failed",
                            data={"error_details": info["error_details"]},
                        )
                    )
        except Exception as error:  # noqa: BLE001 - any replay failure is a validation error
            result.actions_replay_failed = True
            errors.append(ValidationError(type="Replay exception", data={"error": str(error)}))
            result.errors = errors
            result.walltime = timer.time
            return result

        # Reward reproducibility check.
        if state.has_reward and env.reward_space is not None:
            result.reward_validated = True
            replay_reward = env.episode_reward or 0.0
            if env.reward_space.deterministic and abs(replay_reward - state.reward) > reward_tolerance:
                result.reward_validation_failed = True
                errors.append(
                    ValidationError(
                        type="Expected reward does not match actual reward",
                        data={"expected_reward": state.reward, "actual_reward": replay_reward},
                    )
                )

        # Benchmark semantics validation.
        benchmark = env.benchmark
        if benchmark is not None and benchmark.is_validatable():
            result.benchmark_semantics_validated = True
            semantic_errors = benchmark.validate(env)
            if semantic_errors:
                result.benchmark_semantics_validation_failed = True
                errors.extend(semantic_errors)

    result.errors = errors
    result.walltime = timer.time
    return result


def validate_states(env_factory, states, inorder: bool = True) -> List[ValidationResult]:
    """Validate a collection of states, constructing environments as needed."""
    del inorder  # Single-threaded implementation validates in order.
    results = []
    env = env_factory()
    try:
        for state in states:
            results.append(validate_state(env, state))
    finally:
        env.close()
    return results
