"""Lazy, per-space access to environment rewards."""

from typing import Dict, List

from repro.core.observation_view import ObservationView
from repro.core.spaces.reward import Reward


class RewardView:
    """Provides named access to an environment's reward spaces.

    ``env.reward["IrInstructionCountOz"]`` computes the named reward for the
    current state by fetching whatever observations that reward space depends
    on, without requiring the reward space to have been selected up front.
    """

    def __init__(self, rewards: List[Reward], observation_view: ObservationView):
        self.spaces: Dict[str, Reward] = {reward.name: reward for reward in rewards}
        self.observation = observation_view
        self._reset_spaces: set = set()
        self._benchmark: str = ""

    def reset(self, benchmark: str) -> None:
        """Reset all reward spaces for a new episode."""
        self._benchmark = benchmark
        self._reset_spaces.clear()

    def _ensure_reset(self, reward: Reward) -> None:
        if reward.name not in self._reset_spaces:
            reward.reset(self._benchmark, self.observation)
            self._reset_spaces.add(reward.name)

    def __getitem__(self, space: str) -> float:
        reward = self.spaces[space]
        self._ensure_reset(reward)
        observations = [self.observation[obs] for obs in reward.observation_spaces]
        return reward.update([], observations, self.observation)

    def add_space(self, reward: Reward) -> None:
        """Register a new reward space (used by wrapper classes)."""
        self.spaces[reward.name] = reward

    def __repr__(self) -> str:
        return f"RewardView[{', '.join(sorted(self.spaces))}]"
