"""Serializable environment state.

A :class:`CompilerEnvState` captures everything needed to reproduce an
optimization result: the benchmark, the sequence of actions (rendered as a
commandline), the wall time of the run, and the cumulative reward. States can
be written to and read from JSON or CSV, which is what the leaderboards and
the ``replay``/``validate`` command-line tools consume.
"""

import csv
import io
import json
from dataclasses import asdict, dataclass, field
from typing import Iterable, Iterator, List, Optional, TextIO


@dataclass
class CompilerEnvState:
    """The result of a compiler optimization episode."""

    benchmark: str
    commandline: str
    walltime: float = 0.0
    reward: Optional[float] = None

    def __post_init__(self):
        if self.walltime < 0:
            raise ValueError(f"walltime must be non-negative: {self.walltime}")

    @property
    def has_reward(self) -> bool:
        return self.reward is not None

    def json(self) -> dict:
        return asdict(self)

    @classmethod
    def from_json(cls, data: dict) -> "CompilerEnvState":
        return cls(
            benchmark=data["benchmark"],
            commandline=data["commandline"],
            walltime=float(data.get("walltime", 0.0)),
            reward=None if data.get("reward") is None else float(data["reward"]),
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, CompilerEnvState):
            return NotImplemented
        # Wall time is excluded from equality: two states are equivalent if
        # they reach the same result on the same benchmark, however long the
        # search took.
        epsilon = 1e-5
        if self.has_reward != other.has_reward:
            return False
        reward_equal = (
            True if not self.has_reward else abs(self.reward - other.reward) < epsilon
        )
        return (
            self.benchmark == other.benchmark
            and self.commandline == other.commandline
            and reward_equal
        )

    def __ne__(self, other) -> bool:
        result = self.__eq__(other)
        return result if result is NotImplemented else not result


@dataclass
class CompilerEnvStateWriter:
    """Writes environment states to a file as CSV rows."""

    file: TextIO
    header: bool = True
    _wrote_header: bool = field(default=False, init=False)

    def write_state(self, state: CompilerEnvState, flush: bool = False) -> None:
        writer = csv.writer(self.file)
        if self.header and not self._wrote_header:
            writer.writerow(["benchmark", "reward", "walltime", "commandline"])
            self._wrote_header = True
        writer.writerow([state.benchmark, state.reward, state.walltime, state.commandline])
        if flush:
            self.file.flush()

    def __enter__(self) -> "CompilerEnvStateWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.file.flush()


class CompilerEnvStateReader:
    """Reads environment states from CSV or JSON-lines files."""

    def __init__(self, source: TextIO):
        self.source = source

    def __iter__(self) -> Iterator[CompilerEnvState]:
        text = self.source.read()
        stripped = text.strip()
        if not stripped:
            return
        if stripped.startswith("{") or stripped.startswith("["):
            yield from self._iter_json(stripped)
        else:
            yield from self._iter_csv(text)

    @staticmethod
    def _iter_json(text: str) -> Iterator[CompilerEnvState]:
        data = json.loads(text)
        if isinstance(data, dict):
            data = [data]
        for entry in data:
            yield CompilerEnvState.from_json(entry)

    @staticmethod
    def _iter_csv(text: str) -> Iterator[CompilerEnvState]:
        reader = csv.reader(io.StringIO(text))
        for row in reader:
            if not row:
                continue
            if row[0] == "benchmark" and row[-1] == "commandline":
                continue  # Header row.
            benchmark, reward, walltime, commandline = row[0], row[1], row[2], row[3]
            yield CompilerEnvState(
                benchmark=benchmark,
                reward=None if reward in ("", "None") else float(reward),
                walltime=float(walltime) if walltime not in ("", "None") else 0.0,
                commandline=commandline,
            )

    @staticmethod
    def read_paths(paths: Iterable[str]) -> Iterator[CompilerEnvState]:
        for path in paths:
            with open(path) as f:
                yield from CompilerEnvStateReader(f)


def write_states_to_file(path: str, states: List[CompilerEnvState]) -> None:
    """Convenience helper to write a list of states as CSV."""
    with open(path, "w") as f:
        writer = CompilerEnvStateWriter(f)
        for state in states:
            writer.write_state(state)


def read_states_from_file(path: str) -> List[CompilerEnvState]:
    """Convenience helper to read all states from a file."""
    with open(path) as f:
        return list(CompilerEnvStateReader(f))
