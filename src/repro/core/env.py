"""The CompilerEnv Gym environment.

:class:`CompilerEnv` formulates a compiler optimization task as a Markov
Decision Process with the standard Gym ``reset``/``step`` interface, extended
with the compiler-specific features described in the paper: selectable and
lazily-computed observation and reward spaces, batched multi-action steps,
lightweight ``fork()`` deep copies, state serialization and replay validation,
and benchmark dataset management.
"""

import logging
import os
import time
from typing import Any, Callable, Iterable, List, Optional, Tuple, Type, Union

from repro.core.compiler_env_state import CompilerEnvState
from repro.core.datasets import Benchmark, Datasets
from repro.core.observation_view import ObservationView
from repro.core.registration import make, register, registered_env_ids  # noqa: F401 - re-export
from repro.core.reward_view import RewardView
from repro.core.service.compilation_session import CompilationSession
from repro.core.service.connection import ConnectionOpts, ServiceConnection
from repro.core.service.transport import InProcessTransport, SocketTransport
from repro.core.service.proto import (
    EndSessionRequest,
    ForkSessionRequest,
    StartSessionRequest,
    StepRequest,
)
from repro.core.service.runtime.compiler_gym_service import CompilerGymServiceRuntime
from repro.core.spaces.observation import ObservationSpaceSpec
from repro.core.spaces.reward import Reward
from repro.core.spaces.space import Space
from repro.errors import BenchmarkInitError, ServiceError, SessionNotFound, ValidationError

logger = logging.getLogger(__name__)


class CompilerEnv:
    """A compiler optimization task exposed through the Gym interface.

    Subclasses (``LlvmEnv``, ``GccEnv``, ``LoopToolEnv``) provide the
    compilation session type, the benchmark datasets, and the reward spaces;
    this class provides all the MDP mechanics.
    """

    metadata = {"render.modes": ["human", "ansi"]}

    def __init__(
        self,
        session_type: Type[CompilationSession],
        datasets: Datasets,
        rewards: Optional[List[Reward]] = None,
        benchmark: Optional[Union[str, Benchmark]] = None,
        observation_space: Optional[str] = None,
        reward_space: Optional[str] = None,
        action_space: Optional[str] = None,
        connection_opts: Optional[ConnectionOpts] = None,
        service_connection: Optional[ServiceConnection] = None,
        service_url: Optional[str] = None,
        service_token: Optional[str] = None,
        verify_ir: Optional[bool] = None,
        result_cache=None,
        chaos=None,
    ):
        self.session_type = session_type
        self.datasets = datasets
        self.connection_opts = connection_opts or ConnectionOpts()
        self.service_url = service_url
        self.service_token = service_token
        # Daemon-wide (benchmark, action-prefix) result memoization for the
        # in-process runtime: None enables a default-sized cache, False/0
        # disables, an int sets the byte budget, a ResultCache is shared
        # as-is. Remote daemons own their own cache (see `serve
        # --result-cache-mb`); the setting only applies when this env hosts
        # its runtime in-process.
        self.result_cache = result_cache
        # Deterministic fault injection: a FaultPlan (or an int seed) wraps
        # this env's transport in a ChaosTransport so scheduled faults —
        # refused connects, mid-frame cuts, lost replies, daemon kills —
        # fire at exact call indices. None (production) injects nothing.
        from repro.core.service.chaos import resolve_chaos

        self.chaos = resolve_chaos(chaos)
        # Verify-after-every-pass debug mode: the backend re-verifies the IR
        # after each applied action and fails the step on corruption. Off by
        # default (it adds a dominator-tree construction per function per
        # step); enable with make(..., verify_ir=True) or REPRO_VERIFY_IR=1.
        if verify_ir is None:
            verify_ir = os.environ.get("REPRO_VERIFY_IR", "") not in ("", "0", "false", "False")
        self.verify_ir = verify_ir
        self._custom_benchmarks = {}
        # URIs of Benchmark *objects* assigned by the user (rather than
        # resolved from the datasets). A remote daemon resolves benchmarks
        # from its own datasets and can never see these — reset() fails fast
        # on the combination instead of retrying an unresolvable URI.
        # _daemon_checked_uris memoizes the (successful) probes so the reset
        # hot path resolves each URI at most once.
        self._user_benchmark_uris = set()
        self._daemon_checked_uris = set()

        if service_connection is None:
            if service_url is not None:
                # Attach to a running compiler service daemon (`repro serve`)
                # instead of hosting a runtime in-process: sessions live on
                # the daemon and survive this client.
                transport = self._make_socket_transport()
            else:
                transport = InProcessTransport(self._make_runtime)
            if self.chaos is not None:
                from repro.core.service.chaos import ChaosTransport

                transport = ChaosTransport(transport, self.chaos)
            self.service = ServiceConnection(transport, opts=self.connection_opts)
            self._owns_service = True
        else:
            self.service = service_connection
            self._owns_service = False

        spaces = self.service.spaces
        self._action_space_name = action_space
        self.action_spaces: List[Space] = [msg.space for msg in spaces.action_spaces]
        self.action_space: Space = self._resolve_action_space(action_space)
        self.observation_space_specs: List[ObservationSpaceSpec] = [
            self._spec_from_message(i, msg) for i, msg in enumerate(spaces.observation_spaces)
        ]

        self.observation = ObservationView(self._raw_observations, self.observation_space_specs)
        self.reward = RewardView(rewards or [], self.observation)
        self.reward_range: Tuple[float, float] = (float("-inf"), float("inf"))

        # Episode state.
        self._closed = False
        self._session_id: Optional[int] = None
        self._benchmark_in_use: Optional[Benchmark] = None
        self._next_benchmark: Optional[Benchmark] = None
        self.actions: List[Any] = []
        self.episode_reward: Optional[float] = None
        self.episode_start_time: float = time.time()
        self.reward_update_count = 0
        self.version = "1.0.0"

        self._observation_space_spec: Optional[ObservationSpaceSpec] = None
        self._reward_space: Optional[Reward] = None

        if benchmark is not None:
            self.benchmark = benchmark
        if observation_space is not None:
            self.observation_space = observation_space
        if reward_space is not None:
            self.reward_space = reward_space

    # -- construction helpers ---------------------------------------------

    def _make_runtime(self) -> CompilerGymServiceRuntime:
        return CompilerGymServiceRuntime(
            session_type=self.session_type,
            benchmark_resolver=self._resolve_benchmark,
            result_cache=self.result_cache,
        )

    def _make_socket_transport(self) -> SocketTransport:
        """A daemon connection for this environment's ``service_url``.

        The socket-level timeout must exceed the connection's call deadline:
        a call that comes back between the two is classified as a slow
        *success* (recorded, not retried) rather than a transport failure —
        retrying an applied step() would re-execute it on the daemon.
        """
        deadline = self.connection_opts.rpc_call_max_seconds
        return SocketTransport(
            self.service_url,
            timeout=deadline + max(deadline, 5.0),
            auth_token=self.service_token,
        )

    def _resolve_benchmark(self, uri: str) -> Benchmark:
        if uri in self._custom_benchmarks:
            return self._custom_benchmarks[uri]
        return self.datasets.benchmark(uri)

    def _resolve_action_space(self, name: Optional[str]) -> Space:
        if name is None:
            return self.action_spaces[0]
        for space in self.action_spaces:
            if space.name == name:
                return space
        raise LookupError(f"Unknown action space: {name!r}")

    @staticmethod
    def _spec_from_message(index: int, msg) -> ObservationSpaceSpec:
        space = msg.space
        if isinstance(space, ObservationSpaceSpec):
            return space
        return ObservationSpaceSpec(
            id=msg.name,
            index=index,
            space=space,
            deterministic=msg.deterministic,
            platform_dependent=msg.platform_dependent,
            default_value=msg.default_observation,
        )

    # -- properties ---------------------------------------------------------

    @property
    def benchmark(self) -> Optional[Benchmark]:
        """The benchmark being optimized.

        Setting this property does not take effect until the next
        :meth:`reset` call, matching the upstream semantics.
        """
        return self._next_benchmark or self._benchmark_in_use

    @benchmark.setter
    def benchmark(self, benchmark: Union[str, Benchmark]) -> None:
        if isinstance(benchmark, Benchmark):
            self._custom_benchmarks[str(benchmark.uri)] = benchmark
            self._user_benchmark_uris.add(str(benchmark.uri))
            self._next_benchmark = benchmark
        else:
            self._next_benchmark = self.datasets.benchmark(str(benchmark))

    @property
    def observation_space_spec(self) -> Optional[ObservationSpaceSpec]:
        return self._observation_space_spec

    @property
    def observation_space(self) -> Optional[Space]:
        """The default observation space returned by :meth:`step`."""
        if self._observation_space_spec is None:
            return None
        return self._observation_space_spec.space

    @observation_space.setter
    def observation_space(self, space: Optional[Union[str, ObservationSpaceSpec]]) -> None:
        if space is None:
            self._observation_space_spec = None
        elif isinstance(space, ObservationSpaceSpec):
            self._observation_space_spec = space
        else:
            self._observation_space_spec = self.observation.spaces[space]

    @property
    def reward_space(self) -> Optional[Reward]:
        """The default reward space used by :meth:`step`."""
        return self._reward_space

    @reward_space.setter
    def reward_space(self, space: Optional[Union[str, Reward]]) -> None:
        if space is None:
            self._reward_space = None
            self.reward_range = (float("-inf"), float("inf"))
            return
        if isinstance(space, Reward):
            self.reward.add_space(space)
            self._reward_space = space
        else:
            self._reward_space = self.reward.spaces[space]
        self.reward_range = self._reward_space.range

    @property
    def in_episode(self) -> bool:
        """Whether a compilation session is active."""
        return self._session_id is not None

    @property
    def episode_walltime(self) -> float:
        return time.time() - self.episode_start_time

    @property
    def compiler_version(self) -> str:
        return self.session_type.compiler_version

    @property
    def state(self) -> CompilerEnvState:
        """The current environment state as a serializable record."""
        return CompilerEnvState(
            benchmark=str(self.benchmark.uri) if self.benchmark else "",
            commandline=self.action_space_to_string(self.actions),
            walltime=self.episode_walltime,
            reward=self.episode_reward,
        )

    def action_space_to_string(self, actions: Iterable[Any]) -> str:
        """Render a sequence of actions as a human-readable string."""
        actions = list(actions)
        to_commandline = getattr(self.action_space, "to_commandline", None)
        if to_commandline is not None:
            return to_commandline(actions)
        to_string = getattr(self.action_space, "to_string", None)
        if to_string is not None and actions:
            return to_string(actions)
        return " ".join(str(a) for a in actions)

    def commandline(self) -> str:
        """The command line equivalent to the current action sequence."""
        return self.action_space_to_string(self.actions)

    # -- benchmark observation plumbing ------------------------------------

    def _raw_observations(self, space_names: List[str]) -> List[Any]:
        """Fetch raw observations of the current state from the service."""
        if self._session_id is None:
            raise SessionNotFound("Cannot compute observations before reset()")
        reply = self.service.step(
            StepRequest(
                session_id=self._session_id, actions=[], observation_space_names=space_names
            )
        )
        return [event.value() for event in reply.observations]

    # -- Gym API -------------------------------------------------------------

    def reset(
        self,
        benchmark: Optional[Union[str, Benchmark]] = None,
        action_space: Optional[str] = None,
        observation_space: Optional[Union[str, ObservationSpaceSpec]] = None,
        reward_space: Optional[Union[str, Reward]] = None,
    ) -> Optional[Any]:
        """Reset the environment, starting a new compilation session.

        Returns the initial observation if a default observation space is set.
        """
        if observation_space is not None:
            self.observation_space = observation_space
        if reward_space is not None:
            self.reward_space = reward_space
        if action_space is not None:
            self.action_space = self._resolve_action_space(action_space)
        if benchmark is not None:
            self.benchmark = benchmark

        if self._session_id is not None:
            try:
                self.service.end_session(EndSessionRequest(session_id=self._session_id))
            except (ServiceError, SessionNotFound):
                pass
            self._session_id = None

        if self._next_benchmark is not None:
            self._benchmark_in_use = self._next_benchmark
            self._next_benchmark = None
        if self._benchmark_in_use is None:
            self._benchmark_in_use = self.datasets.random_benchmark()
            if isinstance(self._benchmark_in_use, Benchmark):
                self._custom_benchmarks[str(self._benchmark_in_use.uri)] = self._benchmark_in_use

        # Custom benchmark objects must be visible to the service resolver.
        if isinstance(self._benchmark_in_use, Benchmark):
            self._custom_benchmarks.setdefault(
                str(self._benchmark_in_use.uri), self._benchmark_in_use
            )

        # A remote daemon resolves benchmarks from its own datasets; a
        # user-supplied Benchmark object only exists in this process. Fail
        # fast with a clear error unless the URI is independently resolvable
        # — and when it is, warn: the daemon compiles *its* dataset entry,
        # not the local object. Probed once per URI, not per reset.
        if (
            self.service_url is not None
            and str(self._benchmark_in_use.uri) in self._user_benchmark_uris
            and str(self._benchmark_in_use.uri) not in self._daemon_checked_uris
        ):
            uri = str(self._benchmark_in_use.uri)
            try:
                self.datasets.benchmark(uri)
            except Exception as error:  # noqa: BLE001 - translated below
                raise BenchmarkInitError(
                    f"Custom benchmark {uri} cannot be used over "
                    f"service_url={self.service_url!r}: benchmarks are "
                    "resolved by the daemon from its own datasets, which do "
                    "not contain this client-side Benchmark object. Use a "
                    "dataset URI, or host the service in-process"
                ) from error
            self._daemon_checked_uris.add(uri)
            logger.warning(
                "Benchmark %s was assigned as a client-side object but its "
                "URI also resolves from the datasets; the remote daemon will "
                "compile its own dataset entry, not the local object",
                uri,
            )

        action_space_index = self.action_spaces.index(self.action_space)
        observation_names = (
            [self.observation.raw_space_id(self._observation_space_spec.id)]
            if self._observation_space_spec
            else []
        )
        try:
            reply = self.service.start_session(
                StartSessionRequest(
                    benchmark_uri=str(self._benchmark_in_use.uri),
                    action_space=action_space_index,
                    observation_space_names=observation_names,
                )
            )
        except LookupError as error:
            raise BenchmarkInitError(str(error)) from error

        self._closed = False
        self._session_id = reply.session_id
        if self.verify_ir:
            self.service.handle_session_parameter(
                self._session_id, "llvm.set_verify_ir", "1"
            )
        self.actions = []
        self.episode_reward = 0 if self._reward_space else None
        self.episode_start_time = time.time()
        self.reward.reset(str(self._benchmark_in_use.uri))
        if self._reward_space:
            # Prime the reward baseline on the initial state.
            self.reward[self._reward_space.name]

        if self._observation_space_spec and reply.observations:
            return self._observation_space_spec.translate(reply.observations[0].value())
        if self._observation_space_spec:
            return self.observation[self._observation_space_spec.id]
        return None

    def step(
        self,
        action: Any,
        observation_spaces: Optional[List[Union[str, ObservationSpaceSpec]]] = None,
        reward_spaces: Optional[List[Union[str, Reward]]] = None,
    ) -> Tuple[Any, Any, bool, dict]:
        """Apply a single action. See :meth:`multistep` for the batched form."""
        return self.multistep(
            [action], observation_spaces=observation_spaces, reward_spaces=reward_spaces
        )

    def multistep(
        self,
        actions: Iterable[Any],
        observation_spaces: Optional[List[Union[str, ObservationSpaceSpec]]] = None,
        reward_spaces: Optional[List[Union[str, Reward]]] = None,
    ) -> Tuple[Any, Any, bool, dict]:
        """Apply a batch of actions in a single service call.

        Returns ``(observation, reward, done, info)``. When explicit
        ``observation_spaces``/``reward_spaces`` arguments are given, the
        observation and reward elements are lists with one entry per requested
        space; otherwise they use the environment's default spaces.

        The request/apply phases are split into :meth:`_prepare_multistep`
        and :meth:`_finish_multistep` so a vectorized pool can prepare many
        environments' requests, carry them all in one batched
        ``step_sessions`` RPC, and finish each environment client-side.
        """
        request, context = self._prepare_multistep(
            actions, observation_spaces, reward_spaces
        )
        try:
            reply = self.service.step(request)
        except (ServiceError, SessionNotFound) as error:
            return self._finish_multistep_error(error, context)
        return self._finish_multistep(reply, context)

    def _prepare_multistep(
        self,
        actions: Iterable[Any],
        observation_spaces: Optional[List[Union[str, ObservationSpaceSpec]]] = None,
        reward_spaces: Optional[List[Union[str, Reward]]] = None,
    ) -> Tuple[StepRequest, dict]:
        """Build the service request (and client-side context) for one step."""
        if self._session_id is None:
            if self._closed:
                raise SessionNotFound(
                    "Cannot call step() on a closed environment: "
                    "the compilation session has ended"
                )
            raise SessionNotFound("Cannot call step() before reset()")
        actions = list(actions)

        explicit_observations = observation_spaces is not None
        explicit_rewards = reward_spaces is not None
        observation_specs = self._coerce_observation_spaces(observation_spaces)
        reward_space_objects = self._coerce_reward_spaces(reward_spaces)

        # Determine the full set of backend observations to request: the user
        # facing observation spaces plus everything the rewards depend on.
        request_names: List[str] = []
        for spec in observation_specs:
            name = self.observation.raw_space_id(spec.id)
            if name not in request_names:
                request_names.append(name)
        for reward in reward_space_objects:
            for name in reward.observation_spaces:
                if name not in request_names:
                    request_names.append(name)

        request = StepRequest(
            session_id=self._session_id,
            actions=actions,
            observation_space_names=request_names,
        )
        context = {
            "actions": actions,
            "explicit_observations": explicit_observations,
            "explicit_rewards": explicit_rewards,
            "observation_specs": observation_specs,
            "reward_space_objects": reward_space_objects,
            "request_names": request_names,
        }
        return request, context

    def _finish_multistep_error(self, error: BaseException, context: dict) -> Tuple[Any, Any, bool, dict]:
        """Terminate the episode on a failed step (fault-tolerance path).

        A crashed or errored backend terminates the episode with the reward
        space's error default rather than propagating an exception into user
        code.
        """
        info = {
            "action_had_no_effect": False,
            "new_action_space": False,
            "error_details": str(error),
        }
        observation = [spec.default_value for spec in context["observation_specs"]]
        rewards = [
            reward.reward_on_error(self.episode_reward or 0)
            for reward in context["reward_space_objects"]
        ]
        self._session_id = None
        return (
            self._unpack(observation, context["explicit_observations"]),
            self._unpack(rewards, context["explicit_rewards"]),
            True,
            info,
        )

    def _finish_multistep(self, reply, context: dict) -> Tuple[Any, Any, bool, dict]:
        """Apply a successful step reply to this environment's state."""
        actions = context["actions"]
        explicit_rewards = context["explicit_rewards"]
        reward_space_objects = context["reward_space_objects"]
        request_names = context["request_names"]
        info = {
            "action_had_no_effect": reply.action_had_no_effect,
            "new_action_space": False,
        }

        self.actions += actions
        done = reply.end_of_session
        if reply.new_action_space is not None:
            self.action_space = reply.new_action_space.space
            info["new_action_space"] = True

        raw_values = {name: event.value() for name, event in zip(request_names, reply.observations)}

        observation = [
            spec.translate(raw_values[self.observation.raw_space_id(spec.id)])
            for spec in context["observation_specs"]
        ]
        rewards = []
        for reward in reward_space_objects:
            self.reward._ensure_reset(reward)
            reward_observations = [raw_values[name] for name in reward.observation_spaces]
            value = reward.update(actions, reward_observations, self.observation)
            self.reward_update_count += 1
            rewards.append(value)

        if self._reward_space and not explicit_rewards and rewards:
            self.episode_reward = (self.episode_reward or 0) + rewards[0]
        elif self._reward_space and explicit_rewards:
            for reward, value in zip(reward_space_objects, rewards):
                if reward.name == self._reward_space.name:
                    self.episode_reward = (self.episode_reward or 0) + value

        return (
            self._unpack(observation, context["explicit_observations"]),
            self._unpack(rewards, context["explicit_rewards"]),
            done,
            info,
        )

    @staticmethod
    def _unpack(values: List[Any], explicit: bool) -> Any:
        if explicit:
            return values
        if not values:
            return None
        return values[0]

    def _coerce_observation_spaces(
        self, spaces: Optional[List[Union[str, ObservationSpaceSpec]]]
    ) -> List[ObservationSpaceSpec]:
        if spaces is None:
            return [self._observation_space_spec] if self._observation_space_spec else []
        return [
            space if isinstance(space, ObservationSpaceSpec) else self.observation.spaces[space]
            for space in spaces
        ]

    def _coerce_reward_spaces(self, spaces: Optional[List[Union[str, Reward]]]) -> List[Reward]:
        if spaces is None:
            return [self._reward_space] if self._reward_space else []
        return [
            space if isinstance(space, Reward) else self.reward.spaces[space] for space in spaces
        ]

    # -- compiler-specific API extensions -------------------------------------

    def fork(self) -> "CompilerEnv":
        """Create an independent deep copy of this environment.

        The fork shares the service connection (and therefore the benchmark
        cache) but has its own compilation session whose state is a copy of
        this environment's. Forking is much cheaper than replaying the action
        history, enabling efficient backtracking searches.
        """
        import copy

        if self._session_id is None:
            self.reset()
        reply = self.service.fork_session(ForkSessionRequest(session_id=self._session_id))
        forked = type(self).__new__(type(self))
        forked.__dict__.update(
            {
                key: value
                for key, value in self.__dict__.items()
                if key not in ("actions", "_custom_benchmarks", "observation", "reward")
            }
        )
        forked._custom_benchmarks = dict(self._custom_benchmarks)
        forked._user_benchmark_uris = set(self._user_benchmark_uris)
        forked._daemon_checked_uris = set(self._daemon_checked_uris)
        # Forks share the service connection; reference counting ensures the
        # connection stays alive until the last sharer is closed. The socket
        # transport multiplexes concurrent calls by request id, so forks
        # driven in parallel with their parent (pool workers) overlap their
        # RPCs on the shared connection too.
        forked._owns_service = True
        self.service.acquire()
        forked._session_id = reply.session_id
        forked.actions = list(self.actions)
        forked.episode_reward = self.episode_reward
        forked.episode_start_time = self.episode_start_time
        # Rebuild the observation/reward views so that lazy observation
        # fetches go through the forked session, and so that reward-space
        # internal state (e.g. the previous metric value) is not shared with
        # the parent environment.
        forked.observation = ObservationView(
            forked._raw_observations, self.observation_space_specs
        )
        forked_rewards = [copy.deepcopy(reward) for reward in self.reward.spaces.values()]
        forked.reward = RewardView(forked_rewards, forked.observation)
        forked.reward._benchmark = self.reward._benchmark
        forked.reward._reset_spaces = set(self.reward._reset_spaces)
        if self._observation_space_spec is not None:
            forked._observation_space_spec = forked.observation.spaces[
                self._observation_space_spec.id
            ]
        if self._reward_space is not None:
            forked._reward_space = forked.reward.spaces[self._reward_space.name]
        return forked

    def use_dedicated_connection(self) -> bool:
        """Swap a shared daemon connection for a private one. Daemon-only.

        The multiplexed socket transport lets any number of concurrent
        callers share one connection, so pools no longer need this for
        parallelism; it remains for callers that want per-environment
        connection isolation (independent failure domains, per-environment
        accounting, the benchmark harness's one-RPC-per-worker baseline).
        The compilation session lives on the daemon and is connection-
        agnostic, so only the transport changes. No-op (returns False) for
        in-process environments, where the shared resource is the runtime
        itself. Must not be called with RPCs in flight on this environment.
        """
        if self.service_url is None:
            return False
        shared = self.service
        transport = self._make_socket_transport()
        if self.chaos is not None:
            from repro.core.service.chaos import ChaosTransport

            transport = ChaosTransport(transport, self.chaos)
        self.service = ServiceConnection(transport, opts=self.connection_opts)
        self._owns_service = True
        shared.release()
        return True

    def apply(self, state: CompilerEnvState) -> None:
        """Replay a serialized state onto this environment."""
        if not self.in_episode or str(self.benchmark.uri) != state.benchmark:
            self.reset(benchmark=state.benchmark)
        actions = self._actions_from_string(state.commandline)
        if actions:
            self.multistep(actions)

    def _actions_from_string(self, commandline: str) -> List[int]:
        from_commandline = getattr(self.action_space, "from_commandline", None)
        if from_commandline is not None:
            return from_commandline(commandline)
        from_string = getattr(self.action_space, "from_string", None)
        if from_string is not None:
            return from_string(commandline)
        return [int(token) for token in commandline.split()]

    def validate(self, state: Optional[CompilerEnvState] = None) -> "ValidationResult":
        """Validate a state: replay it and check reward reproducibility and
        benchmark semantics."""
        from repro.core.validation import validate_state  # Deferred to avoid import cycle.

        return validate_state(self, state or self.state)

    def render(self, mode: str = "human") -> Optional[str]:
        """Render the current state using the default observation space."""
        if self._observation_space_spec is None:
            raise ValueError("Cannot render with no observation space selected")
        value = self.observation[self._observation_space_spec.id]
        text = self._observation_space_spec.to_string(value)
        if mode == "human":
            print(text)
            return None
        return text

    def close(self) -> None:
        """End the current session and, if owned, shut down the service.

        Closing is idempotent and exception-safe: calling it on an
        already-closed environment, or on an environment whose construction
        failed partway (e.g. from ``__del__``), is a no-op. Forked workers
        share the service via reference counting, so any close order is safe.
        """
        self._closed = True
        session_id = getattr(self, "_session_id", None)
        self._session_id = None
        service = getattr(self, "service", None)
        if session_id is not None and service is not None:
            try:
                service.end_session(EndSessionRequest(session_id=session_id))
            except (ServiceError, SessionNotFound):
                pass
        if getattr(self, "_owns_service", False):
            self._owns_service = False
            if service is not None:
                try:
                    service.release()
                except ServiceError:
                    pass

    def __enter__(self) -> "CompilerEnv":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self):
        try:
            self.close()
        except Exception:  # noqa: BLE001 - interpreter shutdown
            pass

    def __repr__(self) -> str:
        benchmark = str(self.benchmark.uri) if self.benchmark else None
        return f"{type(self).__name__}(benchmark={benchmark})"
