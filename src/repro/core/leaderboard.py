"""Leaderboard aggregation.

The public CompilerGym leaderboards aggregate submitted
:class:`CompilerEnvState` results per benchmark and rank submissions by
geometric-mean reward and total walltime. This module reproduces the
aggregation, ranking, and report formatting locally.
"""

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.core.compiler_env_state import CompilerEnvState
from repro.util.statistics import arithmetic_mean, geometric_mean


@dataclass
class LeaderboardEntry:
    """A single submission: one state per benchmark."""

    name: str
    states: List[CompilerEnvState] = field(default_factory=list)

    @property
    def benchmarks(self) -> List[str]:
        return [state.benchmark for state in self.states]

    @property
    def walltime(self) -> float:
        return sum(state.walltime for state in self.states)

    @property
    def geomean_reward(self) -> float:
        return geometric_mean([state.reward for state in self.states if state.has_reward])

    @property
    def mean_reward(self) -> float:
        return arithmetic_mean([state.reward for state in self.states if state.has_reward])


class Leaderboard:
    """A named leaderboard for a fixed task (e.g. LLVM instcount reduction on cBench)."""

    def __init__(self, task: str, benchmarks: Optional[List[str]] = None):
        self.task = task
        self.benchmarks = list(benchmarks or [])
        self.entries: Dict[str, LeaderboardEntry] = {}

    def submit(self, name: str, states: List[CompilerEnvState]) -> LeaderboardEntry:
        """Add or replace a submission.

        If the leaderboard declares a benchmark set, the submission must cover
        every benchmark in it.
        """
        if self.benchmarks:
            submitted = {state.benchmark for state in states}
            missing = set(self.benchmarks) - submitted
            if missing:
                raise ValueError(
                    f"Submission {name!r} is missing results for benchmarks: {sorted(missing)}"
                )
        entry = LeaderboardEntry(name=name, states=list(states))
        self.entries[name] = entry
        return entry

    def ranking(self) -> List[LeaderboardEntry]:
        """Entries ranked by geomean reward (descending), ties broken by walltime."""
        return sorted(
            self.entries.values(), key=lambda e: (-e.geomean_reward, e.walltime, e.name)
        )

    def to_markdown(self) -> str:
        """Render the leaderboard as a markdown table."""
        lines = [
            f"# Leaderboard: {self.task}",
            "",
            "| Rank | Submission | Geomean reward | Mean reward | Walltime (s) |",
            "| --- | --- | --- | --- | --- |",
        ]
        for rank, entry in enumerate(self.ranking(), start=1):
            lines.append(
                f"| {rank} | {entry.name} | {entry.geomean_reward:.4f} "
                f"| {entry.mean_reward:.4f} | {entry.walltime:.2f} |"
            )
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.entries)
