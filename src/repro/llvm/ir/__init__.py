"""The simulated LLVM intermediate representation.

A small, typed, SSA-style IR with modules, functions, basic blocks and
instructions; a builder API; a text printer and parser; a verifier; and the
control-flow analyses (CFG, dominators, natural loops) that the optimization
passes rely on.
"""

from repro.llvm.ir.types import (
    DOUBLE,
    FLOAT,
    I1,
    I8,
    I32,
    I64,
    LABEL,
    PTR,
    VOID,
    Type,
)
from repro.llvm.ir.values import Argument, Constant, GlobalVariable, Value
from repro.llvm.ir.instructions import (
    BINARY_OPCODES,
    CAST_OPCODES,
    COMPARE_OPCODES,
    TERMINATOR_OPCODES,
    Instruction,
)
from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.module import Module
from repro.llvm.ir.builder import IRBuilder
from repro.llvm.ir.printer import print_module
from repro.llvm.ir.parser import parse_module
from repro.llvm.ir.verifier import verify_module, VerificationError

__all__ = [
    "Argument",
    "BasicBlock",
    "BINARY_OPCODES",
    "CAST_OPCODES",
    "COMPARE_OPCODES",
    "Constant",
    "DOUBLE",
    "FLOAT",
    "Function",
    "GlobalVariable",
    "I1",
    "I32",
    "I64",
    "I8",
    "IRBuilder",
    "Instruction",
    "LABEL",
    "Module",
    "PTR",
    "parse_module",
    "print_module",
    "TERMINATOR_OPCODES",
    "Type",
    "VOID",
    "VerificationError",
    "Value",
    "verify_module",
]
