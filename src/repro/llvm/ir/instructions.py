"""IR instructions.

Instructions are values: the result of an ``add`` can be used as an operand
of later instructions. Control flow, memory, comparison, cast, and call
instructions follow LLVM's shape closely enough that the optimization passes
read like their LLVM counterparts.
"""

from typing import Dict, List, Optional

from repro.llvm.ir.types import I1, I32, VOID, Type
from repro.llvm.ir.values import Value

# Opcode categories. These drive the generic logic in passes, the printer,
# the verifier, and the feature extractors.
BINARY_OPCODES = frozenset(
    {
        "add", "sub", "mul", "sdiv", "udiv", "srem", "urem",
        "and", "or", "xor", "shl", "lshr", "ashr",
        "fadd", "fsub", "fmul", "fdiv", "frem",
    }
)
COMPARE_OPCODES = frozenset({"icmp", "fcmp"})
CAST_OPCODES = frozenset(
    {"zext", "sext", "trunc", "bitcast", "ptrtoint", "inttoptr", "sitofp", "fptosi", "fpext", "fptrunc"}
)
MEMORY_OPCODES = frozenset({"alloca", "load", "store", "getelementptr"})
TERMINATOR_OPCODES = frozenset({"br", "ret", "switch", "unreachable"})
OTHER_OPCODES = frozenset({"phi", "call", "select"})

ALL_OPCODES = (
    BINARY_OPCODES
    | COMPARE_OPCODES
    | CAST_OPCODES
    | MEMORY_OPCODES
    | TERMINATOR_OPCODES
    | OTHER_OPCODES
)

# Integer comparison predicates.
ICMP_PREDICATES = ("eq", "ne", "slt", "sle", "sgt", "sge", "ult", "ule", "ugt", "uge")
FCMP_PREDICATES = ("oeq", "one", "olt", "ole", "ogt", "oge")

# Binary operators that commute, used by reassociation and GVN value numbering.
COMMUTATIVE_OPCODES = frozenset({"add", "mul", "and", "or", "xor", "fadd", "fmul"})


class Instruction(Value):
    """A single IR instruction.

    Attributes:
        opcode: The operation, e.g. ``"add"`` or ``"br"``.
        operands: The operand values. For ``phi`` the list interleaves
            ``[value, block, value, block, ...]``; for conditional ``br`` it is
            ``[condition, true_block, false_block]``; for ``switch`` it is
            ``[value, default_block, const, block, const, block, ...]``.
        attrs: Opcode-specific attributes such as the ``icmp`` predicate, the
            ``call`` callee name, or the ``alloca`` element type.
        parent: The :class:`BasicBlock` containing the instruction.
    """

    def __init__(
        self,
        opcode: str,
        operands: Optional[List[Value]] = None,
        type: Type = VOID,  # noqa: A002
        name: str = "",
        attrs: Optional[Dict] = None,
    ):
        if opcode not in ALL_OPCODES:
            raise ValueError(f"Unknown opcode: {opcode!r}")
        super().__init__(type, name=name)
        self.opcode = opcode
        self.operands: List[Value] = list(operands or [])
        self.attrs: Dict = dict(attrs or {})
        self.parent = None  # Set when appended to a BasicBlock.

    # -- classification ----------------------------------------------------

    @property
    def is_terminator(self) -> bool:
        return self.opcode in TERMINATOR_OPCODES

    @property
    def is_binary(self) -> bool:
        return self.opcode in BINARY_OPCODES

    @property
    def is_compare(self) -> bool:
        return self.opcode in COMPARE_OPCODES

    @property
    def is_cast(self) -> bool:
        return self.opcode in CAST_OPCODES

    @property
    def is_memory(self) -> bool:
        return self.opcode in MEMORY_OPCODES

    @property
    def is_commutative(self) -> bool:
        return self.opcode in COMMUTATIVE_OPCODES

    @property
    def has_result(self) -> bool:
        """Whether the instruction produces an SSA value."""
        return not self.type.is_void

    def has_side_effects(self) -> bool:
        """Conservative side-effect check used by dead-code elimination."""
        if self.opcode in ("store", "ret", "br", "switch", "unreachable"):
            return True
        if self.opcode == "call":
            return not self.attrs.get("pure", False)
        return False

    # -- control-flow helpers -----------------------------------------------

    def successors(self) -> List["Value"]:
        """Successor basic blocks of a terminator instruction."""
        if self.opcode == "br":
            if len(self.operands) == 1:
                return [self.operands[0]]
            return [self.operands[1], self.operands[2]]
        if self.opcode == "switch":
            return [self.operands[1]] + [self.operands[i] for i in range(3, len(self.operands), 2)]
        return []

    def replace_successor(self, old, new) -> None:
        """Rewrite a successor block reference of a terminator."""
        for i, operand in enumerate(self.operands):
            if operand is old and self._operand_is_block(i):
                self.operands[i] = new

    def _operand_is_block(self, index: int) -> bool:
        if self.opcode == "br":
            return index >= 1 or len(self.operands) == 1
        if self.opcode == "switch":
            return index >= 1 and (index == 1 or (index - 2) % 2 == 1)
        if self.opcode == "phi":
            return index % 2 == 1
        return False

    # -- phi helpers ---------------------------------------------------------

    def phi_incoming(self):
        """Yield ``(value, block)`` pairs of a phi instruction."""
        assert self.opcode == "phi"
        for i in range(0, len(self.operands), 2):
            yield self.operands[i], self.operands[i + 1]

    def set_phi_incoming(self, pairs) -> None:
        assert self.opcode == "phi"
        self.operands = []
        for value, block in pairs:
            self.operands.extend([value, block])

    # -- misc ---------------------------------------------------------------

    def value_operands(self) -> List[Value]:
        """Operands that are SSA values (excludes block references)."""
        return [
            operand
            for i, operand in enumerate(self.operands)
            if not self._operand_is_block(i)
        ]

    def clone(self) -> "Instruction":
        """Shallow copy: same operand references, no parent."""
        return Instruction(
            opcode=self.opcode,
            operands=list(self.operands),
            type=self.type,
            name=self.name,
            attrs=dict(self.attrs),
        )

    def __repr__(self) -> str:
        result = f"%{self.name} = " if self.has_result and self.name else ""
        return f"<{result}{self.opcode}>"
