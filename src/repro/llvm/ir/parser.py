"""Textual IR parser.

Parses the subset of LLVM-style textual IR produced by
:mod:`repro.llvm.ir.printer`. Used for round-trip testing, for compiling
user-supplied "source" into benchmarks, and by the command-line tools.
"""

import re
from typing import Dict, List, Optional, Tuple

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import I1, I32, PTR, VOID, Type, parse_type
from repro.llvm.ir.values import Constant, GlobalVariable, UndefValue, Value


class ParseError(ValueError):
    """The IR text could not be parsed."""


_DEFINE_RE = re.compile(r"^define\s+(\S+)\s+@([\w.$-]+)\((.*)\)\s*(.*)\{$")
_DECLARE_RE = re.compile(r"^declare\s+(\S+)\s+@([\w.$-]+)\((.*)\)\s*(.*)$")
_GLOBAL_RE = re.compile(
    r"^@([\w.$-]+)\s*=\s*(global|constant)\s+(?:\[(\d+)\s+x\s+(\S+)\]|(\S+))\s+(.+)$"
)
_LABEL_RE = re.compile(r"^([\w.$-]+):$")
_RESULT_RE = re.compile(r"^%([\w.$-]+)\s*=\s*(.*)$")
_CALL_RE = re.compile(r"^call\s+(\S+)\s+@([\w.$-]+)\((.*)\)(\s*;\s*pure)?$")


def _split_commas(text: str) -> List[str]:
    """Split on commas that are not inside brackets or parentheses."""
    parts, depth, current = [], 0, []
    for char in text:
        if char in "([":
            depth += 1
        elif char in ")]":
            depth -= 1
        if char == "," and depth == 0:
            parts.append("".join(current).strip())
            current = []
        else:
            current.append(char)
    tail = "".join(current).strip()
    if tail:
        parts.append(tail)
    return parts


def _parse_number(token: str, type: Type):  # noqa: A002
    if type.is_float:
        return float(token)
    return int(token)


class _FunctionParser:
    """Parses the body of one function with deferred operand resolution."""

    def __init__(self, module: Module, function: Function):
        self.module = module
        self.function = function
        self.values: Dict[str, Value] = {arg.name: arg for arg in function.args}
        self.blocks: Dict[str, BasicBlock] = {}
        # (instruction, [(ref, type), ...]) pairs awaiting operand resolution.
        self.pending: List[Tuple[Instruction, List[Tuple[str, Type]]]] = []

    def block(self, name: str) -> BasicBlock:
        if name not in self.blocks:
            block = BasicBlock(name)
            self.blocks[name] = block
        return self.blocks[name]

    def resolve(self, ref: str, type: Type) -> Value:  # noqa: A002
        if type.name == "label":
            return self.block(ref.lstrip("%"))
        if ref.startswith("%"):
            name = ref[1:]
            if name not in self.values:
                raise ParseError(f"Use of undefined value %{name} in @{self.function.name}")
            return self.values[name]
        if ref.startswith("@"):
            name = ref[1:]
            if name in self.module.globals:
                return self.module.globals[name]
            if name in self.module.functions:
                return self.module.functions[name]
            raise ParseError(f"Use of undefined global @{name}")
        if ref == "undef":
            return UndefValue(type)
        try:
            return Constant(type, _parse_number(ref, type))
        except ValueError as error:
            raise ParseError(f"Cannot parse operand {ref!r}") from error

    # -- instruction parsing -------------------------------------------------

    def parse_instruction(self, line: str, block: BasicBlock) -> None:
        name = ""
        body = line
        match = _RESULT_RE.match(line)
        if match:
            name, body = match.group(1), match.group(2)
        inst, refs = self._parse_body(body, name)
        block.append(inst)
        if inst.name:
            self.values[inst.name] = inst
        self.pending.append((inst, refs))

    def _parse_body(self, body: str, name: str) -> Tuple[Instruction, List[Tuple[str, Type]]]:
        tokens = body.split(None, 1)
        opcode = tokens[0]
        rest = tokens[1] if len(tokens) > 1 else ""

        from repro.llvm.ir.instructions import (
            BINARY_OPCODES,
            CAST_OPCODES,
            COMPARE_OPCODES,
        )

        if opcode in BINARY_OPCODES:
            type_token, operands = rest.split(None, 1)
            type = parse_type(type_token)  # noqa: A002
            lhs, rhs = _split_commas(operands)
            return Instruction(opcode, type=type, name=name), [(lhs, type), (rhs, type)]

        if opcode in COMPARE_OPCODES:
            predicate, type_token, operands = rest.split(None, 2)
            type = parse_type(type_token)  # noqa: A002
            lhs, rhs = _split_commas(operands)
            return (
                Instruction(opcode, type=I1, name=name, attrs={"predicate": predicate}),
                [(lhs, type), (rhs, type)],
            )

        if opcode in CAST_OPCODES:
            match = re.match(r"^(\S+)\s+(\S+)\s+to\s+(\S+)$", rest)
            if not match:
                raise ParseError(f"Malformed cast: {body!r}")
            from_type = parse_type(match.group(1))
            to_type = parse_type(match.group(3))
            return Instruction(opcode, type=to_type, name=name), [(match.group(2), from_type)]

        if opcode == "alloca":
            parts = _split_commas(rest)
            element_type = parse_type(parts[0])
            refs: List[Tuple[str, Type]] = []
            if len(parts) > 1:
                size_type, size_ref = parts[1].split()
                refs.append((size_ref, parse_type(size_type)))
            return (
                Instruction("alloca", type=PTR, name=name, attrs={"element_type": element_type}),
                refs,
            )

        if opcode == "load":
            parts = _split_commas(rest)
            loaded_type = parse_type(parts[0])
            pointer_ref = parts[1].split()[1]
            return Instruction("load", type=loaded_type, name=name), [(pointer_ref, PTR)]

        if opcode == "store":
            parts = _split_commas(rest)
            value_type_token, value_ref = parts[0].split()
            pointer_ref = parts[1].split()[1]
            return (
                Instruction("store", type=VOID),
                [(value_ref, parse_type(value_type_token)), (pointer_ref, PTR)],
            )

        if opcode == "getelementptr":
            parts = _split_commas(rest)
            element_type = parse_type(parts[0])
            refs = []
            for part in parts[1:]:
                type_token, ref = part.split()
                refs.append((ref, parse_type(type_token)))
            return (
                Instruction(
                    "getelementptr", type=PTR, name=name, attrs={"element_type": element_type}
                ),
                refs,
            )

        if opcode == "br":
            parts = _split_commas(rest)
            if len(parts) == 1:
                target = parts[0].split()[1]
                return Instruction("br", type=VOID), [(target, Type("label"))]
            cond_ref = parts[0].split()[1]
            true_ref = parts[1].split()[1]
            false_ref = parts[2].split()[1]
            return (
                Instruction("br", type=VOID),
                [(cond_ref, I1), (true_ref, Type("label")), (false_ref, Type("label"))],
            )

        if opcode == "switch":
            match = re.match(r"^(\S+)\s+(\S+),\s*label\s+(\S+)\s*(.*)$", rest)
            if not match:
                raise ParseError(f"Malformed switch: {body!r}")
            value_type = parse_type(match.group(1))
            refs = [(match.group(2), value_type), (match.group(3), Type("label"))]
            for case in re.findall(r"\[([^\]]+)\]", match.group(4)):
                const_part, label_part = _split_commas(case)
                const_type, const_ref = const_part.split()
                label_ref = label_part.split()[1]
                refs.append((const_ref, parse_type(const_type)))
                refs.append((label_ref, Type("label")))
            return Instruction("switch", type=VOID), refs

        if opcode == "ret":
            if rest.strip() == "void" or not rest.strip():
                return Instruction("ret", type=VOID), []
            type_token, ref = rest.split()
            return Instruction("ret", type=VOID), [(ref, parse_type(type_token))]

        if opcode == "unreachable":
            return Instruction("unreachable", type=VOID), []

        if opcode == "phi":
            type_token, incoming_text = rest.split(None, 1)
            type = parse_type(type_token)  # noqa: A002
            refs = []
            for pair in re.findall(r"\[([^\]]+)\]", incoming_text):
                value_ref, block_ref = _split_commas(pair)
                refs.append((value_ref.strip(), type))
                refs.append((block_ref.strip(), Type("label")))
            return Instruction("phi", type=type, name=name), refs

        if opcode == "call":
            match = _CALL_RE.match(body)
            if not match:
                raise ParseError(f"Malformed call: {body!r}")
            return_type = parse_type(match.group(1))
            callee = match.group(2)
            refs = []
            args_text = match.group(3).strip()
            if args_text:
                for arg in _split_commas(args_text):
                    type_token, ref = arg.split()
                    refs.append((ref, parse_type(type_token)))
            attrs = {"callee": callee, "pure": bool(match.group(4))}
            call_name = name if not return_type.is_void else ""
            return Instruction("call", type=return_type, name=call_name, attrs=attrs), refs

        if opcode == "select":
            parts = _split_commas(rest)
            cond_ref = parts[0].split()[1]
            true_type_token, true_ref = parts[1].split()
            false_type_token, false_ref = parts[2].split()
            value_type = parse_type(true_type_token)
            return (
                Instruction("select", type=value_type, name=name),
                [(cond_ref, I1), (true_ref, value_type), (false_ref, parse_type(false_type_token))],
            )

        raise ParseError(f"Unknown instruction: {body!r}")

    def finalize(self) -> None:
        """Resolve all deferred operand references."""
        for inst, refs in self.pending:
            inst.operands = [self.resolve(ref, type) for ref, type in refs]


def _parse_args(text: str) -> Tuple[List[Type], List[str]]:
    arg_types, arg_names = [], []
    text = text.strip()
    if not text:
        return arg_types, arg_names
    for i, arg in enumerate(_split_commas(text)):
        parts = arg.split()
        arg_types.append(parse_type(parts[0]))
        arg_names.append(parts[1].lstrip("%") if len(parts) > 1 else f"arg{i}")
    return arg_types, arg_names


def parse_module(text: str) -> Module:
    """Parse textual IR into a :class:`Module`."""
    module = Module()
    lines = text.splitlines()
    # First pass: module name, globals, and function signatures (so that calls
    # and global references resolve regardless of definition order).
    bodies: List[Tuple[Function, List[str]]] = []
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        i += 1
        if not line:
            continue
        if line.startswith("; ModuleID"):
            match = re.search(r"'([^']*)'", line)
            if match:
                module.name = match.group(1)
            continue
        if line.startswith(";"):
            continue
        global_match = _GLOBAL_RE.match(line)
        if global_match:
            name, kind, array_size, array_type, scalar_type, init = global_match.groups()
            element_type = parse_type(array_type or scalar_type)
            initializer = _parse_number(init, element_type) if init != "zeroinitializer" else 0
            module.add_global(
                GlobalVariable(
                    name,
                    element_type=element_type,
                    initializer=initializer,
                    is_constant_global=(kind == "constant"),
                    array_size=int(array_size) if array_size else 1,
                )
            )
            continue
        declare_match = _DECLARE_RE.match(line)
        if declare_match:
            return_type, name, args_text, attrs_text = declare_match.groups()
            arg_types, arg_names = _parse_args(args_text)
            module.add_function(
                Function(
                    name,
                    return_type=parse_type(return_type),
                    arg_types=arg_types,
                    arg_names=arg_names,
                    attributes=attrs_text.split(),
                )
            )
            continue
        define_match = _DEFINE_RE.match(line)
        if define_match:
            return_type, name, args_text, attrs_text = define_match.groups()
            arg_types, arg_names = _parse_args(args_text)
            function = Function(
                name,
                return_type=parse_type(return_type),
                arg_types=arg_types,
                arg_names=arg_names,
                attributes=attrs_text.split(),
            )
            module.add_function(function)
            body: List[str] = []
            while i < len(lines):
                body_line = lines[i].strip()
                i += 1
                if body_line == "}":
                    break
                if body_line and not body_line.startswith(";"):
                    body.append(body_line)
            bodies.append((function, body))
            continue
        raise ParseError(f"Cannot parse line: {line!r}")

    # Second pass: function bodies.
    for function, body in bodies:
        parser = _FunctionParser(module, function)
        current_block: Optional[BasicBlock] = None
        for line in body:
            label_match = _LABEL_RE.match(line)
            if label_match:
                current_block = parser.block(label_match.group(1))
                function.add_block(current_block)
                continue
            if current_block is None:
                current_block = parser.block("entry")
                function.add_block(current_block)
            parser.parse_instruction(line, current_block)
        parser.finalize()
        # Blocks referenced by branches but never defined would be dangling;
        # the verifier reports them, the parser only checks containment.
        for block_name, block in parser.blocks.items():
            if block.parent is None:
                raise ParseError(f"Branch to undefined block %{block_name} in @{function.name}")

    return module
