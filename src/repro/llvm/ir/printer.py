"""Textual IR printer.

Emits a close subset of LLVM's textual IR format. The output of
:func:`print_module` is accepted by :func:`repro.llvm.ir.parser.parse_module`,
and the round-trip is covered by property-based tests.
"""

from typing import List

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Constant, GlobalVariable, Value


def format_operand(value: Value) -> str:
    """Render an operand reference, without its type."""
    return value.short()


def format_typed_operand(value: Value) -> str:
    """Render an operand reference with its type prefix."""
    if isinstance(value, BasicBlock):
        return f"label %{value.name}"
    return f"{value.type} {value.short()}"


def print_instruction(inst: Instruction) -> str:
    """Render a single instruction as text."""
    op = inst.opcode
    prefix = f"%{inst.name} = " if inst.has_result and inst.name else ""

    if inst.is_binary:
        lhs, rhs = inst.operands
        return f"{prefix}{op} {inst.operands[0].type} {format_operand(lhs)}, {format_operand(rhs)}"
    if inst.is_compare:
        lhs, rhs = inst.operands
        predicate = inst.attrs.get("predicate", "eq")
        return f"{prefix}{op} {predicate} {lhs.type} {format_operand(lhs)}, {format_operand(rhs)}"
    if inst.is_cast:
        (value,) = inst.operands
        return f"{prefix}{op} {value.type} {format_operand(value)} to {inst.type}"
    if op == "alloca":
        element_type = inst.attrs.get("element_type", "i32")
        if inst.operands:
            size = inst.operands[0]
            return f"{prefix}alloca {element_type}, {size.type} {format_operand(size)}"
        return f"{prefix}alloca {element_type}"
    if op == "load":
        (pointer,) = inst.operands
        return f"{prefix}load {inst.type}, ptr {format_operand(pointer)}"
    if op == "store":
        value, pointer = inst.operands
        return f"store {value.type} {format_operand(value)}, ptr {format_operand(pointer)}"
    if op == "getelementptr":
        element_type = inst.attrs.get("element_type", "i32")
        parts = [f"ptr {format_operand(inst.operands[0])}"] + [
            f"{index.type} {format_operand(index)}" for index in inst.operands[1:]
        ]
        return f"{prefix}getelementptr {element_type}, " + ", ".join(parts)
    if op == "br":
        if len(inst.operands) == 1:
            return f"br label %{inst.operands[0].name}"
        cond, if_true, if_false = inst.operands
        return (
            f"br i1 {format_operand(cond)}, label %{if_true.name}, label %{if_false.name}"
        )
    if op == "switch":
        value, default = inst.operands[0], inst.operands[1]
        cases = []
        for i in range(2, len(inst.operands), 2):
            const, block = inst.operands[i], inst.operands[i + 1]
            cases.append(f"{const.type} {format_operand(const)}, label %{block.name}")
        cases_str = " ".join(f"[ {case} ]" for case in cases)
        return f"switch {value.type} {format_operand(value)}, label %{default.name} {cases_str}".rstrip()
    if op == "ret":
        if inst.operands:
            value = inst.operands[0]
            return f"ret {value.type} {format_operand(value)}"
        return "ret void"
    if op == "unreachable":
        return "unreachable"
    if op == "phi":
        incoming = ", ".join(
            f"[ {format_operand(value)}, %{block.name} ]" for value, block in inst.phi_incoming()
        )
        return f"{prefix}phi {inst.type} {incoming}"
    if op == "call":
        callee = inst.attrs.get("callee", "unknown")
        args = ", ".join(format_typed_operand(arg) for arg in inst.operands)
        pure = " ; pure" if inst.attrs.get("pure") else ""
        return f"{prefix}call {inst.type} @{callee}({args}){pure}"
    if op == "select":
        cond, if_true, if_false = inst.operands
        return (
            f"{prefix}select i1 {format_operand(cond)}, {if_true.type} {format_operand(if_true)}, "
            f"{if_false.type} {format_operand(if_false)}"
        )
    raise ValueError(f"Cannot print instruction with opcode {op!r}")


def print_function(function: Function) -> str:
    args = ", ".join(f"{arg.type} %{arg.name}" for arg in function.args)
    attrs = (" " + " ".join(function.attributes)) if function.attributes else ""
    if function.is_declaration:
        return f"declare {function.return_type} @{function.name}({args}){attrs}"
    lines: List[str] = [f"define {function.return_type} @{function.name}({args}){attrs} {{"]
    for block in function.blocks:
        lines.append(f"{block.name}:")
        for inst in block.instructions:
            lines.append(f"  {print_instruction(inst)}")
    lines.append("}")
    return "\n".join(lines)


def print_global(global_var: GlobalVariable) -> str:
    kind = "constant" if global_var.is_constant_global else "global"
    if global_var.array_size > 1:
        return (
            f"@{global_var.name} = {kind} [{global_var.array_size} x {global_var.element_type}] "
            f"{global_var.initializer}"
        )
    return f"@{global_var.name} = {kind} {global_var.element_type} {global_var.initializer}"


def print_module(module: Module) -> str:
    """Render a module as textual IR."""
    lines = [f"; ModuleID = '{module.name}'"]
    for global_var in module.globals.values():
        lines.append(print_global(global_var))
    for function in module.functions.values():
        lines.append("")
        lines.append(print_function(function))
    return "\n".join(lines) + "\n"
