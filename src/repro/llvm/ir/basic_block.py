"""Basic blocks."""

from typing import Iterator, List, Optional

from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.types import LABEL
from repro.llvm.ir.values import Value


class BasicBlock(Value):
    """A straight-line sequence of instructions ending in a terminator.

    Basic blocks are values (of label type) so that branch and phi
    instructions can reference them directly as operands.
    """

    def __init__(self, name: str):
        super().__init__(LABEL, name=name)
        self.instructions: List[Instruction] = []
        self.parent = None  # Set when appended to a Function.

    def append(self, instruction: Instruction) -> Instruction:
        """Append an instruction to the end of the block."""
        instruction.parent = self
        self.instructions.append(instruction)
        return instruction

    def insert(self, index: int, instruction: Instruction) -> Instruction:
        instruction.parent = self
        self.instructions.insert(index, instruction)
        return instruction

    def remove(self, instruction: Instruction) -> None:
        self.instructions.remove(instruction)
        instruction.parent = None

    @property
    def terminator(self) -> Optional[Instruction]:
        """The block's terminator instruction, if it has one."""
        if self.instructions and self.instructions[-1].is_terminator:
            return self.instructions[-1]
        return None

    def successors(self) -> List["BasicBlock"]:
        terminator = self.terminator
        return list(terminator.successors()) if terminator else []

    def phis(self) -> List[Instruction]:
        """The phi instructions at the head of the block."""
        return [inst for inst in self.instructions if inst.opcode == "phi"]

    def non_phi_instructions(self) -> List[Instruction]:
        return [inst for inst in self.instructions if inst.opcode != "phi"]

    def __iter__(self) -> Iterator[Instruction]:
        return iter(self.instructions)

    def __len__(self) -> int:
        return len(self.instructions)

    def short(self) -> str:
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"BasicBlock({self.name}, {len(self.instructions)} instructions)"
