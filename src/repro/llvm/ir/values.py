"""IR values: constants, arguments, globals.

Every operand of an instruction is a :class:`Value`. Instructions themselves
are values (they produce a result that other instructions use), as are
function arguments, constants, global variables, and functions.
"""

from typing import Optional

from repro.llvm.ir.types import I32, PTR, Type


class Value:
    """Base class for everything that can appear as an instruction operand."""

    def __init__(self, type: Type, name: str = ""):  # noqa: A002
        self.type = type
        self.name = name

    @property
    def is_constant(self) -> bool:
        return False

    def short(self) -> str:
        """Render the value as an operand reference (e.g. ``%x`` or ``42``)."""
        return f"%{self.name}"

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.short()}: {self.type})"


class Constant(Value):
    """A compile-time constant scalar."""

    def __init__(self, type: Type, value):  # noqa: A002
        super().__init__(type, name=str(value))
        self.value = value

    @property
    def is_constant(self) -> bool:
        return True

    def short(self) -> str:
        return str(self.value)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constant):
            return NotImplemented
        return self.type is other.type and self.value == other.value

    def __hash__(self) -> int:
        return hash((self.type.name, self.value))


class Argument(Value):
    """A formal argument of a function."""

    def __init__(self, name: str, type: Type = I32):  # noqa: A002
        super().__init__(type, name=name)


class GlobalVariable(Value):
    """A module-level global variable.

    Globals are always of pointer type (they denote an address); the
    ``initializer`` and ``element_type`` describe the pointed-to storage.
    """

    def __init__(
        self,
        name: str,
        element_type: Type = I32,
        initializer=0,
        is_constant_global: bool = False,
        array_size: int = 1,
    ):
        super().__init__(PTR, name=name)
        self.element_type = element_type
        self.initializer = initializer
        self.is_constant_global = is_constant_global
        self.array_size = array_size

    def short(self) -> str:
        return f"@{self.name}"


class UndefValue(Value):
    """The undefined value, produced when a use has no defined reaching value."""

    def __init__(self, type: Type = I32):  # noqa: A002
        super().__init__(type, name="undef")

    def short(self) -> str:
        return "undef"
