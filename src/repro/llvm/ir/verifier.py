"""IR verifier.

Checks the structural invariants that the passes rely on. The environment
verifies the module after every pass when running in debug mode, mirroring
LLVM's ``-verify`` pass, and the test suite uses it to assert that every
transformation preserves well-formedness.
"""

from typing import List

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.values import Argument, Constant, GlobalVariable, UndefValue
from repro.llvm.ir.cfg import predecessors, reachable_blocks


class VerificationError(Exception):
    """The module violates an IR structural invariant."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


def verify_function(function: Function, module: Module) -> List[str]:
    errors: List[str] = []
    if function.is_declaration:
        return errors

    block_set = set(function.blocks)
    defined_values = set(function.args)
    for block in function.blocks:
        for inst in block.instructions:
            defined_values.add(inst)

    names = [inst.name for inst in function.instructions() if inst.name]
    if len(names) != len(set(names)):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        errors.append(f"@{function.name}: duplicate value names {duplicates}")

    preds = predecessors(function)
    reachable = reachable_blocks(function)

    for block in function.blocks:
        if block.terminator is None:
            errors.append(f"@{function.name}/%{block.name}: block has no terminator")
        for position, inst in enumerate(block.instructions):
            if inst.is_terminator and position != len(block.instructions) - 1:
                errors.append(
                    f"@{function.name}/%{block.name}: terminator is not the last instruction"
                )
            if inst.opcode == "phi" and position >= len(block.phis()):
                errors.append(
                    f"@{function.name}/%{block.name}: phi after non-phi instruction"
                )
            if inst.has_result and not inst.name:
                errors.append(
                    f"@{function.name}/%{block.name}: {inst.opcode} result has no name"
                )
            for i, operand in enumerate(inst.operands):
                if isinstance(operand, BasicBlock):
                    if operand not in block_set:
                        errors.append(
                            f"@{function.name}/%{block.name}: reference to block %{operand.name} "
                            "not in function"
                        )
                elif isinstance(operand, Instruction):
                    if operand not in defined_values:
                        errors.append(
                            f"@{function.name}/%{block.name}: use of value %{operand.name} "
                            "not defined in function"
                        )
                elif isinstance(operand, (Constant, Argument, GlobalVariable, UndefValue)):
                    if isinstance(operand, Argument) and operand not in defined_values:
                        errors.append(
                            f"@{function.name}/%{block.name}: use of foreign argument %{operand.name}"
                        )
                    if (
                        isinstance(operand, GlobalVariable)
                        and operand.name not in module.globals
                    ):
                        errors.append(
                            f"@{function.name}/%{block.name}: use of unknown global @{operand.name}"
                        )
                elif isinstance(operand, Function):
                    if operand.name not in module.functions:
                        errors.append(
                            f"@{function.name}/%{block.name}: use of unknown function @{operand.name}"
                        )
                else:
                    errors.append(
                        f"@{function.name}/%{block.name}: invalid operand {operand!r}"
                    )
            if inst.opcode == "phi" and block in reachable:
                incoming_blocks = [incoming for _, incoming in inst.phi_incoming()]
                expected = set(preds[block])
                if set(incoming_blocks) != expected:
                    errors.append(
                        f"@{function.name}/%{block.name}: phi incoming blocks "
                        f"{sorted(b.name for b in incoming_blocks)} do not match predecessors "
                        f"{sorted(b.name for b in expected)}"
                    )
            if inst.opcode == "call":
                callee = inst.attrs.get("callee")
                if callee and callee not in module.functions:
                    errors.append(
                        f"@{function.name}/%{block.name}: call to unknown function @{callee}"
                    )
    return errors


def verify_module(module: Module, raise_on_error: bool = True) -> List[str]:
    """Verify a module. Returns the list of errors (empty if valid)."""
    errors: List[str] = []
    for function in module.functions.values():
        errors.extend(verify_function(function, module))
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors
