"""IR verifier: structural *and* semantic invariants.

Checks the invariants that the passes rely on, mirroring LLVM's ``-verify``
machinery. Structural checks (terminators, operand membership, phi placement)
catch malformed IR; semantic checks catch *miscompiling* IR that is still
structurally plausible:

- **SSA dominance**: every use of an instruction's value must be dominated by
  its definition (phi operands must instead dominate the end of their incoming
  block). This is the check that catches illegal hoists and sinks.
- **Phi coherence**: a phi's incoming blocks must match the block's CFG
  predecessors exactly, and every incoming value must match the phi's type.
- **Operand typing**: binary/compare/cast/memory/terminator operands must have
  the types their opcode requires, and calls must match their callee's
  signature.

The environment verifies the module after every pass when running in debug
mode (``REPRO_VERIFY_IR=1`` / ``make(..., verify_ir=True)``), and the
pass-validation harness (``repro-compilergym lint``) uses it to vet every
registered pass over the builtin datasets.

Dominance requires a dominator-tree construction per function, so
``verify_module(module, semantic=False)`` retains the cheap structural-only
mode for hot paths that want a quick sanity check.
"""

from typing import Dict, List

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.module import Module
from repro.llvm.ir.types import I1, Type
from repro.llvm.ir.values import Argument, Constant, GlobalVariable, UndefValue
from repro.llvm.ir.cfg import predecessors, reachable_blocks


class VerificationError(Exception):
    """The module violates an IR structural or semantic invariant."""

    def __init__(self, errors: List[str]):
        self.errors = errors
        super().__init__("\n".join(errors))


# Cast opcodes grouped by the (operand kind -> result kind) they require.
_INT_TO_INT_CASTS = frozenset({"zext", "sext", "trunc"})
_FLOAT_TO_FLOAT_CASTS = frozenset({"fpext", "fptrunc"})


def _kind(type: Type) -> str:  # noqa: A002
    if type.is_integer:
        return "int"
    if type.is_float:
        return "float"
    if type.is_pointer:
        return "ptr"
    return type.name


def _type_errors(function: Function, module: Module, inst: Instruction, where: str) -> List[str]:
    """Operand/result type rules for one instruction."""
    errors: List[str] = []
    op = inst.opcode

    def operand_types_must_match_result(operands) -> None:
        for operand in operands:
            if isinstance(operand, UndefValue):
                continue  # undef is freely retyped, as when phis lack a value.
            if operand.type is not inst.type:
                errors.append(
                    f"{where}: {op} operand {operand.short()} has type "
                    f"{operand.type}, expected {inst.type}"
                )

    if inst.is_binary:
        if len(inst.operands) != 2:
            return [f"{where}: {op} must have exactly 2 operands"]
        if inst.type.is_void:
            errors.append(f"{where}: {op} result cannot be void")
        operand_types_must_match_result(inst.operands)
        if op.startswith("f") and not inst.type.is_float:
            errors.append(f"{where}: {op} requires a floating-point type, got {inst.type}")
        if not op.startswith("f") and inst.type.is_float:
            errors.append(f"{where}: {op} is an integer operation, got {inst.type}")
    elif inst.is_compare:
        if len(inst.operands) != 2:
            return [f"{where}: {op} must have exactly 2 operands"]
        if inst.type is not I1:
            errors.append(f"{where}: {op} result must be i1, got {inst.type}")
        lhs, rhs = inst.operands
        if (
            not isinstance(lhs, UndefValue)
            and not isinstance(rhs, UndefValue)
            and lhs.type is not rhs.type
        ):
            errors.append(
                f"{where}: {op} operand types differ ({lhs.type} vs {rhs.type})"
            )
    elif inst.is_cast:
        if len(inst.operands) != 1:
            return [f"{where}: {op} must have exactly 1 operand"]
        source = inst.operands[0].type
        if isinstance(inst.operands[0], UndefValue):
            return errors
        expected = {
            "zext": ("int", "int"), "sext": ("int", "int"), "trunc": ("int", "int"),
            "ptrtoint": ("ptr", "int"), "inttoptr": ("int", "ptr"),
            "sitofp": ("int", "float"), "fptosi": ("float", "int"),
            "fpext": ("float", "float"), "fptrunc": ("float", "float"),
        }.get(op)
        if expected is not None:
            source_kind, result_kind = expected
            if _kind(source) != source_kind or _kind(inst.type) != result_kind:
                errors.append(
                    f"{where}: {op} requires {source_kind} -> {result_kind}, "
                    f"got {source} -> {inst.type}"
                )
    elif op == "alloca":
        if not inst.type.is_pointer:
            errors.append(f"{where}: alloca result must be ptr, got {inst.type}")
    elif op == "load":
        if len(inst.operands) != 1:
            return [f"{where}: load must have exactly 1 operand"]
        if not inst.operands[0].type.is_pointer:
            errors.append(
                f"{where}: load address {inst.operands[0].short()} is not a pointer"
            )
    elif op == "store":
        if len(inst.operands) != 2:
            return [f"{where}: store must have exactly 2 operands"]
        if not inst.operands[1].type.is_pointer:
            errors.append(
                f"{where}: store address {inst.operands[1].short()} is not a pointer"
            )
        if inst.operands[0].type.is_void:
            errors.append(f"{where}: cannot store a void value")
    elif op == "getelementptr":
        if not inst.operands:
            return [f"{where}: getelementptr must have a base operand"]
        if not inst.operands[0].type.is_pointer:
            errors.append(
                f"{where}: getelementptr base {inst.operands[0].short()} is not a pointer"
            )
        if not inst.type.is_pointer:
            errors.append(f"{where}: getelementptr result must be ptr, got {inst.type}")
        for index in inst.operands[1:]:
            if not (index.type.is_integer or isinstance(index, UndefValue)):
                errors.append(
                    f"{where}: getelementptr index {index.short()} is not an integer"
                )
    elif op == "select":
        if len(inst.operands) != 3:
            return [f"{where}: select must have exactly 3 operands"]
        cond = inst.operands[0]
        if not isinstance(cond, UndefValue) and cond.type is not I1:
            errors.append(f"{where}: select condition must be i1, got {cond.type}")
        operand_types_must_match_result(inst.operands[1:])
    elif op == "phi":
        for value, _ in inst.phi_incoming():
            if isinstance(value, (UndefValue, BasicBlock)):
                continue
            if value.type is not inst.type:
                errors.append(
                    f"{where}: phi incoming value {value.short()} has type "
                    f"{value.type}, expected {inst.type}"
                )
    elif op == "br":
        if len(inst.operands) == 3:
            cond = inst.operands[0]
            if not isinstance(cond, UndefValue) and cond.type is not I1:
                errors.append(f"{where}: branch condition must be i1, got {cond.type}")
    elif op == "switch":
        if len(inst.operands) >= 1 and not inst.operands[0].type.is_integer:
            errors.append(
                f"{where}: switch value {inst.operands[0].short()} is not an integer"
            )
        for i in range(2, len(inst.operands), 2):
            case = inst.operands[i]
            if not isinstance(case, Constant):
                errors.append(f"{where}: switch case {case!r} is not a constant")
    elif op == "ret":
        if function.return_type.is_void:
            if inst.operands:
                errors.append(f"{where}: void function returns a value")
        else:
            if not inst.operands:
                errors.append(
                    f"{where}: non-void function @{function.name} returns no value"
                )
            elif (
                not isinstance(inst.operands[0], UndefValue)
                and inst.operands[0].type is not function.return_type
            ):
                errors.append(
                    f"{where}: returned value has type {inst.operands[0].type}, "
                    f"function returns {function.return_type}"
                )
    elif op == "call":
        callee = module.function(inst.attrs.get("callee", ""))
        if callee is not None and not callee.is_declaration:
            if len(inst.operands) != len(callee.args):
                errors.append(
                    f"{where}: call to @{callee.name} passes {len(inst.operands)} "
                    f"argument(s), expected {len(callee.args)}"
                )
            if not inst.type.is_void and inst.type is not callee.return_type:
                errors.append(
                    f"{where}: call result type {inst.type} does not match "
                    f"@{callee.name} return type {callee.return_type}"
                )
    return errors


def _dominance_errors(function: Function) -> List[str]:
    """SSA dominance: every use is dominated by its def.

    Only reachable code is checked (dominance is vacuous in unreachable
    blocks, matching LLVM). Phi operands are checked against the end of their
    incoming block rather than the phi itself.
    """
    from repro.llvm.analysis.dominators import DominatorTree

    errors: List[str] = []
    tree = DominatorTree(function)
    reachable = tree.reachable
    # Instruction positions for same-block dominance queries, computed once.
    positions: Dict[Instruction, int] = {}
    for block in function.blocks:
        for index, inst in enumerate(block.instructions):
            positions[inst] = index

    def defined_in_dominating_position(definition: Instruction, use: Instruction) -> bool:
        def_block, use_block = definition.parent, use.parent
        if def_block is not use_block:
            return tree.dominates(def_block, use_block)
        if use.opcode == "phi":
            return definition.opcode == "phi"
        if definition.opcode == "phi":
            return True
        return positions[definition] < positions[use]

    for block in function.blocks:
        if block not in reachable:
            continue
        for inst in block.instructions:
            where = f"@{function.name}/%{block.name}"
            if inst.opcode == "phi":
                for value, incoming in inst.phi_incoming():
                    if not isinstance(value, Instruction) or value.parent is None:
                        continue
                    if incoming not in reachable:
                        continue
                    if not tree.dominates(value.parent, incoming):
                        errors.append(
                            f"{where}: phi %{inst.name} incoming value "
                            f"%{value.name} from %{incoming.name} does not "
                            f"dominate the end of %{incoming.name}"
                        )
                continue
            for index, operand in enumerate(inst.operands):
                if inst._operand_is_block(index):
                    continue
                if not isinstance(operand, Instruction) or operand.parent is None:
                    continue
                if not defined_in_dominating_position(operand, inst):
                    errors.append(
                        f"{where}: use of %{operand.name} by "
                        f"{'%' + inst.name if inst.name else inst.opcode} is not "
                        f"dominated by its definition in %{operand.parent.name}"
                    )
    return errors


def verify_function(function: Function, module: Module, semantic: bool = True) -> List[str]:
    errors: List[str] = []
    if function.is_declaration:
        return errors

    block_set = set(function.blocks)
    defined_values = set(function.args)
    for block in function.blocks:
        for inst in block.instructions:
            defined_values.add(inst)

    names = [inst.name for inst in function.instructions() if inst.name]
    if len(names) != len(set(names)):
        duplicates = sorted({n for n in names if names.count(n) > 1})
        errors.append(f"@{function.name}: duplicate value names {duplicates}")

    preds = predecessors(function)
    reachable = reachable_blocks(function)

    for block in function.blocks:
        if block.terminator is None:
            errors.append(f"@{function.name}/%{block.name}: block has no terminator")
        for position, inst in enumerate(block.instructions):
            where = f"@{function.name}/%{block.name}"
            if inst.is_terminator and position != len(block.instructions) - 1:
                errors.append(f"{where}: terminator is not the last instruction")
            if inst.opcode == "phi" and position >= len(block.phis()):
                errors.append(f"{where}: phi after non-phi instruction")
            if inst.has_result and not inst.name:
                errors.append(f"{where}: {inst.opcode} result has no name")
            for i, operand in enumerate(inst.operands):
                if isinstance(operand, BasicBlock):
                    if operand not in block_set:
                        errors.append(
                            f"{where}: reference to block %{operand.name} not in function"
                        )
                elif isinstance(operand, Instruction):
                    if operand not in defined_values:
                        errors.append(
                            f"{where}: use of value %{operand.name} not defined in function"
                        )
                elif isinstance(operand, (Constant, Argument, GlobalVariable, UndefValue)):
                    if isinstance(operand, Argument) and operand not in defined_values:
                        errors.append(f"{where}: use of foreign argument %{operand.name}")
                    if (
                        isinstance(operand, GlobalVariable)
                        and operand.name not in module.globals
                    ):
                        errors.append(f"{where}: use of unknown global @{operand.name}")
                elif isinstance(operand, Function):
                    if operand.name not in module.functions:
                        errors.append(f"{where}: use of unknown function @{operand.name}")
                else:
                    errors.append(f"{where}: invalid operand {operand!r}")
            if inst.opcode == "phi" and block in reachable:
                incoming_blocks = [incoming for _, incoming in inst.phi_incoming()]
                expected = set(preds[block])
                if set(incoming_blocks) != expected:
                    errors.append(
                        f"{where}: phi incoming blocks "
                        f"{sorted(b.name for b in incoming_blocks)} do not match predecessors "
                        f"{sorted(b.name for b in expected)}"
                    )
                if len(incoming_blocks) != len(set(incoming_blocks)):
                    errors.append(f"{where}: phi lists an incoming block twice")
            if inst.opcode == "call":
                callee = inst.attrs.get("callee")
                if callee and callee not in module.functions:
                    errors.append(f"{where}: call to unknown function @{callee}")
            if semantic:
                errors.extend(_type_errors(function, module, inst, where))

    # Dominance needs structurally coherent blocks to be meaningful; skip it
    # when structure is already broken (the structural errors say it all).
    if semantic and not errors:
        errors.extend(_dominance_errors(function))
    return errors


def verify_module(module: Module, raise_on_error: bool = True, semantic: bool = True) -> List[str]:
    """Verify a module. Returns the list of errors (empty if valid).

    ``semantic=False`` restricts verification to the cheap structural checks
    (no dominator-tree construction, no type rules).
    """
    errors: List[str] = []
    for function in module.functions.values():
        errors.extend(verify_function(function, module, semantic=semantic))
    if errors and raise_on_error:
        raise VerificationError(errors)
    return errors
