"""Functions."""

from typing import Dict, Iterator, List, Optional

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.types import I32, PTR, Type
from repro.llvm.ir.values import Argument, Value


class Function(Value):
    """A function: a list of arguments and an ordered list of basic blocks.

    A function with no blocks is a *declaration* (an external function such as
    ``printf``), which the optimizer must treat as opaque.
    """

    def __init__(
        self,
        name: str,
        return_type: Type = I32,
        arg_types: Optional[List[Type]] = None,
        arg_names: Optional[List[str]] = None,
        attributes: Optional[List[str]] = None,
    ):
        super().__init__(PTR, name=name)
        self.return_type = return_type
        arg_types = list(arg_types or [])
        arg_names = list(arg_names or [f"arg{i}" for i in range(len(arg_types))])
        self.args: List[Argument] = [
            Argument(name, type) for name, type in zip(arg_names, arg_types)
        ]
        self.blocks: List[BasicBlock] = []
        # Function attributes, e.g. "inlinehint", "noinline", "internal".
        self.attributes: List[str] = list(attributes or [])
        self._next_value_id = 0
        self._next_block_id = 0

    # -- structure -----------------------------------------------------------

    @property
    def is_declaration(self) -> bool:
        return not self.blocks

    @property
    def entry(self) -> Optional[BasicBlock]:
        return self.blocks[0] if self.blocks else None

    def add_block(self, block_or_name) -> BasicBlock:
        """Append a basic block (or create one from a name)."""
        block = block_or_name if isinstance(block_or_name, BasicBlock) else BasicBlock(block_or_name)
        block.parent = self
        self.blocks.append(block)
        return block

    def remove_block(self, block: BasicBlock) -> None:
        self.blocks.remove(block)
        block.parent = None

    def block_by_name(self, name: str) -> Optional[BasicBlock]:
        for block in self.blocks:
            if block.name == name:
                return block
        return None

    # -- naming ---------------------------------------------------------------

    def new_value_name(self, prefix: str = "v") -> str:
        """Generate a fresh SSA value name unique within the function."""
        existing = {inst.name for block in self.blocks for inst in block if inst.name}
        existing.update(arg.name for arg in self.args)
        while True:
            name = f"{prefix}{self._next_value_id}"
            self._next_value_id += 1
            if name not in existing:
                return name

    def new_block_name(self, prefix: str = "bb") -> str:
        """Generate a fresh basic-block name unique within the function."""
        existing = {block.name for block in self.blocks}
        while True:
            name = f"{prefix}{self._next_block_id}"
            self._next_block_id += 1
            if name not in existing:
                return name

    # -- iteration -------------------------------------------------------------

    def instructions(self) -> Iterator[Instruction]:
        """Iterate over every instruction in the function."""
        for block in self.blocks:
            yield from block.instructions

    def __iter__(self) -> Iterator[BasicBlock]:
        return iter(self.blocks)

    def __len__(self) -> int:
        """The number of instructions in the function."""
        return sum(len(block) for block in self.blocks)

    def short(self) -> str:
        return f"@{self.name}"

    def __repr__(self) -> str:
        kind = "declare" if self.is_declaration else "define"
        return f"Function({kind} @{self.name}, {len(self.blocks)} blocks, {len(self)} instructions)"
