"""Modules: the top-level IR container."""

import copy
from typing import Dict, Iterator, List, Optional

from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import Instruction
from repro.llvm.ir.values import GlobalVariable


class Module:
    """A translation unit: global variables plus functions.

    Modules are the unit of compilation: benchmarks hold a module, passes
    transform a module in place, and observations are computed from a module.
    """

    def __init__(self, name: str = "module"):
        self.name = name
        self.globals: Dict[str, GlobalVariable] = {}
        self.functions: Dict[str, Function] = {}
        # Free-form module metadata (used e.g. to tag generator provenance).
        self.metadata: Dict[str, str] = {}
        # Monotonic mutation counter: bumped by every pass that reports a
        # change (see passes.registry.run_pass). Observation caches key on it,
        # so a stale version must never describe a mutated module — passes
        # that mutate while reporting ``changed=False`` are lint failures.
        self.version: int = 0

    def bump_version(self) -> int:
        """Record a mutation. Returns the new version."""
        self.version += 1
        return self.version

    # -- construction ---------------------------------------------------------

    def add_function(self, function: Function) -> Function:
        self.functions[function.name] = function
        return function

    def add_global(self, global_var: GlobalVariable) -> GlobalVariable:
        self.globals[global_var.name] = global_var
        return global_var

    def remove_function(self, name: str) -> None:
        self.functions.pop(name, None)

    def function(self, name: str) -> Optional[Function]:
        return self.functions.get(name)

    # -- iteration --------------------------------------------------------------

    def defined_functions(self) -> List[Function]:
        """Functions with bodies (excludes external declarations)."""
        return [f for f in self.functions.values() if not f.is_declaration]

    def instructions(self) -> Iterator[Instruction]:
        for function in self.functions.values():
            yield from function.instructions()

    @property
    def instruction_count(self) -> int:
        """Total number of IR instructions — the paper's code-size metric."""
        return sum(len(f) for f in self.functions.values())

    @property
    def size_in_bytes(self) -> int:
        """Rough in-memory size estimate, used by the benchmark cache."""
        return 64 + 96 * self.instruction_count + 48 * len(self.functions)

    def __iter__(self) -> Iterator[Function]:
        return iter(self.functions.values())

    def __len__(self) -> int:
        return self.instruction_count

    def clone(self) -> "Module":
        """Deep copy of the module (used by fork() and baseline computation).

        The clone keeps the parent's ``version``: it describes identical IR,
        so version-keyed caches carried across a fork stay valid.
        """
        return copy.deepcopy(self)

    def __repr__(self) -> str:
        return (
            f"Module({self.name!r}, {len(self.functions)} functions, "
            f"{self.instruction_count} instructions)"
        )
