"""IR types.

The type system is intentionally small: the integer widths and floating point
types that C frontends commonly emit, an opaque pointer type, void, and label.
Types are interned singletons so identity comparison works.
"""

from typing import Dict


class Type:
    """An IR type, identified by name."""

    _interned: Dict[str, "Type"] = {}

    def __new__(cls, name: str):
        if name not in cls._interned:
            instance = super().__new__(cls)
            instance.name = name
            cls._interned[name] = instance
        return cls._interned[name]

    # Types are interned singletons: copying or pickling returns the same
    # instance, so identity comparisons keep working across Module.clone().
    def __copy__(self) -> "Type":
        return self

    def __deepcopy__(self, memo) -> "Type":
        return self

    def __reduce__(self):
        return (Type, (self.name,))

    @property
    def is_integer(self) -> bool:
        return self.name.startswith("i") and self.name[1:].isdigit()

    @property
    def is_float(self) -> bool:
        return self.name in ("float", "double")

    @property
    def is_pointer(self) -> bool:
        return self.name == "ptr"

    @property
    def is_void(self) -> bool:
        return self.name == "void"

    @property
    def bits(self) -> int:
        """Bit width of the type (0 for non-scalar types)."""
        if self.is_integer:
            return int(self.name[1:])
        if self.name == "float":
            return 32
        if self.name == "double":
            return 64
        if self.is_pointer:
            return 64
        return 0

    def __repr__(self) -> str:
        return self.name

    def __str__(self) -> str:
        return self.name


# The interned type singletons used throughout the IR.
VOID = Type("void")
I1 = Type("i1")
I8 = Type("i8")
I16 = Type("i16")
I32 = Type("i32")
I64 = Type("i64")
FLOAT = Type("float")
DOUBLE = Type("double")
PTR = Type("ptr")
LABEL = Type("label")


def parse_type(name: str) -> Type:
    """Parse a type name into its interned :class:`Type`."""
    name = name.strip()
    known = {t.name for t in (VOID, I1, I8, I16, I32, I64, FLOAT, DOUBLE, PTR, LABEL)}
    if name.endswith("*"):
        return PTR
    if name not in known and not (name.startswith("i") and name[1:].isdigit()):
        raise ValueError(f"Unknown type: {name!r}")
    return Type(name)
