"""IRBuilder: convenience API for constructing IR.

Used by the synthetic benchmark generators and by tests. The builder tracks
an insertion point (a basic block) and appends instructions to it, generating
fresh SSA names as needed.
"""

from typing import List, Optional, Sequence, Tuple, Union

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function
from repro.llvm.ir.instructions import (
    BINARY_OPCODES,
    CAST_OPCODES,
    Instruction,
)
from repro.llvm.ir.types import I1, I32, I64, PTR, VOID, Type
from repro.llvm.ir.values import Constant, Value


class IRBuilder:
    """Builds instructions into a function, one basic block at a time."""

    def __init__(self, function: Function, block: Optional[BasicBlock] = None):
        self.function = function
        # Note: an explicit `is None` check — empty basic blocks are falsy
        # (len() == 0), so `block or default` would silently pick the entry.
        self.block = block if block is not None else (function.entry if function.blocks else None)

    def set_insert_point(self, block: BasicBlock) -> None:
        self.block = block

    def _emit(self, instruction: Instruction) -> Instruction:
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        return self.block.append(instruction)

    def _name(self, name: Optional[str]) -> str:
        return name or self.function.new_value_name()

    # -- constants -----------------------------------------------------------

    @staticmethod
    def const(value: Union[int, float], type: Type = I32) -> Constant:  # noqa: A002
        return Constant(type, value)

    # -- arithmetic -----------------------------------------------------------

    def binary(self, opcode: str, lhs: Value, rhs: Value, name: Optional[str] = None) -> Instruction:
        if opcode not in BINARY_OPCODES:
            raise ValueError(f"Not a binary opcode: {opcode!r}")
        return self._emit(
            Instruction(opcode, [lhs, rhs], type=lhs.type, name=self._name(name))
        )

    def add(self, lhs, rhs, name=None):
        return self.binary("add", lhs, rhs, name)

    def sub(self, lhs, rhs, name=None):
        return self.binary("sub", lhs, rhs, name)

    def mul(self, lhs, rhs, name=None):
        return self.binary("mul", lhs, rhs, name)

    def icmp(self, predicate: str, lhs: Value, rhs: Value, name: Optional[str] = None) -> Instruction:
        return self._emit(
            Instruction(
                "icmp", [lhs, rhs], type=I1, name=self._name(name), attrs={"predicate": predicate}
            )
        )

    def fcmp(self, predicate: str, lhs: Value, rhs: Value, name: Optional[str] = None) -> Instruction:
        return self._emit(
            Instruction(
                "fcmp", [lhs, rhs], type=I1, name=self._name(name), attrs={"predicate": predicate}
            )
        )

    def select(self, cond: Value, if_true: Value, if_false: Value, name: Optional[str] = None) -> Instruction:
        return self._emit(
            Instruction("select", [cond, if_true, if_false], type=if_true.type, name=self._name(name))
        )

    def cast(self, opcode: str, value: Value, to_type: Type, name: Optional[str] = None) -> Instruction:
        if opcode not in CAST_OPCODES:
            raise ValueError(f"Not a cast opcode: {opcode!r}")
        return self._emit(Instruction(opcode, [value], type=to_type, name=self._name(name)))

    # -- memory ---------------------------------------------------------------

    def alloca(self, element_type: Type = I32, array_size: Optional[Value] = None, name=None) -> Instruction:
        operands = [array_size] if array_size is not None else []
        return self._emit(
            Instruction(
                "alloca", operands, type=PTR, name=self._name(name),
                attrs={"element_type": element_type},
            )
        )

    def load(self, pointer: Value, type: Type = I32, name=None) -> Instruction:  # noqa: A002
        return self._emit(Instruction("load", [pointer], type=type, name=self._name(name)))

    def store(self, value: Value, pointer: Value) -> Instruction:
        return self._emit(Instruction("store", [value, pointer], type=VOID))

    def gep(self, pointer: Value, indices: Sequence[Value], element_type: Type = I32, name=None) -> Instruction:
        return self._emit(
            Instruction(
                "getelementptr", [pointer] + list(indices), type=PTR, name=self._name(name),
                attrs={"element_type": element_type},
            )
        )

    # -- control flow -----------------------------------------------------------

    def br(self, target: BasicBlock) -> Instruction:
        return self._emit(Instruction("br", [target], type=VOID))

    def cond_br(self, condition: Value, if_true: BasicBlock, if_false: BasicBlock) -> Instruction:
        return self._emit(Instruction("br", [condition, if_true, if_false], type=VOID))

    def switch(
        self,
        value: Value,
        default: BasicBlock,
        cases: Sequence[Tuple[Constant, BasicBlock]],
    ) -> Instruction:
        operands: List[Value] = [value, default]
        for const, block in cases:
            operands.extend([const, block])
        return self._emit(Instruction("switch", operands, type=VOID))

    def ret(self, value: Optional[Value] = None) -> Instruction:
        return self._emit(Instruction("ret", [value] if value is not None else [], type=VOID))

    def unreachable(self) -> Instruction:
        return self._emit(Instruction("unreachable", [], type=VOID))

    def phi(
        self, type: Type, incoming: Sequence[Tuple[Value, BasicBlock]], name=None  # noqa: A002
    ) -> Instruction:
        operands: List[Value] = []
        for value, block in incoming:
            operands.extend([value, block])
        # Phis belong at the head of the block, before non-phi instructions.
        instruction = Instruction("phi", operands, type=type, name=self._name(name))
        if self.block is None:
            raise RuntimeError("IRBuilder has no insertion point")
        insert_at = len(self.block.phis())
        return self.block.insert(insert_at, instruction)

    # -- calls ---------------------------------------------------------------------

    def call(
        self,
        callee: Union[Function, str],
        args: Sequence[Value] = (),
        return_type: Optional[Type] = None,
        pure: bool = False,
        name: Optional[str] = None,
    ) -> Instruction:
        callee_name = callee.name if isinstance(callee, Function) else str(callee)
        if return_type is None:
            return_type = callee.return_type if isinstance(callee, Function) else I32
        attrs = {"callee": callee_name, "pure": pure}
        result_name = self._name(name) if not return_type.is_void else ""
        return self._emit(
            Instruction("call", list(args), type=return_type, name=result_name, attrs=attrs)
        )
