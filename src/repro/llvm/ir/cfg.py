"""Control-flow analyses: CFG, dominators, natural loops.

These analyses are recomputed on demand by the passes that need them; with
the module sizes used in the benchmarks the cost of recomputation is
negligible compared to keeping them incrementally up to date.
"""

from typing import Dict, List, Optional, Set

from repro.llvm.ir.basic_block import BasicBlock
from repro.llvm.ir.function import Function


def predecessors(function: Function) -> Dict[BasicBlock, List[BasicBlock]]:
    """Map from each block to the list of its CFG predecessors."""
    preds: Dict[BasicBlock, List[BasicBlock]] = {block: [] for block in function.blocks}
    for block in function.blocks:
        for successor in block.successors():
            if successor in preds:
                preds[successor].append(block)
    return preds


def reachable_blocks(function: Function) -> Set[BasicBlock]:
    """The set of blocks reachable from the entry block."""
    if not function.blocks:
        return set()
    seen: Set[BasicBlock] = set()
    worklist = [function.entry]
    while worklist:
        block = worklist.pop()
        if block in seen:
            continue
        seen.add(block)
        worklist.extend(block.successors())
    return seen


def reverse_postorder(function: Function) -> List[BasicBlock]:
    """Blocks in reverse postorder of a DFS from the entry."""
    visited: Set[BasicBlock] = set()
    postorder: List[BasicBlock] = []

    def visit(block: BasicBlock) -> None:
        stack = [(block, iter(block.successors()))]
        visited.add(block)
        while stack:
            current, successors = stack[-1]
            advanced = False
            for successor in successors:
                if successor not in visited:
                    visited.add(successor)
                    stack.append((successor, iter(successor.successors())))
                    advanced = True
                    break
            if not advanced:
                postorder.append(current)
                stack.pop()

    if function.entry is not None:
        visit(function.entry)
    return list(reversed(postorder))


def dominators(function: Function) -> Dict[BasicBlock, Set[BasicBlock]]:
    """Compute the dominator sets of every reachable block (iterative dataflow)."""
    if not function.blocks:
        return {}
    entry = function.entry
    blocks = reverse_postorder(function)
    preds = predecessors(function)
    all_blocks = set(blocks)
    dom: Dict[BasicBlock, Set[BasicBlock]] = {block: set(all_blocks) for block in blocks}
    dom[entry] = {entry}
    changed = True
    while changed:
        changed = False
        for block in blocks:
            if block is entry:
                continue
            block_preds = [p for p in preds[block] if p in dom]
            if not block_preds:
                new = {block}
            else:
                new = set(all_blocks)
                for pred in block_preds:
                    new &= dom[pred]
                new.add(block)
            if new != dom[block]:
                dom[block] = new
                changed = True
    return dom


def dominates(dom: Dict[BasicBlock, Set[BasicBlock]], a: BasicBlock, b: BasicBlock) -> bool:
    """Whether block ``a`` dominates block ``b``."""
    return b in dom and a in dom[b]


class Loop:
    """A natural loop: a header plus the set of blocks in the loop body."""

    def __init__(self, header: BasicBlock, blocks: Set[BasicBlock], latches: List[BasicBlock]):
        self.header = header
        self.blocks = blocks
        self.latches = latches
        self.parent: Optional["Loop"] = None

    @property
    def depth(self) -> int:
        depth, loop = 1, self.parent
        while loop is not None:
            depth += 1
            loop = loop.parent
        return depth

    def exit_blocks(self) -> List[BasicBlock]:
        """Blocks outside the loop that are branched to from inside it."""
        exits = []
        for block in self.blocks:
            for successor in block.successors():
                if successor not in self.blocks and successor not in exits:
                    exits.append(successor)
        return exits

    def __repr__(self) -> str:
        return f"Loop(header={self.header.name}, blocks={len(self.blocks)}, depth={self.depth})"


def natural_loops(function: Function) -> List[Loop]:
    """Find the natural loops of a function via back-edge detection."""
    dom = dominators(function)
    preds = predecessors(function)
    loops: List[Loop] = []
    by_header: Dict[BasicBlock, Loop] = {}
    for block in reachable_blocks(function):
        for successor in block.successors():
            if dominates(dom, successor, block):
                # Back edge block -> successor; successor is the loop header.
                header, latch = successor, block
                body: Set[BasicBlock] = {header}
                worklist = [latch]
                while worklist:
                    current = worklist.pop()
                    if current in body:
                        continue
                    body.add(current)
                    worklist.extend(p for p in preds.get(current, []))
                if header in by_header:
                    existing = by_header[header]
                    existing.blocks |= body
                    existing.latches.append(latch)
                else:
                    loop = Loop(header, body, [latch])
                    by_header[header] = loop
                    loops.append(loop)
    # Establish nesting: a loop's parent is the smallest loop strictly containing it.
    for loop in loops:
        candidates = [
            other
            for other in loops
            if other is not loop and loop.header in other.blocks and loop.blocks <= other.blocks
        ]
        if candidates:
            loop.parent = min(candidates, key=lambda l: len(l.blocks))
    return loops


def loop_depths(function: Function) -> Dict[BasicBlock, int]:
    """Map from each block to its loop nesting depth (0 outside any loop)."""
    depths: Dict[BasicBlock, int] = {block: 0 for block in function.blocks}
    for loop in natural_loops(function):
        for block in loop.blocks:
            depths[block] = max(depths[block], loop.depth)
    return depths
