"""The LLVM CompilationSession: incremental phase ordering over the simulated IR.

This is the backend half of the LLVM environment. A session holds a working
copy of the benchmark's module; each ``apply_action`` runs one optimization
pass *incrementally* on the already-optimized module (the design that gives
CompilerGym its step-time advantage over recompile-from-scratch baselines, see
Table II), and ``get_observation`` computes any of the environment's
observation spaces from the current module.
"""

import hashlib
import random
import threading
from typing import Any, Dict, List, Optional, Tuple

import numpy as np

from repro.core.datasets.benchmark import Benchmark
from repro.core.service.compilation_session import CompilationSession
from repro.core.spaces import Box, Commandline, CommandlineFlag, ObservationSpaceSpec, Scalar, SequenceSpace
from repro.core.spaces.space import Space
from repro.llvm.analysis.autophase import AUTOPHASE_DIMS, autophase_function_features
from repro.llvm.analysis.inst2vec import inst2vec_embeddings, inst2vec_preprocess
from repro.llvm.analysis.instcount import (
    INSTCOUNT_DIMS,
    INSTCOUNT_MAX_FEATURE_INDICES,
    combine_function_features,
    instcount_function_features,
    instcount_module_features,
)
from repro.llvm.analysis.programl import programl_graph
from repro.llvm.analysis.summaries import (
    LIVENESS_DIMS,
    LIVENESS_MAX_FEATURE_INDICES,
    REACHINGDEFS_DIMS,
    REACHINGDEFS_MAX_FEATURE_INDICES,
    function_domtree_depth,
    liveness_function_features,
    reachingdefs_function_features,
)
from repro.llvm.cost.binary_size import object_text_size_bytes
from repro.llvm.cost.code_size import ir_instruction_count
from repro.llvm.cost.runtime import measure_runtime
from repro.llvm.ir.module import Module
from repro.llvm.ir.printer import print_function, print_module
from repro.errors import ServiceError
from repro.llvm.ir.verifier import verify_module
from repro.llvm.passes.registry import (
    ACTION_SPACE_PASSES,
    O3_PIPELINE,
    OZ_PIPELINE,
    run_pass,
    run_pipeline,
)

_PASS_DESCRIPTIONS = {name: f"Run the -{name} optimization pass" for name in ACTION_SPACE_PASSES}

# Baseline pipelines are computed once per benchmark and published onto the
# shared benchmark object. The lock serializes concurrent sessions landing on
# an un-baselined benchmark (one daemon can step many sessions in parallel);
# without it two sessions would duplicate the multi-pipeline work and one
# could read a torn, partially-populated dict.
_BASELINES_LOCK = threading.Lock()


def _copy_observation(value):
    """Defensive copy for cached observation values with mutable types.

    Cached hits hand the same stored object to every caller (including
    in-process clients that never cross a serialization boundary), so mutable
    containers must not be shared with user code.
    """
    if isinstance(value, np.ndarray):
        return value.copy()
    if isinstance(value, list):
        return list(value)
    return value


def _make_action_space() -> Commandline:
    return Commandline(
        [
            CommandlineFlag(name=name, flag=f"-{name}", description=_PASS_DESCRIPTIONS[name])
            for name in ACTION_SPACE_PASSES
        ],
        name="PhaseOrdering",
    )


def _make_observation_spaces() -> List[ObservationSpaceSpec]:
    int64_max = np.iinfo(np.int64).max
    specs = [
        ObservationSpaceSpec(
            "Ir", 0, SequenceSpace(size_range=(0, None), dtype=str, name="Ir"),
            deterministic=True, platform_dependent=False, default_value="",
        ),
        ObservationSpaceSpec(
            "IrSha1", 1, SequenceSpace(size_range=(40, 40), dtype=str, name="IrSha1"),
            deterministic=True, platform_dependent=False, default_value="",
        ),
        ObservationSpaceSpec(
            "IrInstructionCount", 2, Scalar(min=0, max=None, dtype=int, name="IrInstructionCount"),
            deterministic=True, platform_dependent=False, default_value=0,
        ),
        ObservationSpaceSpec(
            "IrInstructionCountO0", 3, Scalar(min=0, max=None, dtype=int, name="IrInstructionCountO0"),
            deterministic=True, platform_dependent=False, default_value=0,
        ),
        ObservationSpaceSpec(
            "IrInstructionCountO3", 4, Scalar(min=0, max=None, dtype=int, name="IrInstructionCountO3"),
            deterministic=True, platform_dependent=False, default_value=0,
        ),
        ObservationSpaceSpec(
            "IrInstructionCountOz", 5, Scalar(min=0, max=None, dtype=int, name="IrInstructionCountOz"),
            deterministic=True, platform_dependent=False, default_value=0,
        ),
        ObservationSpaceSpec(
            "InstCount", 6,
            Box(low=0, high=int64_max, shape=(INSTCOUNT_DIMS,), dtype=np.int64, name="InstCount"),
            deterministic=True, platform_dependent=False,
            default_value=np.zeros(INSTCOUNT_DIMS, dtype=np.int64),
        ),
        ObservationSpaceSpec(
            "Autophase", 7,
            Box(low=0, high=int64_max, shape=(AUTOPHASE_DIMS,), dtype=np.int64, name="Autophase"),
            deterministic=True, platform_dependent=False,
            default_value=np.zeros(AUTOPHASE_DIMS, dtype=np.int64),
        ),
        ObservationSpaceSpec(
            "Inst2vec", 8, SequenceSpace(size_range=(0, None), dtype=float, name="Inst2vec"),
            deterministic=True, platform_dependent=False, default_value=[],
        ),
        ObservationSpaceSpec(
            "Inst2vecPreprocessedText", 9,
            SequenceSpace(size_range=(0, None), dtype=str, name="Inst2vecPreprocessedText"),
            deterministic=True, platform_dependent=False, default_value=[],
        ),
        ObservationSpaceSpec(
            "Programl", 10, SequenceSpace(size_range=(0, None), dtype=bytes, name="Programl"),
            deterministic=True, platform_dependent=False, default_value=None,
        ),
        ObservationSpaceSpec(
            "ObjectTextSizeBytes", 11,
            Scalar(min=0, max=None, dtype=int, name="ObjectTextSizeBytes"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "ObjectTextSizeO0", 12, Scalar(min=0, max=None, dtype=int, name="ObjectTextSizeO0"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "ObjectTextSizeO3", 13, Scalar(min=0, max=None, dtype=int, name="ObjectTextSizeO3"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "ObjectTextSizeOz", 14, Scalar(min=0, max=None, dtype=int, name="ObjectTextSizeOz"),
            deterministic=True, platform_dependent=True, default_value=0,
        ),
        ObservationSpaceSpec(
            "Runtime", 15, Scalar(min=0, max=None, dtype=float, name="Runtime"),
            deterministic=False, platform_dependent=True, default_value=0.0,
        ),
        ObservationSpaceSpec(
            "Buildtime", 16, Scalar(min=0, max=None, dtype=float, name="Buildtime"),
            deterministic=False, platform_dependent=True, default_value=0.0,
        ),
        ObservationSpaceSpec(
            "Liveness", 17,
            Box(low=0, high=int64_max, shape=(LIVENESS_DIMS,), dtype=np.int64, name="Liveness"),
            deterministic=True, platform_dependent=False,
            default_value=np.zeros(LIVENESS_DIMS, dtype=np.int64),
        ),
        ObservationSpaceSpec(
            "DomTreeDepth", 18, Scalar(min=0, max=None, dtype=int, name="DomTreeDepth"),
            deterministic=True, platform_dependent=False, default_value=0,
        ),
        ObservationSpaceSpec(
            "ReachingDefs", 19,
            Box(low=0, high=int64_max, shape=(REACHINGDEFS_DIMS,), dtype=np.int64, name="ReachingDefs"),
            deterministic=True, platform_dependent=False,
            default_value=np.zeros(REACHINGDEFS_DIMS, dtype=np.int64),
        ),
    ]
    return specs


class LlvmCompilationSession(CompilationSession):
    """Phase ordering over a working copy of the benchmark module."""

    compiler_version = "repro-llvm 14.0.0 (simulated)"
    action_spaces: List[Space] = [_make_action_space()]
    observation_spaces: List[ObservationSpaceSpec] = _make_observation_spaces()

    def __init__(self, working_dir: str, action_space: Space, benchmark: Benchmark):
        super().__init__(working_dir, action_space, benchmark)
        if not isinstance(benchmark.program, Module):
            raise ValueError(
                f"LLVM benchmarks must carry an IR module, got {type(benchmark.program).__name__}"
            )
        # The session works on its own copy; the cached benchmark stays pristine.
        self.module: Module = benchmark.program.clone()
        self.actions_applied: List[int] = []
        self._runtime_rng = random.Random(0xC0FFEE)
        self._runtimes_per_observation = 1
        self._verify_ir = False
        # Session-incremental observation cache: memoizes deterministic
        # observations per (space_id, module.version), so a no-op step serves
        # every observation with zero recompute. Invalidation is the version
        # counter bumped by run_pass on change.
        self._obs_memo: Dict[str, Tuple[int, Any]] = {}
        # Per-function feature memo for the summable feature spaces: maps
        # space_id -> {function name -> (fingerprint key, feature value)}, so
        # a pass that touched one function only recomputes that function.
        self._function_memo: Dict[str, Dict[str, Tuple[tuple, Any]]] = {}
        # Function fingerprints for the current module version, computed
        # lazily and at most once per version.
        self._fingerprint_state: Tuple[int, Dict[str, int]] = (-1, {})

    # -- baselines --------------------------------------------------------------

    def _baselines(self) -> Dict[str, int]:
        """O0/Oz/O3 metric baselines, computed once per benchmark and cached on
        the benchmark object (shared across sessions via the benchmark cache).

        The computed dict is published atomically (assignment, not in-place
        update) under a lock, so concurrent sessions either see the complete
        baselines or compute-and-wait — never a torn partial dict.
        """
        cache = self.benchmark.dynamic_config.get("_baselines")
        if cache:
            return cache
        with _BASELINES_LOCK:
            cache = self.benchmark.dynamic_config.get("_baselines")
            if cache:
                return cache
            unoptimized = self.benchmark.program
            oz = self.benchmark.program.clone()
            run_pipeline(oz, OZ_PIPELINE)
            o3 = self.benchmark.program.clone()
            run_pipeline(o3, O3_PIPELINE)
            computed = {
                "IrInstructionCountO0": ir_instruction_count(unoptimized),
                "IrInstructionCountOz": ir_instruction_count(oz),
                "IrInstructionCountO3": ir_instruction_count(o3),
                "ObjectTextSizeO0": object_text_size_bytes(unoptimized),
                "ObjectTextSizeOz": object_text_size_bytes(oz),
                "ObjectTextSizeO3": object_text_size_bytes(o3),
            }
            self.benchmark.dynamic_config["_baselines"] = computed
            return computed

    # -- CompilationSession interface ---------------------------------------------

    def apply_action(self, action) -> Tuple[bool, Optional[Space], bool]:
        index = int(action)
        if not 0 <= index < len(ACTION_SPACE_PASSES):
            raise ValueError(f"Action out of range: {index}")
        pass_name = self.action_space.names[index] if hasattr(self.action_space, "names") else ACTION_SPACE_PASSES[index]
        changed = run_pass(self.module, pass_name)
        self.actions_applied.append(index)
        if self._verify_ir:
            errors = verify_module(self.module, raise_on_error=False)
            if errors:
                # ServiceError propagates through every transport and ends
                # only this episode; any other exception type would look like
                # a backend crash and trigger a service restart.
                detail = "; ".join(errors[:10])
                raise ServiceError(f"-{pass_name} produced invalid IR: {detail}")
        return False, None, not changed

    def get_observation(self, observation_space: ObservationSpaceSpec):
        space_id = observation_space.id
        if not observation_space.deterministic:
            # Runtime/Buildtime draw from the session RNG; memoizing them
            # would change the observation semantics.
            return self._compute_observation(space_id)
        version = self.module.version
        memo = self._obs_memo.get(space_id)
        if memo is not None and memo[0] == version:
            return _copy_observation(memo[1])
        value = self._compute_observation(space_id)
        self._obs_memo[space_id] = (version, value)
        return _copy_observation(value)

    # -- incremental per-function features ---------------------------------------

    def _function_fingerprints(self) -> Dict[str, int]:
        """A content fingerprint per function, computed once per version."""
        version, fingerprints = self._fingerprint_state
        if version != self.module.version:
            fingerprints = {
                name: hash(print_function(function))
                for name, function in self.module.functions.items()
            }
            self._fingerprint_state = (self.module.version, fingerprints)
        return fingerprints

    def _module_signature(self) -> int:
        """Hash of the module's (function name, is_declaration) set.

        InstCount's call features depend on whether the *callee* is declared,
        so per-function vectors are additionally keyed on this signature.
        """
        return hash(
            tuple(
                sorted(
                    (name, function.is_declaration)
                    for name, function in self.module.functions.items()
                )
            )
        )

    def _per_function_values(self, space_id: str, compute, extra_key: tuple = ()) -> List[Any]:
        """Per-function feature values, recomputing only changed functions."""
        fingerprints = self._function_fingerprints()
        memo = self._function_memo.setdefault(space_id, {})
        for name in list(memo):
            if name not in fingerprints:
                del memo[name]
        values = []
        for name, function in self.module.functions.items():
            key = (fingerprints[name],) + extra_key
            entry = memo.get(name)
            if entry is None or entry[0] != key:
                entry = (key, compute(function))
                memo[name] = entry
            values.append(entry[1])
        return values

    def _compute_observation(self, space_id: str):
        if space_id == "Ir":
            return print_module(self.module)
        if space_id == "IrSha1":
            return hashlib.sha1(print_module(self.module).encode("utf-8")).hexdigest()
        if space_id == "IrInstructionCount":
            return ir_instruction_count(self.module)
        if space_id in ("IrInstructionCountO0", "IrInstructionCountO3", "IrInstructionCountOz"):
            return self._baselines()[space_id]
        if space_id == "InstCount":
            signature = self._module_signature()
            vectors = self._per_function_values(
                space_id,
                lambda function: instcount_function_features(function, self.module),
                extra_key=(signature,),
            )
            return combine_function_features(
                vectors,
                INSTCOUNT_DIMS,
                INSTCOUNT_MAX_FEATURE_INDICES,
                extra=instcount_module_features(self.module),
            )
        if space_id == "Autophase":
            vectors = self._per_function_values(space_id, autophase_function_features)
            return combine_function_features(vectors, AUTOPHASE_DIMS)
        if space_id == "Inst2vec":
            return inst2vec_embeddings(self.module)
        if space_id == "Inst2vecPreprocessedText":
            return inst2vec_preprocess(self.module)
        if space_id == "Programl":
            return programl_graph(self.module)
        if space_id == "ObjectTextSizeBytes":
            return object_text_size_bytes(self.module)
        if space_id in ("ObjectTextSizeO0", "ObjectTextSizeO3", "ObjectTextSizeOz"):
            return self._baselines()[space_id]
        if space_id == "Runtime":
            measurements = [
                measure_runtime(self.module, rng=self._runtime_rng)
                for _ in range(self._runtimes_per_observation)
            ]
            return measurements[0] if len(measurements) == 1 else measurements
        if space_id == "Buildtime":
            # Build time scales with module size, with measurement noise.
            base = 1e-5 * max(1, self.module.instruction_count)
            return base * max(0.5, self._runtime_rng.gauss(1.0, 0.1))
        if space_id == "Liveness":
            vectors = self._per_function_values(space_id, liveness_function_features)
            return combine_function_features(
                vectors, LIVENESS_DIMS, LIVENESS_MAX_FEATURE_INDICES
            )
        if space_id == "DomTreeDepth":
            depths = self._per_function_values(space_id, function_domtree_depth)
            return max((int(depth) for depth in depths), default=0)
        if space_id == "ReachingDefs":
            vectors = self._per_function_values(space_id, reachingdefs_function_features)
            return combine_function_features(
                vectors, REACHINGDEFS_DIMS, REACHINGDEFS_MAX_FEATURE_INDICES
            )
        raise LookupError(f"Unknown observation space: {space_id!r}")

    def fork(self) -> "LlvmCompilationSession":
        forked = LlvmCompilationSession.__new__(LlvmCompilationSession)
        CompilationSession.__init__(forked, self.working_dir, self.action_space, self.benchmark)
        forked.module = self.module.clone()
        forked.actions_applied = list(self.actions_applied)
        forked._runtime_rng = random.Random(self._runtime_rng.random())
        forked._runtimes_per_observation = self._runtimes_per_observation
        forked._verify_ir = self._verify_ir
        # The clone describes identical IR at the same version, so the fork
        # inherits the parent's warm observation caches. The inner dicts are
        # copied (they are mutated in place); cached values never are.
        forked._obs_memo = dict(self._obs_memo)
        forked._function_memo = {
            space: dict(entries) for space, entries in self._function_memo.items()
        }
        forked._fingerprint_state = self._fingerprint_state
        return forked

    def handle_session_parameter(self, key: str, value: str) -> Optional[str]:
        if key == "llvm.set_runtimes_per_observation_count":
            self._runtimes_per_observation = max(1, int(value))
            return value
        if key == "llvm.get_runtimes_per_observation_count":
            return str(self._runtimes_per_observation)
        if key == "llvm.set_verify_ir":
            self._verify_ir = value not in ("", "0", "false", "False")
            return value
        if key == "llvm.get_verify_ir":
            return "1" if self._verify_ir else "0"
        if key == "llvm.apply_baseline_pipeline":
            pipeline = OZ_PIPELINE if value == "-Oz" else O3_PIPELINE
            run_pipeline(self.module, pipeline)
            return value
        return None
